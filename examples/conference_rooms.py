#!/usr/bin/env python3
"""The ICDE demo plan (§IV): conference-room activity monitoring.

15 MICA2-class motes are deployed across six conference-site clusters
(Auditorium, two conference rooms, coffee station, lobby, registration)
sensing the acoustic channel. A continuous TOP-3 query identifies the
rooms with the most active discussions; the Display Panel projects
KSpot bullets on the floor plan and the System Panel shows the savings
against a TAG baseline running on an identical shadow deployment.

Run:  python examples/conference_rooms.py
"""

from repro.api import Deployment, EpochDriver
from repro.core.mint import MintConfig
from repro.gui import DisplayPanel, render_display, render_savings
from repro.scenarios import conference_scenario

QUERY = """
SELECT TOP 3 roomid, AVERAGE(sound)
FROM sensors
GROUP BY roomid
EPOCH DURATION 1 min
"""

EPOCHS = 40


def main():
    print("KSpot conference demo — §IV demo plan")
    print("=" * 60)

    # Calm corridors between sessions: room levels drift slowly and the
    # per-sensor noise sits below the ADC step, so MINT's cached views
    # suppress most updates. (Savings grow with network size and depth —
    # see benchmark E3; a 15-mote demo deployment is the small end.)
    scenario = conference_scenario(seed=7, room_step=2.0, sensor_sigma=0.2)
    shadow = conference_scenario(seed=7, room_step=2.0, sensor_sigma=0.2)

    positions = dict(scenario.network.topology.positions)
    width = max(x for x, _ in positions.values()) + 5
    height = max(y for _, y in positions.values()) + 5
    display = DisplayPanel(
        width=width, height=height,
        positions=positions,
        cluster_of=dict(scenario.group_of),
        floor_plan_caption="conference site floor plan",
    )

    deployment = Deployment.from_scenario(
        scenario,
        display=display,
        baseline_network=shadow.network,
        mint_config=MintConfig(slack=0, adaptive=True),
    )
    driver = EpochDriver(deployment)
    handle = deployment.submit(QUERY)
    plan = handle.plan
    print(f"routed to: {plan.algorithm.value} ({plan.query_class.value})")
    print(f"epoch duration: {plan.epoch_seconds:.0f} s, continuous: "
          f"{plan.continuous}")
    print()

    for result in handle.watch(driver, epochs=EPOCHS):
        if result.epoch % 10 == 0:
            ranked = ", ".join(f"{item.key}={item.score:.1f}"
                               for item in result.items)
            print(f"epoch {result.epoch:3d}: {ranked}"
                  + ("  [probe]" if result.probed else ""))

    print()
    print(render_display(display, columns=66, rows=16))
    print()
    panel = handle.system_panel
    print(render_savings(panel.samples, metric="bytes"))
    print()
    cumulative = panel.cumulative
    print("System Panel cumulative savings vs TAG:")
    print(f"  messages: {cumulative.message_saving_pct:5.1f}%  "
          f"({cumulative.messages} vs {cumulative.baseline_messages})")
    print(f"  bytes:    {cumulative.byte_saving_pct:5.1f}%  "
          f"({cumulative.payload_bytes} vs "
          f"{cumulative.baseline_payload_bytes})")
    print(f"  energy:   {cumulative.energy_saving_pct:5.1f}%  "
          f"({cumulative.radio_joules * 1e3:.2f} mJ vs "
          f"{cumulative.baseline_radio_joules * 1e3:.2f} mJ)")
    probes = sum(r.probed for r in handle.results)
    # The adaptive slack lives on the engine — an engine-room detail
    # the read-only handle deliberately does not surface.
    engine = deployment.active_sessions()[0].engine
    print(f"  probe rounds: {probes} over {EPOCHS} epochs; "
          f"final adaptive slack: {engine.algorithm.slack}")


if __name__ == "__main__":
    main()
