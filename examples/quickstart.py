#!/usr/bin/env python3
"""Quickstart: the paper's Figure-1 scenario, end to end.

Deploys the 9-sensor / 4-room building of Figure 1, submits the paper's
running query through the KSpot server, and shows why in-network
pruning needs MINT's γ descriptors: the naive greedy strategy answers
``(D, 76.5)`` while the correct answer is ``(C, 75)``.

Run:  python examples/quickstart.py
"""

from repro.api import Deployment, EpochDriver
from repro.query.plan import Algorithm
from repro.scenarios import figure1_scenario

QUERY = """
SELECT TOP 1 roomid, AVERAGE(sound)
FROM sensors
GROUP BY roomid
EPOCH DURATION 1 min
"""


def run_algorithm(algorithm=None, epochs=2):
    """Deploy Figure 1 fresh and run the query under one algorithm."""
    scenario = figure1_scenario()
    deployment = Deployment.from_scenario(scenario)
    handle = deployment.submit(QUERY, algorithm=algorithm)
    EpochDriver(deployment).run(epochs)
    return handle.plan, handle.last_result, scenario.network.stats


def main():
    print("KSpot quickstart — Figure 1 of the paper")
    print("=" * 56)
    print(f"query: {QUERY.strip()}")
    print()
    print("room ground truth: A=74.5  B=41.0  C=75.0  D=64.0")
    print()

    plan, mint_result, mint_stats = run_algorithm()
    print(f"[{plan.algorithm.value}] answer: "
          f"({mint_result.top.key}, {mint_result.top.score:.1f})  "
          f"exact={mint_result.exact}")

    _, naive_result, _ = run_algorithm(algorithm=Algorithm.NAIVE)
    print(f"[naive] answer: "
          f"({naive_result.top.key}, {naive_result.top.score:.1f})  "
          f"exact={naive_result.exact}   <- the wrongful elimination "
          f"of (D, 39) at s4")

    _, tag_result, tag_stats = run_algorithm(algorithm=Algorithm.TAG)
    print(f"[tag]   answer: "
          f"({tag_result.top.key}, {tag_result.top.score:.1f})  "
          f"exact={tag_result.exact}")
    print()
    print(f"MINT traffic: {mint_stats.messages} messages, "
          f"{mint_stats.payload_bytes} payload bytes")
    print(f"TAG traffic:  {tag_stats.messages} messages, "
          f"{tag_stats.payload_bytes} payload bytes")

    assert mint_result.top.key == "C"
    assert naive_result.top.key == "D"
    print("\nreproduced: MINT matches the oracle; naive pruning is wrong.")


if __name__ == "__main__":
    main()
