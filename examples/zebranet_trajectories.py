#!/usr/bin/env python3
"""Spatio-temporal historic query (§I): zebras with similar trajectories.

The paper's intro motivates historic top-k with "Find the K zebras with
the most similar trajectories to zebra X" (the ZebraNet workload of
reference [2]). This example reproduces that pipeline:

1. every collar buffers its own GPS trajectory locally (horizontal
   fragmentation — similarity to a reference is computable per collar);
2. the sink floods zebra X's reference trajectory into the network
   (its dissemination cost is charged);
3. each collar reduces its buffered trajectory to one similarity score
   (negative mean Euclidean distance, normalised to a 0–100 scale); and
4. a TOP-K query over the derived score ranks the herd in-network with
   MINT, verified against the centralized oracle.

Run:  python examples/zebranet_trajectories.py
"""

import math
import random

from repro.api import Deployment, EpochDriver
from repro.core import oracle_scores
from repro.core.aggregates import make_aggregate
from repro.network.messages import ScoreListMessage, ObjectScore
from repro.network.simulator import Network
from repro.network.topology import random_topology
from repro.sensing.board import SensorBoard
from repro.sensing.generators import ConstantField

HERD = 24          # collared zebras
TRAJECTORY_LEN = 96  # buffered fixes per collar
K = 3
REFERENCE_ZEBRA = 5


def make_trajectories(seed=11):
    """Correlated random-walk trajectories: a herd drifts together,
    individuals wander around the herd centroid."""
    rng = random.Random(seed)
    herd_position = [500.0, 500.0]
    herd_track = []
    for _ in range(TRAJECTORY_LEN):
        herd_position[0] += rng.uniform(-8, 8)
        herd_position[1] += rng.uniform(-8, 8)
        herd_track.append(tuple(herd_position))
    trajectories = {}
    for zebra in range(1, HERD + 1):
        wander = rng.uniform(2.0, 40.0)  # some follow closely, some stray
        offset = (rng.uniform(-50, 50), rng.uniform(-50, 50))
        track = []
        for hx, hy in herd_track:
            track.append((hx + offset[0] + rng.uniform(-wander, wander),
                          hy + offset[1] + rng.uniform(-wander, wander)))
        trajectories[zebra] = track
    return trajectories


def similarity(track_a, track_b):
    """Negative mean pointwise distance, mapped onto [0, 100]."""
    distance = sum(math.hypot(ax - bx, ay - by)
                   for (ax, ay), (bx, by) in zip(track_a, track_b))
    mean = distance / len(track_a)
    return max(0.0, 100.0 - mean)


def main():
    print("KSpot spatio-temporal query — ZebraNet trajectory similarity")
    print("=" * 64)

    trajectories = make_trajectories()
    reference = trajectories[REFERENCE_ZEBRA]

    # Local reduction: one similarity score per collar.
    scores = {zebra: similarity(track, reference)
              for zebra, track in trajectories.items()
              if zebra != REFERENCE_ZEBRA}

    # Deploy the herd as a connected ad-hoc network.
    topology = random_topology(HERD, area=200.0, radio_range=60.0, seed=3)
    field = ConstantField(scores, default=0.0)
    network = Network(
        topology,
        boards={z: SensorBoard({"sound": field}, quantize=False)
                for z in range(1, HERD + 1)},
        group_of={z: z for z in range(1, HERD + 1)},
    )

    # Charge the reference-trajectory dissemination (4 bytes per fix
    # ride in ScoreList-shaped frames, flooded down the tree).
    reference_message = ScoreListMessage(items=tuple(
        ObjectScore(t, x) for t, (x, _) in enumerate(reference)))
    network.flood_down(lambda _: reference_message)
    dissemination = network.stats.snapshot()
    print(f"reference trajectory dissemination: "
          f"{dissemination.messages} broadcasts, "
          f"{dissemination.payload_bytes} bytes")

    # In-network TOP-K over the derived score, through the facade: the
    # herd is one deployment, the similarity ranking one session.
    participants = {z: z for z in scores}
    aggregate = make_aggregate("AVG", 0, 100)
    deployment = Deployment(network, group_of=participants)
    handle = deployment.submit(
        f"SELECT TOP {K} roomid, AVERAGE(sound) FROM sensors "
        f"GROUP BY roomid EPOCH DURATION 1 min")
    EpochDriver(deployment).run(2)  # creation epoch, then pruned update
    result = handle.last_result

    truth = oracle_scores(scores, participants, aggregate)
    expected = sorted(truth.items(), key=lambda kv: (-kv[1], kv[0]))[:K]

    print(f"\nzebras most similar to zebra {REFERENCE_ZEBRA}:")
    for rank, item in enumerate(result.items, start=1):
        mean_distance = 100.0 - item.score
        print(f"  {rank}. zebra {item.key:2d}  similarity {item.score:.1f} "
              f"(mean distance {mean_distance:.1f} m)")

    assert [i.key for i in result.items] == [z for z, _ in expected]
    print("\nverified against the centralized oracle.")
    print(f"total traffic: {network.stats.messages} messages, "
          f"{network.stats.payload_bytes} payload bytes")


if __name__ == "__main__":
    main()
