#!/usr/bin/env python3
"""Robustness: continuous monitoring through node failures.

Sensor deployments lose motes. This example runs the conference-style
TOP-2 query on an 8×8 grid while a scripted
:class:`~repro.network.churn.ChurnSchedule` kills sensors mid-run,
injected through the driver as a
:class:`~repro.api.ChurnIntervention`: the routing tree repairs
itself, the session's detect → quiesce → repair → resume protocol
re-primes exactly the dirty state, and every reported answer remains
exact over the surviving population. The session's ``on_recovery``
subscription narrates each absorbed batch as it happens — push, not
poll.

Run:  python examples/failure_recovery.py
"""

from repro.api import ChurnIntervention, Deployment, EpochDriver
from repro.core import is_valid_top_k, oracle_scores
from repro.core.aggregates import make_aggregate
from repro.network.churn import ChurnSchedule
from repro.scenarios import grid_rooms_scenario
from repro.sensing.modalities import get_modality

QUERY = """
SELECT TOP 2 roomid, AVERAGE(sound)
FROM sensors
GROUP BY roomid
EPOCH DURATION 1 min
"""

EPOCHS = 30
K = 2


def main():
    print("KSpot failure recovery — exact answers through node deaths")
    print("=" * 62)

    scenario = grid_rooms_scenario(side=8, rooms_per_axis=4, seed=29)
    network = scenario.network
    aggregate = make_aggregate("AVG", 0, 100)
    modality = get_modality("sound")

    leaves = [n for n in network.tree.sensor_ids if network.tree.is_leaf(n)]
    schedule = ChurnSchedule.random_deaths(leaves, count=6, epochs=EPOCHS,
                                           seed=5, first_epoch=4)
    deployment = Deployment.from_scenario(scenario)
    driver = EpochDriver(deployment,
                         interventions=[ChurnIntervention(schedule)])
    handle = deployment.submit(QUERY)
    handle.on_recovery(lambda record: print(
        f"epoch {record.epoch:3d}: sensors {list(record.failed)} died — "
        f"tree repaired ({record.repair_edges} new edges), "
        f"{record.reprimed} node states re-primed"))

    print(f"deployment: {len(network.tree.sensor_ids)} sensors, "
          f"{len(set(scenario.group_of.values()))} rooms, "
          f"tree height {network.tree.height}")
    print(f"scheduled deaths: "
          f"{[(e.epoch, e.node_id) for e in schedule.deaths]}")
    print()

    exact_epochs = 0
    for result in handle.watch(driver, epochs=EPOCHS):
        survivors = {n: g for n, g in scenario.group_of.items()
                     if network.nodes[n].alive}
        readings = {n: modality.quantize(scenario.field.value(n,
                                                              result.epoch))
                    for n in survivors}
        truth = oracle_scores(readings, survivors, aggregate)
        ok = is_valid_top_k(result.items, truth, K, tolerance=1e-6)
        exact_epochs += ok
        if result.epoch % 6 == 0:
            answer = ", ".join(f"{i.key}={i.score:.1f}"
                               for i in result.items)
            print(f"epoch {result.epoch:3d}: top-{K} = [{answer}]  "
                  f"correct={ok}  alive={len(survivors)}")

    print()
    log = handle.recovery
    print(f"exact answers: {exact_epochs}/{EPOCHS} epochs; session "
          f"absorbed {log.failures} failures in {len(log.records)} "
          f"recovery passes ({log.reprimed} re-primed states)")
    print(f"traffic: {network.stats.messages} messages, "
          f"{network.stats.payload_bytes} payload bytes; "
          f"bottleneck node drained "
          f"{network.bottleneck_energy()[1] * 1e3:.2f} mJ")
    assert exact_epochs == EPOCHS
    assert log.failures == 6


if __name__ == "__main__":
    main()
