#!/usr/bin/env python3
"""Robustness: continuous monitoring through node failures.

Sensor deployments lose motes. This example runs the conference-style
TOP-2 query on an 8×8 grid while a failure schedule kills sensors
mid-run; the routing tree repairs itself, MINT re-creates its views,
and every reported answer remains exact over the surviving population.

Run:  python examples/failure_recovery.py
"""

from repro.core import Mint, is_valid_top_k, oracle_scores
from repro.core.aggregates import make_aggregate
from repro.network.failures import FailureSchedule
from repro.scenarios import grid_rooms_scenario
from repro.sensing.modalities import get_modality

EPOCHS = 30
K = 2


def main():
    print("KSpot failure recovery — exact answers through node deaths")
    print("=" * 62)

    scenario = grid_rooms_scenario(side=8, rooms_per_axis=4, seed=29)
    network = scenario.network
    aggregate = make_aggregate("AVG", 0, 100)
    mint = Mint(network, aggregate, K, scenario.group_of)
    modality = get_modality("sound")

    leaves = [n for n in network.tree.sensor_ids if network.tree.is_leaf(n)]
    schedule = FailureSchedule.random_deaths(leaves, count=6, epochs=EPOCHS,
                                             seed=5, first_epoch=4)
    print(f"deployment: {len(network.tree.sensor_ids)} sensors, "
          f"{len(set(scenario.group_of.values()))} rooms, "
          f"tree height {network.tree.height}")
    print(f"scheduled deaths: "
          f"{[(f.epoch, f.node_id) for f in schedule.failures]}")
    print()

    exact_epochs = 0
    for epoch in range(EPOCHS):
        victims = schedule.apply(network, epoch)
        if victims:
            mint.handle_topology_change()
            print(f"epoch {epoch:3d}: sensors {list(victims)} died — "
                  f"tree repaired (height {network.tree.height}), "
                  f"views re-created")
        result = mint.run_epoch()

        survivors = {n: g for n, g in scenario.group_of.items()
                     if network.nodes[n].alive}
        readings = {n: modality.quantize(scenario.field.value(n, epoch))
                    for n in survivors}
        truth = oracle_scores(readings, survivors, aggregate)
        ok = is_valid_top_k(result.items, truth, K, tolerance=1e-6)
        exact_epochs += ok
        if epoch % 6 == 0 or victims:
            answer = ", ".join(f"{i.key}={i.score:.1f}"
                               for i in result.items)
            print(f"epoch {epoch:3d}: top-{K} = [{answer}]  "
                  f"correct={ok}  alive={len(survivors)}")

    print()
    print(f"exact answers: {exact_epochs}/{EPOCHS} epochs "
          f"(creation re-runs after each repair keep the bound "
          f"framework sound)")
    print(f"traffic: {network.stats.messages} messages, "
          f"{network.stats.payload_bytes} payload bytes; "
          f"bottleneck node drained "
          f"{network.bottleneck_energy()[1] * 1e3:.2f} mJ")
    assert exact_epochs == EPOCHS


if __name__ == "__main__":
    main()
