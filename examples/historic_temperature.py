#!/usr/bin/env python3
"""Historic top-k (§III-B): the hottest time instances of a season.

The paper's example query — "Find the K time instances with the highest
average temperature during the last 3 months" — over a 36-node
deployment sensing a diurnal temperature field. Each mote buffers one
reading per day locally (a sliding window on flash); TJA then finds the
exact answer, and the same query runs under TPUT and a centralized
collection to show the cost gap.

Run:  python examples/historic_temperature.py
"""

from repro.api import Deployment, EpochDriver
from repro.network.simulator import Network
from repro.network.topology import grid_topology
from repro.query.plan import Algorithm
from repro.sensing.board import SensorBoard
from repro.sensing.generators import DiurnalField, GaussianNoiseField

QUERY = """
SELECT TOP 5 epoch, AVERAGE(temperature)
FROM sensors
GROUP BY epoch
EPOCH DURATION 1 day
WITH HISTORY 3 months
"""


def deploy(seed=0):
    """A 6×6 grid sensing a shared seasonal signal plus local noise."""
    topology = grid_topology(6)
    field = GaussianNoiseField(
        DiurnalField(mean=22.0, amplitude=12.0, period_epochs=30, seed=seed,
                     common_phase=True),
        sigma=1.5, seed=seed)
    boards = {n: SensorBoard({"temperature": field})
              for n in topology.sensor_ids}
    return Network(topology, boards=boards,
                   group_of={n: n for n in topology.sensor_ids})


def run(algorithm=None):
    network = deploy()
    deployment = Deployment(network,
                            group_of={n: n
                                      for n in network.tree.sensor_ids})
    handle = deployment.submit(QUERY, algorithm=algorithm)
    # Historic sessions finish by themselves: run() until idle.
    EpochDriver(deployment).run()
    return handle.plan, handle.historic_result, network.stats


def main():
    print("KSpot historic query — hottest days of the season")
    print("=" * 60)
    print(f"query: {QUERY.strip()}")
    print()

    plan, tja, tja_stats = run()
    print(f"routed to: {plan.algorithm.value}; window = "
          f"{plan.window_epochs} daily epochs")
    print()
    print("top-5 hottest days (exact):")
    for rank, item in enumerate(tja.items, start=1):
        print(f"  {rank}. day {item.key:3d}  avg {item.score:.2f} °C")
    print()
    print(f"TJA: |candidates| = {tja.candidates}, clean-up rounds = "
          f"{tja.cleanup_rounds}")
    print(f"     bytes per phase: {dict(tja.per_phase_bytes)}")

    _, tput, tput_stats = run(algorithm=Algorithm.TPUT)
    _, cent, cent_stats = run(algorithm=Algorithm.CENTRALIZED)
    assert [i.key for i in tput.items] == [i.key for i in tja.items]
    assert [i.key for i in cent.items] == [i.key for i in tja.items]

    print()
    print("cost comparison (identical answers):")
    for name, stats in (("TJA", tja_stats), ("TPUT", tput_stats),
                        ("centralized", cent_stats)):
        print(f"  {name:12s} {stats.messages:6d} messages  "
              f"{stats.payload_bytes:8d} payload bytes  "
              f"{stats.radio_joules * 1e3:7.2f} mJ radio")


if __name__ == "__main__":
    main()
