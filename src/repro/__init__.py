"""KSpot reproduction: in-network top-k query processing for WSNs.

A from-scratch Python rebuild of *KSpot: Effectively Monitoring the K
Most Important Events in a Wireless Sensor Network* (ICDE 2009): the
MINT and TJA top-k algorithms, their baselines, the SQL-like query
language, a TinyOS-style epoch simulator with MICA2 cost models, local
storage, and the server/GUI tier — everything the demo runs on.

The ninety-second tour::

    from repro.api import Deployment, EpochDriver
    from repro.scenarios import conference_scenario

    deployment = Deployment.from_scenario(conference_scenario())
    driver = EpochDriver(deployment)
    handle = deployment.submit(\"\"\"
        SELECT TOP 3 roomid, AVERAGE(sound)
        FROM sensors GROUP BY roomid EPOCH DURATION 1 min
    \"\"\")
    for result in handle.watch(driver, epochs=10):
        print(result.epoch, result.keys, result.exact)

Package map: :mod:`repro.api` (public facade), :mod:`repro.core`
(algorithms), :mod:`repro.query` (language), :mod:`repro.network`
(simulator), :mod:`repro.sensing`, :mod:`repro.storage`,
:mod:`repro.gui`, :mod:`repro.server` (engine room + deprecated
``KSpotServer`` shim), :mod:`repro.scenarios`.
"""

from .api import (
    ChurnIntervention,
    Deployment,
    EpochDriver,
    Intervention,
    SessionHandle,
    SessionState,
)
from .core import KSpotEngine, Mint, MintConfig, Tag, Tja, Tput
from .core.results import EpochResult, RankedItem
from .errors import KSpotError
from .query import Algorithm, Schema, compile_query, parse
from .scenarios import (
    Scenario,
    conference_scenario,
    figure1_scenario,
    grid_rooms_scenario,
)
from .server import KSpotServer, QuerySession

__version__ = "1.1.0"

__all__ = [
    "__version__",
    "KSpotError",
    "Deployment",
    "EpochDriver",
    "SessionHandle",
    "SessionState",
    "Intervention",
    "ChurnIntervention",
    "KSpotServer",
    "QuerySession",
    "KSpotEngine",
    "Mint",
    "MintConfig",
    "Tja",
    "Tput",
    "Tag",
    "EpochResult",
    "RankedItem",
    "parse",
    "compile_query",
    "Schema",
    "Algorithm",
    "Scenario",
    "figure1_scenario",
    "conference_scenario",
    "grid_rooms_scenario",
]
