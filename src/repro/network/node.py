"""The KSpot-client node runtime.

A :class:`SensorNode` is the software image flashed onto each mote: its
sensor board, its local history window, and its cluster (room)
membership. Algorithm state (views, filters, candidate caches) lives in
the algorithm objects in :mod:`repro.core`, mirroring how the real
KSpot client keeps the top-k operator separate from the node firmware.
"""

from __future__ import annotations

from typing import Callable, Hashable

from ..errors import ConfigurationError
from ..sensing.board import SensorBoard
from . import hotpath
from ..storage.microhash import MicroHashIndex
from ..storage.window import SlidingWindow, WindowEntry
from .energy import EnergyLedger


class SensorNode:
    """One mote: identity, sensing hardware, local storage, liveness."""

    def __init__(self, node_id: int, board: SensorBoard | None = None,
                 group: Hashable = None, window_capacity: int = 1024):
        if node_id < 0:
            raise ConfigurationError("node ids must be non-negative")
        self.node_id = node_id
        self.board = board
        self.group = group
        self.ledger = EnergyLedger()
        #: The primary history window — adopted by the first attribute
        #: this node samples (the only one, on the single-channel
        #: boards every shipped scenario deploys).
        self.window: SlidingWindow = SlidingWindow(capacity=window_capacity)
        self._window_capacity = window_capacity
        self._windows: dict[str, SlidingWindow] = {}
        #: Optional flash-resident history (§III-B: "either in main
        #: memory … or on secondary memory"). Attached via
        #: :meth:`attach_flash`; page costs charge the storage ledger.
        self.flash_index: MicroHashIndex | None = None
        self.alive = True
        #: Death observer installed by the owning network so liveness
        #: caches invalidate even when a test kills the node directly.
        self.on_kill: "Callable[[int], None] | None" = None
        #: Physical acquisitions performed (cache hits excluded).
        self.samples_taken = 0
        #: attribute → (epoch, value) of the newest physical sample.
        self._sample_cache: dict[str, tuple[int, float]] = {}

    def attach_flash(self, index: MicroHashIndex) -> None:
        """Buffer history on flash (MicroHash) instead of SRAM only.

        The flash index buffers one stream — deep history on a
        multi-attribute board should stay in the per-attribute SRAM
        windows (see :meth:`window_for`).
        """
        self.flash_index = index

    def window_for(self, attribute: str) -> SlidingWindow:
        """The history window buffering ``attribute``'s readings.

        Each attribute gets its own window so concurrent sessions over
        different channels of one board cannot interleave their
        streams. The first attribute adopts the legacy
        :attr:`window`, keeping single-channel deployments (every
        shipped scenario) byte-identical to the historical behaviour.
        """
        window = self._windows.get(attribute)
        if window is None:
            window = (self.window if not self._windows
                      else SlidingWindow(capacity=self._window_capacity))
            self._windows[attribute] = window
        return window

    def _charge_flash(self, before_joules: float) -> None:
        if self.flash_index is not None:
            delta = self.flash_index.flash.stats.joules - before_joules
            if delta:
                self.ledger.charge_storage(delta)

    def read(self, attribute: str, epoch: int) -> float:
        """Sample the board, charge sensing energy, buffer into history.

        This is the per-epoch acquisition step of the TinyDB model: the
        sample is both the current snapshot value and the newest entry
        of the node's history — the SRAM sliding window, plus the flash
        index when one is attached (its page-write energy is charged to
        the storage ledger).

        The board fires at most once per (attribute, epoch): when
        several query sessions share the deployment, the first read of
        an epoch pays the sampling energy and lands in the history;
        every later read of the same epoch is served from the cached
        reading, so concurrent queries never double-sample or
        double-buffer.
        """
        cached = self._sample_cache.get(attribute)
        if (cached is not None and cached[0] == epoch and self.alive
                and hotpath._enabled):
            # Hot path: a cached same-epoch reading from a live node
            # skips the board checks — concurrent sessions re-read the
            # same epoch's sample hundreds of times per epoch. The
            # liveness guard stays: a dead node must raise exactly as
            # on the reference path, even with a fresh cache entry.
            return cached[1]
        if not self.alive:
            raise ConfigurationError(f"node {self.node_id} is dead")
        if self.board is None:
            raise ConfigurationError(f"node {self.node_id} has no sensor board")
        if cached is not None and cached[0] == epoch:
            return cached[1]
        value = self.board.sample(attribute, self.node_id, epoch,
                                  energy_sink=self.ledger.charge_sensing)
        self.samples_taken += 1
        self._sample_cache[attribute] = (epoch, value)
        self.window_for(attribute).append(epoch, value)
        if self.flash_index is not None:
            before = self.flash_index.flash.stats.joules
            self.flash_index.insert(epoch, value)
            self._charge_flash(before)
        return value

    def store_sample(self, attribute: str, epoch: int, value: float) -> None:
        """Book a physically-acquired sample exactly as :meth:`read` does.

        The columnar kernel samples a whole id column in one batch
        (:meth:`repro.network.simulator.Network.read_many`) and then
        books each value here — counter increment, same-epoch cache,
        history window, flash — so per-node state is byte-identical to
        a scalar :meth:`read`. The caller has already charged sensing
        energy and performed the liveness/board checks in scalar order.
        """
        self.samples_taken += 1
        self._sample_cache[attribute] = (epoch, value)
        self.window_for(attribute).append(epoch, value)
        if self.flash_index is not None:
            before = self.flash_index.flash.stats.joules
            self.flash_index.insert(epoch, value)
            self._charge_flash(before)

    # repro: hot
    def book_sample(self, attribute: str, epoch: int, value: float,
                    cost_joules: float) -> float:
        """One fused booking call for the planned batch-sampling loop.

        Equivalent to the same-epoch-cache check of :meth:`read`
        followed by ``ledger.charge_sensing(cost)`` +
        :meth:`store_sample` on a miss — collapsed into a single
        method because :meth:`repro.network.simulator.Network.read_many`
        calls it for every freshly-drawn row and the call overhead was
        measurable. The caller's sampling plan guarantees this node is
        alive with a board (plan validity is tied to the alive-tuple's
        identity), so the liveness/board checks are hoisted; the
        caller also pre-filters same-epoch-fresh rows, making the
        cache check here a cheap second line of defence rather than
        the primary one. Returns the value actually booked (the cached
        one on a same-epoch hit — byte-identical, since field
        generators are deterministic per cell)."""
        cached = self._sample_cache.get(attribute)
        if cached is not None and cached[0] == epoch:
            return cached[1]
        self.ledger.charge_sensing(cost_joules)
        self.samples_taken += 1
        self._sample_cache[attribute] = (epoch, value)
        self.window_for(attribute).append(epoch, value)
        if self.flash_index is not None:
            before = self.flash_index.flash.stats.joules
            self.flash_index.insert(epoch, value)
            self._charge_flash(before)
        return value

    def history(self, last_n: int,
                attribute: str | None = None) -> "list[WindowEntry]":
        """The most recent ``last_n`` readings, flash-first.

        Reads from the flash index when attached (charging page-read
        energy), falling back to the SRAM window. Flash survives past
        the window capacity, so deep historic queries prefer it.
        ``attribute`` selects that channel's window; None keeps the
        legacy primary window. The flash index buffers a single
        stream, so once more than one attribute has been buffered,
        attribute-specific reads come from the per-attribute SRAM
        window — never from flash pages holding interleaved channels.
        """
        window = (self.window if attribute is None
                  else self.window_for(attribute))
        if attribute is not None and len(self._windows) > 1:
            return window.last(last_n)
        if self.flash_index is not None:
            newest = window.latest().epoch if len(window) else 0
            before = self.flash_index.flash.stats.joules
            entries = self.flash_index.epoch_range(
                newest - last_n + 1, newest)
            self._charge_flash(before)
            return entries
        return window.last(last_n)

    def kill(self) -> None:
        """Mark the node dead (battery exhausted / crushed / unplugged)."""
        was_alive = self.alive
        self.alive = False
        if was_alive and self.on_kill is not None:
            self.on_kill(self.node_id)

    def __repr__(self) -> str:
        status = "alive" if self.alive else "dead"
        return f"SensorNode({self.node_id}, group={self.group!r}, {status})"
