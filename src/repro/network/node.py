"""The KSpot-client node runtime.

A :class:`SensorNode` is the software image flashed onto each mote: its
sensor board, its local history window, and its cluster (room)
membership. Algorithm state (views, filters, candidate caches) lives in
the algorithm objects in :mod:`repro.core`, mirroring how the real
KSpot client keeps the top-k operator separate from the node firmware.
"""

from __future__ import annotations

from typing import Hashable

from ..errors import ConfigurationError
from ..sensing.board import SensorBoard
from ..storage.microhash import MicroHashIndex
from ..storage.window import SlidingWindow, WindowEntry
from .energy import EnergyLedger


class SensorNode:
    """One mote: identity, sensing hardware, local storage, liveness."""

    def __init__(self, node_id: int, board: SensorBoard | None = None,
                 group: Hashable = None, window_capacity: int = 1024):
        if node_id < 0:
            raise ConfigurationError("node ids must be non-negative")
        self.node_id = node_id
        self.board = board
        self.group = group
        self.ledger = EnergyLedger()
        self.window: SlidingWindow = SlidingWindow(capacity=window_capacity)
        #: Optional flash-resident history (§III-B: "either in main
        #: memory … or on secondary memory"). Attached via
        #: :meth:`attach_flash`; page costs charge the storage ledger.
        self.flash_index: MicroHashIndex | None = None
        self.alive = True

    def attach_flash(self, index: MicroHashIndex) -> None:
        """Buffer history on flash (MicroHash) instead of SRAM only."""
        self.flash_index = index

    def _charge_flash(self, before_joules: float) -> None:
        if self.flash_index is not None:
            delta = self.flash_index.flash.stats.joules - before_joules
            if delta:
                self.ledger.charge_storage(delta)

    def read(self, attribute: str, epoch: int) -> float:
        """Sample the board, charge sensing energy, buffer into history.

        This is the per-epoch acquisition step of the TinyDB model: the
        sample is both the current snapshot value and the newest entry
        of the node's history — the SRAM sliding window, plus the flash
        index when one is attached (its page-write energy is charged to
        the storage ledger).
        """
        if not self.alive:
            raise ConfigurationError(f"node {self.node_id} is dead")
        if self.board is None:
            raise ConfigurationError(f"node {self.node_id} has no sensor board")
        value = self.board.sample(attribute, self.node_id, epoch,
                                  energy_sink=self.ledger.charge_sensing)
        self.window.append(epoch, value)
        if self.flash_index is not None:
            before = self.flash_index.flash.stats.joules
            self.flash_index.insert(epoch, value)
            self._charge_flash(before)
        return value

    def history(self, last_n: int) -> "list[WindowEntry]":
        """The most recent ``last_n`` readings, flash-first.

        Reads from the flash index when attached (charging page-read
        energy), falling back to the SRAM window. Flash survives past
        the window capacity, so deep historic queries prefer it.
        """
        if self.flash_index is not None:
            newest = self.window.latest().epoch if len(self.window) else 0
            before = self.flash_index.flash.stats.joules
            entries = self.flash_index.epoch_range(
                newest - last_n + 1, newest)
            self._charge_flash(before)
            return entries
        return self.window.last(last_n)

    def kill(self) -> None:
        """Mark the node dead (battery exhausted / crushed / unplugged)."""
        self.alive = False

    def __repr__(self) -> str:
        status = "alive" if self.alive else "dead"
        return f"SensorNode({self.node_id}, group={self.group!r}, {status})"
