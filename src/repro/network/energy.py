"""MICA2-calibrated energy model and per-node ledgers.

The demo's headline metric is the energy the System Panel shows being
saved. The model follows the first-order radio accounting used across
the TAG/TinyDB evaluation lineage: energy is linear in transmitted and
received bytes, with datasheet current draws.

MICA2 (CC1000 @ 3 V): transmit ≈ 27 mA, receive/listen ≈ 10 mA, at
38.4 kbit/s. That works out to about 16.9 µJ per transmitted byte and
6.3 µJ per received byte.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError
from ..units import joules_from_current


@dataclass(frozen=True)
class EnergyModel:
    """Datasheet-derived energy coefficients.

    Attributes:
        voltage: Supply voltage (2×AA ≈ 3 V).
        tx_current_a: Radio transmit current draw.
        rx_current_a: Radio receive current draw.
        bitrate_bps: Radio data rate used to convert current into J/byte.
        idle_joules_per_epoch: Duty-cycled baseline per node per epoch
            (MCU sleep + periodic listen); identical across algorithms
            so it never changes a comparison, but it keeps lifetime
            numbers honest.
        battery_joules: Usable battery capacity for lifetime estimates
            (2×AA ≈ 2850 mAh at 3 V derated to ~18 kJ usable).
    """

    voltage: float = 3.0
    tx_current_a: float = 0.027
    rx_current_a: float = 0.010
    bitrate_bps: float = 38_400.0
    idle_joules_per_epoch: float = 1e-3
    battery_joules: float = 18_000.0

    def __post_init__(self) -> None:
        if min(self.voltage, self.tx_current_a, self.rx_current_a,
               self.bitrate_bps) <= 0:
            raise ConfigurationError("energy model parameters must be positive")
        if self.idle_joules_per_epoch < 0 or self.battery_joules <= 0:
            raise ConfigurationError("bad idle/battery configuration")

    @property
    def tx_joules_per_byte(self) -> float:
        """Energy to put one byte on the air."""
        return joules_from_current(self.tx_current_a, self.voltage,
                                   8.0 / self.bitrate_bps)

    @property
    def rx_joules_per_byte(self) -> float:
        """Energy to receive one byte."""
        return joules_from_current(self.rx_current_a, self.voltage,
                                   8.0 / self.bitrate_bps)


@dataclass
class EnergyLedger:
    """Per-node joule accounting, split by activity."""

    tx: float = 0.0
    rx: float = 0.0
    sensing: float = 0.0
    idle: float = 0.0
    storage: float = 0.0

    @property
    def total(self) -> float:
        """All joules drawn so far."""
        return self.tx + self.rx + self.sensing + self.idle + self.storage

    def charge_tx(self, joules: float) -> None:
        self.tx += joules

    def charge_rx(self, joules: float) -> None:
        self.rx += joules

    def charge_sensing(self, joules: float) -> None:
        self.sensing += joules

    def charge_idle(self, joules: float) -> None:
        self.idle += joules

    def charge_storage(self, joules: float) -> None:
        self.storage += joules

    def copy(self) -> "EnergyLedger":
        """A snapshot for before/after phase accounting."""
        return EnergyLedger(tx=self.tx, rx=self.rx, sensing=self.sensing,
                            idle=self.idle, storage=self.storage)


def lifetime_epochs(model: EnergyModel, per_epoch_joules: float) -> float:
    """Epochs until a node at the given burn rate exhausts its battery.

    The network's lifetime is conventionally the lifetime of its
    *bottleneck* node (the first to die — usually a sink neighbour).
    """
    if per_epoch_joules <= 0:
        return float("inf")
    return model.battery_joules / per_epoch_joules
