"""Traffic and energy statistics — the data behind the System Panel.

Every message the simulator ships increments these counters. The System
Panel (and every benchmark) reads them to report messages, packets,
bytes and joules, per message kind and per protocol phase; phases are
attributed with the :meth:`NetworkStats.phase` context manager.

Phase attribution is **exclusive**: traffic recorded while a nested
phase is open belongs to the innermost phase only. A ``recovery``
handshake paid in the middle of a session's ``update`` converge-cast
shows up under ``recovery`` and is *excluded* from ``update``, so
summing ``by_phase`` never double-counts a message. (Before this
contract, nested phases credited both levels, silently inflating every
outer phase that happened to contain churn repair.)

**Batched recording.** On the optimized hot path the simulator does not
call :meth:`NetworkStats.record` per message; it accumulates per-kind
counters for the whole epoch and folds them in bulk via
:meth:`apply_batch`. So that readers never observe half-flushed state,
a :class:`NetworkStats` can carry a *drain hook* (installed by the
:class:`~repro.network.simulator.Network` that feeds it): every public
read — counter attributes, :meth:`snapshot`, :meth:`summary`, phase
boundaries — first drains pending traffic. The observable counter
sequence is therefore byte-for-byte identical to eager recording.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Iterator


@dataclass(frozen=True)
class PhaseSnapshot:
    """Immutable totals at one instant (used for per-phase deltas)."""

    messages: int
    packets: int
    payload_bytes: int
    air_bytes: int
    tx_joules: float
    rx_joules: float

    def minus(self, earlier: "PhaseSnapshot") -> "PhaseSnapshot":
        """Component-wise difference ``self - earlier``."""
        return PhaseSnapshot(
            messages=self.messages - earlier.messages,
            packets=self.packets - earlier.packets,
            payload_bytes=self.payload_bytes - earlier.payload_bytes,
            air_bytes=self.air_bytes - earlier.air_bytes,
            tx_joules=self.tx_joules - earlier.tx_joules,
            rx_joules=self.rx_joules - earlier.rx_joules,
        )

    def plus(self, other: "PhaseSnapshot") -> "PhaseSnapshot":
        """Component-wise sum ``self + other``."""
        return PhaseSnapshot(
            messages=self.messages + other.messages,
            packets=self.packets + other.packets,
            payload_bytes=self.payload_bytes + other.payload_bytes,
            air_bytes=self.air_bytes + other.air_bytes,
            tx_joules=self.tx_joules + other.tx_joules,
            rx_joules=self.rx_joules + other.rx_joules,
        )


_ZERO = PhaseSnapshot(0, 0, 0, 0, 0.0, 0.0)


class NetworkStats:
    """Mutable counters accumulated over a run.

    The public counter attributes (``messages``, ``packets``, …) are
    read-only properties; they drain any pending batched traffic before
    returning, so callers always see up-to-date totals regardless of
    how the simulator chose to record.
    """

    def __init__(self) -> None:
        self._messages = 0
        self._packets = 0
        self._payload_bytes = 0
        self._air_bytes = 0
        self._tx_joules = 0.0
        self._rx_joules = 0.0
        self._retransmissions = 0
        self._drops = 0
        self._by_kind: dict[str, int] = {}
        self._bytes_by_kind: dict[str, int] = {}
        self.by_phase: dict[str, PhaseSnapshot] = {}
        #: (name, start snapshot, traffic claimed by closed inner phases)
        self._phase_stack: list[list] = []
        #: Installed by the owning Network while batched traffic may be
        #: pending for this ledger; called before every read.
        self._drain_hook: Callable[[], None] | None = None

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def record(self, kind: str, packets: int, payload_bytes: int,
               air_bytes: int, tx_joules: float, rx_joules: float,
               retransmissions: int = 0) -> None:
        """Charge one shipped logical message."""
        self._messages += 1
        self._packets += packets
        self._payload_bytes += payload_bytes
        self._air_bytes += air_bytes
        self._tx_joules += tx_joules
        self._rx_joules += rx_joules
        self._retransmissions += retransmissions
        self._by_kind[kind] = self._by_kind.get(kind, 0) + 1
        self._bytes_by_kind[kind] = (
            self._bytes_by_kind.get(kind, 0) + payload_bytes
        )

    def apply_batch(self, kind: str, messages: int, packets: int,
                    payload_bytes: int, air_bytes: int,
                    retransmissions: int) -> None:
        """Fold a per-kind batch of already-aggregated counters in.

        Equivalent to ``messages`` consecutive :meth:`record` calls of
        the same kind whose integer counters sum to the given totals.
        Only the integer counters batch — integer addition reassociates
        exactly. Joules go through :meth:`add_joules` per message so the
        floating-point accumulation order (and thus every bit of the
        totals) matches eager recording.
        """
        self._messages += messages
        self._packets += packets
        self._payload_bytes += payload_bytes
        self._air_bytes += air_bytes
        self._retransmissions += retransmissions
        self._by_kind[kind] = self._by_kind.get(kind, 0) + messages
        self._bytes_by_kind[kind] = (
            self._bytes_by_kind.get(kind, 0) + payload_bytes
        )

    def add_joules(self, tx_joules: float, rx_joules: float) -> None:
        """Charge one message's radio energy (hot-path companion of
        :meth:`apply_batch`; call order matches eager :meth:`record`)."""
        self._tx_joules += tx_joules
        self._rx_joules += rx_joules

    def record_drop(self) -> None:
        """Count a packet lost beyond the retry budget."""
        self._drops += 1

    def _drain(self) -> None:
        hook = self._drain_hook
        if hook is not None:
            hook()

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------

    @property
    def messages(self) -> int:
        """Logical messages shipped."""
        self._drain()
        return self._messages

    @property
    def packets(self) -> int:
        """TOS_Msg frames transmitted (excluding retransmissions)."""
        self._drain()
        return self._packets

    @property
    def payload_bytes(self) -> int:
        """Application bytes carried."""
        self._drain()
        return self._payload_bytes

    @property
    def air_bytes(self) -> int:
        """Total bytes on the air (payload + headers + retries)."""
        self._drain()
        return self._air_bytes

    @property
    def tx_joules(self) -> float:
        """Transmit energy charged."""
        self._drain()
        return self._tx_joules

    @property
    def rx_joules(self) -> float:
        """Receive energy charged."""
        self._drain()
        return self._rx_joules

    @property
    def retransmissions(self) -> int:
        """Extra attempts the loss process cost."""
        self._drain()
        return self._retransmissions

    @property
    def drops(self) -> int:
        """Packets lost beyond the retry budget."""
        return self._drops

    @property
    def by_kind(self) -> dict[str, int]:
        """Message count per message kind."""
        self._drain()
        return self._by_kind

    @property
    def bytes_by_kind(self) -> dict[str, int]:
        """Payload bytes per message kind."""
        self._drain()
        return self._bytes_by_kind

    def snapshot(self) -> PhaseSnapshot:
        """Immutable copy of the headline totals."""
        self._drain()
        return PhaseSnapshot(
            messages=self._messages,
            packets=self._packets,
            payload_bytes=self._payload_bytes,
            air_bytes=self._air_bytes,
            tx_joules=self._tx_joules,
            rx_joules=self._rx_joules,
        )

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Attribute everything recorded inside the block to ``name``.

        Re-entering the same phase name accumulates (per-epoch phases
        sum over a run). Attribution is *exclusive*: traffic recorded
        while a nested phase is open belongs to that inner phase alone
        and is subtracted from every enclosing phase's delta, so the
        values in :attr:`by_phase` partition the traffic they cover.
        """
        start = self.snapshot()
        frame = [name, start, _ZERO]
        self._phase_stack.append(frame)
        try:
            yield
        finally:
            self._phase_stack.pop()
            total = self.snapshot().minus(start)
            delta = total.minus(frame[2])
            previous = self.by_phase.get(name)
            if previous is not None:
                delta = previous.plus(delta)
            self.by_phase[name] = delta
            if self._phase_stack:
                parent = self._phase_stack[-1]
                parent[2] = parent[2].plus(total)

    @property
    def radio_joules(self) -> float:
        """Total radio energy (transmit plus receive)."""
        self._drain()
        return self._tx_joules + self._rx_joules

    def summary(self) -> dict[str, float]:
        """Headline totals as a plain dict (for printing / JSON)."""
        self._drain()
        return {
            "messages": self._messages,
            "packets": self._packets,
            "payload_bytes": self._payload_bytes,
            "air_bytes": self._air_bytes,
            "tx_joules": self._tx_joules,
            "rx_joules": self._rx_joules,
            "radio_joules": self._tx_joules + self._rx_joules,
            "retransmissions": self._retransmissions,
            "drops": self._drops,
        }

    def __repr__(self) -> str:
        self._drain()
        return (f"NetworkStats(messages={self._messages}, "
                f"packets={self._packets}, "
                f"payload_bytes={self._payload_bytes}, "
                f"air_bytes={self._air_bytes}, "
                f"drops={self._drops})")
