"""Traffic and energy statistics — the data behind the System Panel.

Every message the simulator ships increments these counters. The System
Panel (and every benchmark) reads them to report messages, packets,
bytes and joules, per message kind and per protocol phase; phases are
attributed with the :meth:`NetworkStats.phase` context manager.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator


@dataclass(frozen=True)
class PhaseSnapshot:
    """Immutable totals at one instant (used for per-phase deltas)."""

    messages: int
    packets: int
    payload_bytes: int
    air_bytes: int
    tx_joules: float
    rx_joules: float

    def minus(self, earlier: "PhaseSnapshot") -> "PhaseSnapshot":
        """Component-wise difference ``self - earlier``."""
        return PhaseSnapshot(
            messages=self.messages - earlier.messages,
            packets=self.packets - earlier.packets,
            payload_bytes=self.payload_bytes - earlier.payload_bytes,
            air_bytes=self.air_bytes - earlier.air_bytes,
            tx_joules=self.tx_joules - earlier.tx_joules,
            rx_joules=self.rx_joules - earlier.rx_joules,
        )


@dataclass
class NetworkStats:
    """Mutable counters accumulated over a run."""

    messages: int = 0
    packets: int = 0
    payload_bytes: int = 0
    air_bytes: int = 0
    tx_joules: float = 0.0
    rx_joules: float = 0.0
    retransmissions: int = 0
    drops: int = 0
    by_kind: dict[str, int] = field(default_factory=dict)
    bytes_by_kind: dict[str, int] = field(default_factory=dict)
    by_phase: dict[str, PhaseSnapshot] = field(default_factory=dict)
    _phase_stack: list[tuple[str, PhaseSnapshot]] = field(default_factory=list,
                                                          repr=False)

    def record(self, kind: str, packets: int, payload_bytes: int,
               air_bytes: int, tx_joules: float, rx_joules: float,
               retransmissions: int = 0) -> None:
        """Charge one shipped logical message."""
        self.messages += 1
        self.packets += packets
        self.payload_bytes += payload_bytes
        self.air_bytes += air_bytes
        self.tx_joules += tx_joules
        self.rx_joules += rx_joules
        self.retransmissions += retransmissions
        self.by_kind[kind] = self.by_kind.get(kind, 0) + 1
        self.bytes_by_kind[kind] = (
            self.bytes_by_kind.get(kind, 0) + payload_bytes
        )

    def record_drop(self) -> None:
        """Count a packet lost beyond the retry budget."""
        self.drops += 1

    def snapshot(self) -> PhaseSnapshot:
        """Immutable copy of the headline totals."""
        return PhaseSnapshot(
            messages=self.messages,
            packets=self.packets,
            payload_bytes=self.payload_bytes,
            air_bytes=self.air_bytes,
            tx_joules=self.tx_joules,
            rx_joules=self.rx_joules,
        )

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Attribute everything recorded inside the block to ``name``.

        Re-entering the same phase name accumulates (per-epoch phases
        sum over a run). Nested phases attribute to the innermost name
        and to every enclosing one (each context sees its own delta).
        """
        start = self.snapshot()
        self._phase_stack.append((name, start))
        try:
            yield
        finally:
            self._phase_stack.pop()
            delta = self.snapshot().minus(start)
            if name in self.by_phase:
                previous = self.by_phase[name]
                delta = PhaseSnapshot(
                    messages=previous.messages + delta.messages,
                    packets=previous.packets + delta.packets,
                    payload_bytes=previous.payload_bytes + delta.payload_bytes,
                    air_bytes=previous.air_bytes + delta.air_bytes,
                    tx_joules=previous.tx_joules + delta.tx_joules,
                    rx_joules=previous.rx_joules + delta.rx_joules,
                )
            self.by_phase[name] = delta

    @property
    def radio_joules(self) -> float:
        """Total radio energy (transmit plus receive)."""
        return self.tx_joules + self.rx_joules

    def summary(self) -> dict[str, float]:
        """Headline totals as a plain dict (for printing / JSON)."""
        return {
            "messages": self.messages,
            "packets": self.packets,
            "payload_bytes": self.payload_bytes,
            "air_bytes": self.air_bytes,
            "tx_joules": self.tx_joules,
            "rx_joules": self.rx_joules,
            "radio_joules": self.radio_joules,
            "retransmissions": self.retransmissions,
            "drops": self.drops,
        }
