"""Columnar epoch kernel: structure-of-arrays batch sensing and masks.

PRs 4–6 made the epoch loop allocation-free but left it object-at-a-
time: every epoch still walks per-node Python objects. This module is
the data-layout half of the hot path — readings, filter intervals and
liveness live in parallel *columns* (one slot per node, aligned to the
deployment's sorted alive-id tuple), so the per-epoch inner loops
become a handful of whole-column operations plus sparse scalar work on
the rows a mask singles out:

* **batch sensing** — :meth:`repro.network.simulator.Network.read_many`
  samples a whole id tuple through one
  :meth:`~repro.sensing.generators.FieldGenerator.batch_values` call
  per board channel (grouped by an identity-keyed sampling plan cached
  on the alive tuple), vectorizing the clamp + ADC quantization — and,
  for hash-jittered fields, the per-cell uniform draw itself via
  :func:`hash01_column` — over the column; and
* **mask-driven passes** — FILA's monitor / answer / filter-install
  loops (:mod:`repro.core.fila`) ask the column helpers below which
  rows actually need Python-level work this epoch and skip the rest.

**Switch-and-prove discipline** (same contract as
:mod:`repro.network.hotpath`, whose switch this one sits beside): the
kernel is *semantically invisible*. Every reading, message, byte,
joule, counter and RNG draw is byte-identical with the kernel on or
off; ``tests/test_hotpath_equivalence.py`` proves it by driving random
workloads through reference / hotpath / columnar modes — under both
backends — and comparing every observable. :func:`scalar_path` is the
escape hatch the proofs (and ``repro perf``) use to time the
object-at-a-time hot path without the kernel.

**Backends.** Whole-column math runs on numpy when it is importable
and on a pure-python ``array``-module backend when it is not (bare
deployments, the CI job that uninstalls numpy). Both backends produce
bit-identical columns: the vectorized ops used here (elementwise
add / min / max and ``np.rint``-based ADC quantization) are IEEE-754
identical to their scalar equivalents, and anything that is *not*
order-safe (windowed ``sum`` folds, per-cell Mersenne draws) stays
scalar on purpose. :func:`force_python_backend` pins the fallback for
tests even when numpy is installed.

What deliberately stays scalar, and why:

* per-cell *Mersenne* draws — Gaussian readings
  (:class:`~repro.sensing.generators.RoomField`) are pinned to
  ``random.Random(cell_seed)``'s Mersenne Twister output, which cannot
  be vectorized without changing bytes; the batch path only amortizes
  the object allocation by reusing one instance (``seed()`` resets
  ``gauss_next``, so draws match a fresh instance exactly). Uniform
  jitter (:class:`~repro.sensing.generators.ZipfEventField`) escaped
  this trap by moving to the counter-based splitmix64 hash
  (``_cell_hash01``), whose scalar and :func:`hash01_column` forms are
  bit-identical by construction — ``tests/test_generators.py`` pins
  them cell by cell;
* float accumulations (windowed AVG/SUM) — ``sum()`` is a left fold,
  numpy reductions are pairwise; not byte-identical, so not batched;
* message construction and transport — every shipped message must keep
  its exact order (the loss process draws from a shared stream), so
  masked passes visit violator rows in ascending id order and ship
  scalar.
"""

from __future__ import annotations

import os
from array import array
from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterator, Sequence

from . import hotpath

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from ..sensing.modalities import Modality

# --------------------------------------------------------------------
# Backend selection
# --------------------------------------------------------------------

#: numpy module when importable (and not disabled), else None. The
#: REPRO_NO_NUMPY environment variable forces the pure-python backend
#: process-wide — the CI fallback job and the bench's backend ablation
#: both use it.
try:  # pragma: no cover - exercised via both CI environments
    if os.environ.get("REPRO_NO_NUMPY"):
        _np = None
    else:
        import numpy as _np
except ImportError:  # pragma: no cover - the no-numpy environment
    _np = None

#: Test override: True pins the pure-python backend even when numpy
#: is importable (see :func:`force_python_backend`).
_force_python = False


def numpy_module():
    """The active numpy module, or None when the pure-python backend
    is in effect (numpy missing, ``REPRO_NO_NUMPY`` set, or a
    :func:`force_python_backend` block)."""
    return None if _force_python else _np


def backend() -> str:
    """``"numpy"`` or ``"python"`` — the active column backend."""
    return "python" if numpy_module() is None else "numpy"


@contextmanager
def force_python_backend() -> Iterator[None]:
    """Run the enclosed block on the pure-python column backend.

    The equivalence suite uses this to prove the fallback produces the
    same bytes as numpy even on hosts where numpy is installed; the
    real numpy-absent environment is additionally exercised by the CI
    job that uninstalls numpy.
    """
    global _force_python
    previous = _force_python
    _force_python = True
    try:
        yield
    finally:
        _force_python = previous


# --------------------------------------------------------------------
# The switch (beside hotpath.reference_path)
# --------------------------------------------------------------------

#: The columnar switch. The kernel is only *active* when the hot path
#: is also enabled: columnar state layers on top of the hot-path
#: caches, and the reference path must stay the pristine
#: first-principles oracle.
_enabled = True


def enabled() -> bool:
    """True when the columnar kernel is active (columnar switch on AND
    the hot path enabled — :func:`hotpath.reference_path` therefore
    disables this kernel too)."""
    return _enabled and hotpath._enabled


def set_enabled(value: bool) -> None:
    """Globally select the columnar (True) or object-at-a-time (False)
    epoch kernel. Takes effect on the next batch read / epoch pass."""
    global _enabled
    _enabled = bool(value)


@contextmanager
def scalar_path() -> Iterator[None]:
    """Run the enclosed block on the object-at-a-time hot path (the
    PR 6 kernel): hot-path caches stay on, columns are bypassed. The
    equivalence suite and ``repro perf`` use this to hold the columnar
    kernel to the scalar hot path, isolating the data-layout speedup
    from the caching speedup."""
    previous = _enabled
    set_enabled(False)
    try:
        yield
    finally:
        set_enabled(previous)


# --------------------------------------------------------------------
# Column constructors (backend-polymorphic: ndarray or list/array)
# --------------------------------------------------------------------

def float_column(values: Sequence[float]):
    """A float64 column from per-row values (ndarray, or ``array('d')``
    on the fallback backend — both index and mutate the same way)."""
    np = numpy_module()
    if np is not None:
        return np.asarray(values, dtype=np.float64)
    return array("d", values)


def bool_column(n: int, fill: bool = False):
    """A boolean column of ``n`` rows (ndarray or list)."""
    np = numpy_module()
    if np is not None:
        return np.full(n, fill, dtype=bool)
    return [fill] * n


def nan() -> float:
    """The column encoding for "no value" (missing filter, unknown
    reading): NaN compares False against everything, exactly like the
    scalar paths' ``None`` guards."""
    return float("nan")


# --------------------------------------------------------------------
# Batch sensing helpers
# --------------------------------------------------------------------

def quantize_column(values: Sequence[float], modality: "Modality"
                    ) -> list[float]:
    """Vectorized :meth:`~repro.sensing.modalities.Modality.quantize`
    over a raw-readings column; bit-identical to the scalar method.

    Scalar ``round()`` and ``np.rint`` both round half-to-even, and
    the clamp / scale arithmetic is elementwise IEEE-754, so every row
    equals ``modality.quantize(row)`` exactly (asserted by
    ``tests/test_generators.py`` and the equivalence suite).
    """
    np = numpy_module()
    if np is None:
        quantize = modality.quantize
        return [quantize(value) for value in values]
    steps = (1 << modality.adc_bits) - 1
    lo, span = modality.lo, modality.span
    column = np.asarray(values, dtype=np.float64)
    clamped = np.minimum(modality.hi, np.maximum(lo, column))
    index = np.rint((clamped - lo) / span * steps)
    return (lo + index * span / steps).tolist()


def clamp_column(values: Sequence[float], modality: "Modality"
                 ) -> list[float]:
    """Vectorized :meth:`~repro.sensing.modalities.Modality.clamp`
    (the ``quantize=False`` board configuration)."""
    np = numpy_module()
    if np is None:
        clamp = modality.clamp
        return [clamp(value) for value in values]
    column = np.asarray(values, dtype=np.float64)
    return np.minimum(modality.hi,
                      np.maximum(modality.lo, column)).tolist()


def clamp_values(values: Sequence[float], lo: float, hi: float
                 ) -> list[float]:
    """Elementwise ``min(hi, max(lo, v))`` — the field generators'
    range clamp, vectorized; IEEE-identical to the scalar form."""
    np = numpy_module()
    if np is None:
        return [min(hi, max(lo, value)) for value in values]
    column = np.asarray(values, dtype=np.float64)
    return np.minimum(hi, np.maximum(lo, column)).tolist()


def hash01_column(seed: int, node_ids: Sequence[int], epoch: int):
    """One splitmix64 uniform in ``[0, 1)`` per (node, epoch) cell.

    The vectorized twin of
    :func:`repro.sensing.generators._cell_hash01` — same linear cell
    seed, same finalizer constants, wrapped mod 2**64 (numpy's uint64
    wraparound equals the scalar path's explicit masking), and the
    ``(h >> 11) * 2**-53`` float conversion is exact in both (the
    mantissa fits 53 bits). ``tests/test_generators.py`` pins the two
    together cell-by-cell.

    Returns a numpy float64 array, or a plain list on the pure-python
    backend (one scalar hash per cell — still ~300x cheaper than
    per-cell Mersenne seeding).
    """
    np = numpy_module()
    if np is None:
        from ..sensing.generators import _cell_hash01
        return [_cell_hash01(seed, node_id, epoch) for node_id in node_ids]
    mask64 = (1 << 64) - 1
    ids = np.asarray(node_ids, dtype=np.uint64)
    h = ((np.uint64((seed * 1_000_003) & mask64) + ids)
         * np.uint64(1_000_033) + np.uint64(epoch & mask64))
    h = (h ^ (h >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
    h = (h ^ (h >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
    h ^= h >> np.uint64(31)
    return (h >> np.uint64(11)).astype(np.float64) * 2.0 ** -53


# --------------------------------------------------------------------
# Mask helpers for FILA's fused passes
# --------------------------------------------------------------------
#
# Columns use NaN filter bounds for "no filter installed" and NaN known
# for "never reported": every comparison against NaN is False, which
# routes exactly the rows the scalar loops would special-case into the
# sparse scalar visit list. All helpers return ascending row indices —
# message order (and therefore the shared loss-RNG stream) must match
# the scalar iteration order byte for byte.

def pending_monitor_rows(values, flt_lo, flt_hi, synced) -> list[int]:
    """Rows the monitor pass must visit in Python.

    A row may be skipped iff its reading sits inside its installed
    filter AND the session's view bound is already that filter
    interval (``synced``): the scalar pass would call
    ``view.ensure(node, lo, hi)`` which is a proven no-op there
    (two float compares, no state change — see TopKView.ensure).
    """
    np = numpy_module()
    if np is not None and type(values) is np.ndarray:
        inside = (flt_lo <= values) & (values <= flt_hi)
        return np.nonzero(~(inside & synced))[0].tolist()
    return [row for row in range(len(values))
            if not (synced[row]
                    and flt_lo[row] <= values[row] <= flt_hi[row])]


def pending_answer_rows(values, known, flt_lo, synced) -> list[int]:
    """Rows the answer-time convergence pass must visit in Python.

    Skippable rows are non-exact (``known != value``), have a filter
    installed (``flt_lo`` not NaN) and are ``synced`` — the scalar
    pass would re-``ensure`` the filter interval, a no-op. Exact rows,
    filterless rows and unsynced rows keep their scalar handling.
    """
    np = numpy_module()
    if np is not None and type(values) is np.ndarray:
        need = (values == known) | ~synced | np.isnan(flt_lo)
        return np.nonzero(need)[0].tolist()
    return [row for row in range(len(values))
            if values[row] == known[row] or not synced[row]
            or flt_lo[row] != flt_lo[row]]  # NaN != NaN: no filter


def acceptable_filters(flt_lo, flt_hi, chosen, boundary: float,
                       agg_lo: float, agg_hi: float):
    """The repartition acceptability column.

    Mirrors ``Fila._install_filters``: a chosen row keeps its filter
    when it already sits at/above the cut with the full upper range; a
    non-chosen row when at/below the cut with the full lower range.
    NaN bounds (no filter) are never acceptable. The caller still
    applies the sparse exact-value containment fix-up before acting.
    """
    np = numpy_module()
    if np is not None and type(chosen) is np.ndarray:
        keep_chosen = (flt_lo >= boundary) & (flt_hi == agg_hi)
        keep_other = (flt_hi <= boundary) & (flt_lo == agg_lo)
        return np.where(chosen, keep_chosen, keep_other)
    return [((flt_lo[row] >= boundary and flt_hi[row] == agg_hi)
             if chosen[row]
             else (flt_hi[row] <= boundary and flt_lo[row] == agg_lo))
            for row in range(len(chosen))]


def pending_install_rows(flt_lo, flt_hi, chosen, acceptable,
                         boundary: float, agg_lo: float, agg_hi: float
                         ) -> list[int]:
    """Rows whose filter must actually be reinstalled, ascending.

    A row needs work when it has a filter, is not acceptable, and its
    current interval differs from the target interval for its side of
    the cut (the scalar pass's ``current == new_filter`` skip).
    """
    np = numpy_module()
    if np is not None and type(chosen) is np.ndarray:
        has_filter = ~np.isnan(flt_lo)
        already = np.where(chosen,
                           (flt_lo == boundary) & (flt_hi == agg_hi),
                           (flt_lo == agg_lo) & (flt_hi == boundary))
        need = has_filter & ~acceptable & ~already
        return np.nonzero(need)[0].tolist()
    rows = []
    for row in range(len(chosen)):
        lo, hi = flt_lo[row], flt_hi[row]
        if lo != lo or acceptable[row]:  # NaN lo: no filter installed
            continue
        if chosen[row]:
            if lo == boundary and hi == agg_hi:
                continue
        elif lo == agg_lo and hi == boundary:
            continue
        rows.append(row)
    return rows


def exact_rows(flt_lo, flt_hi, synced) -> list[int]:
    """Rows whose certification bound is exact (``lb == ub``).

    Post-monitor every unsynced row's bound is a point (its freshly
    reported or probed value); a synced row is exact only when its
    filter interval is degenerate. These are the rows the repartition's
    exact-value containment fix-up inspects.
    """
    np = numpy_module()
    if np is not None and type(synced) is np.ndarray:
        return np.nonzero(~synced | (flt_lo == flt_hi))[0].tolist()
    return [row for row in range(len(synced))
            if not synced[row] or flt_lo[row] == flt_hi[row]]


def masked_ceiling(values, flt_hi, synced, chosen_rows: Sequence[int]
                   ) -> float | None:
    """``max`` upper bound over every row not in ``chosen_rows``.

    Post-monitor each row's view bound is either its filter interval
    (``synced``) or exactly its reading, so the upper bound column is
    ``where(synced, flt_hi, value)``. Float ``max`` is reduction-order
    safe, so the column maximum equals the scalar ``max()`` over the
    view's bounds mapping byte for byte. None when every row is
    chosen (the scalar ``others`` list is empty).
    """
    n = len(values)
    if len(chosen_rows) >= n:
        chosen = set(chosen_rows)
        if all(row in chosen for row in range(n)):
            return None
    np = numpy_module()
    if np is not None and type(values) is np.ndarray:
        upper = np.where(synced, flt_hi, values)
        keep = np.ones(n, dtype=bool)
        for row in chosen_rows:
            keep[row] = False
        if not keep.any():
            return None
        return float(upper[keep].max())
    chosen = set(chosen_rows)
    best = None
    for row in range(n):
        if row in chosen:
            continue
        upper = flt_hi[row] if synced[row] else values[row]
        if best is None or upper > best:
            best = upper
    return best


# --------------------------------------------------------------------
# Per-deployment columnar state
# --------------------------------------------------------------------

class ColumnarState:
    """Structure-of-arrays caches one :class:`Network` owns.

    Holds the per-attribute *readings row* of the current epoch — the
    value dict (in ascending-id order, shared by every session that
    asks for the same id tuple) plus its aligned column — so N
    concurrent sessions pay for one batch acquisition instead of N
    scans of the per-node sample caches. Rows are keyed by the
    identity of the requesting id tuple (the network's cached alive
    tuple, or an engine's cached participant tuple) and epoch-stamped,
    so staleness is impossible by construction: a new epoch or a
    topology change (which rebuilds the id tuple) simply never
    matches.
    """

    __slots__ = ("_rows", "_plans", "_epochs")

    def __init__(self) -> None:
        #: attribute -> {id(ids_tuple): (epoch, ids_tuple, readings,
        #:                               column-or-None)}
        self._rows: dict[str, dict[int, list]] = {}
        #: attribute -> (ids_tuple, plan) — the memoized sampling plan
        #: (see :meth:`plan`).
        self._plans: dict[str, tuple] = {}
        #: attribute -> epoch of the newest stored row (any id tuple).
        self._epochs: dict[str, int] = {}

    def cached(self, attribute: str, epoch: int, ids: tuple[int, ...]):
        """The readings dict previously built for this exact id tuple
        at this epoch, or None."""
        entry = self._rows.get(attribute, {}).get(id(ids))
        if entry is not None and entry[0] == epoch and entry[1] is ids:
            return entry[2]
        return None

    def has_row(self, attribute: str, epoch: int) -> bool:
        """Whether *any* readings row (whatever its id tuple) has been
        stored for this attribute at this epoch.

        False means no batch read has run yet this epoch, so no session
        can have warmed the per-node sample caches through the planned
        path — the epoch's first batch may skip the per-row freshness
        probe (:meth:`~repro.network.node.SensorNode.book_sample` still
        re-checks per node, covering stragglers sampled by a scalar
        ``read``)."""
        return self._epochs.get(attribute) == epoch

    def store(self, attribute: str, epoch: int, ids: tuple[int, ...],
              readings: dict[int, float]) -> None:
        """Remember one epoch's readings row for an id tuple."""
        self._epochs[attribute] = epoch
        per_attribute = self._rows.setdefault(attribute, {})
        if len(per_attribute) > 16:
            # A session churning through fresh participant tuples must
            # not grow the row table without bound.
            per_attribute.clear()
        per_attribute[id(ids)] = [epoch, ids, readings, None]

    def plan(self, attribute: str, ids: tuple[int, ...]):
        """The memoized sampling plan for this exact id tuple, or None.

        A plan is the id tuple's partition into board channels —
        ``((field, modality, quantize, ids_list, (row, node) pairs),
        ...)`` — everything about the grouping walk of
        :meth:`~repro.network.simulator.Network.read_many` that is a
        pure function of the id tuple and the nodes' boards. It is
        keyed by the tuple's *identity*: any topology change rebuilds
        the network's alive tuple (and engines rebuild their
        participant tuples), so a stale plan simply never matches.
        Per-epoch freshness (the same-epoch sample cache) is *not*
        baked in — :meth:`~repro.network.node.SensorNode.book_sample`
        re-checks it per node each epoch."""
        entry = self._plans.get(attribute)
        if entry is not None and entry[0] is ids:
            return entry[1]
        return None

    def store_plan(self, attribute: str, ids: tuple[int, ...],
                   plan) -> None:
        """Remember the sampling plan for an id tuple (one per
        attribute — sessions share the alive tuple, and an engine
        cycling through fresh subset tuples overwrites harmlessly)."""
        self._plans[attribute] = (ids, plan)

    def column(self, attribute: str, epoch: int, ids: tuple[int, ...]):
        """The readings row as a backend column aligned to ``ids``
        (built lazily, cached beside the dict); None when the row is
        not cached."""
        entry = self._rows.get(attribute, {}).get(id(ids))
        if entry is None or entry[0] != epoch or entry[1] is not ids:
            return None
        if entry[3] is None:
            entry[3] = float_column(list(entry[2].values()))
        return entry[3]
