"""Epoch-synchronous network simulator.

The TinyDB execution model is epoch-synchronous: every epoch the sink's
query wave travels down the routing tree, nodes sample, and partial
results converge-cast back up, children before parents. The
:class:`Network` reproduces that model and provides the only two
transport primitives the algorithms use:

* :meth:`Network.send_up` — unicast one logical message over a tree
  edge from child to parent (converge-cast step); and
* :meth:`Network.broadcast_down` — a parent transmits once and all its
  tree children receive (the radio-broadcast optimisation TAG relies
  on for dissemination).

Both primitives fragment the message into TOS_Msg packets, charge
transmit energy to the sender and receive energy to each receiver, and
record everything in :class:`~repro.network.stats.NetworkStats`.
"""

from __future__ import annotations

import random
from contextlib import contextmanager
from typing import Callable, Hashable, Iterable, Iterator, Mapping

from ..errors import ConfigurationError, RoutingError, TopologyError
from ..sensing.board import SensorBoard
from .energy import EnergyLedger, EnergyModel
from .events import TopologyEvent, TopologyEventKind
from .link import RadioModel
from .messages import ControlMessage, WireMessage
from .node import SensorNode
from .packets import fragment
from .stats import NetworkStats
from .topology import Topology
from .tree import RoutingTree


class Network:
    """A deployed sensor network: topology + tree + cost models + nodes."""

    def __init__(self, topology: Topology,
                 radio: RadioModel | None = None,
                 energy: EnergyModel | None = None,
                 tree: RoutingTree | None = None,
                 boards: Mapping[int, SensorBoard] | None = None,
                 group_of: Mapping[int, Hashable] | None = None,
                 seed: int = 0):
        """Deploy a network.

        Args:
            topology: Physical placement and connectivity.
            radio: Link model (defaults to the MICA2 CC1000).
            energy: Energy model (defaults to MICA2 calibration).
            tree: Routing tree; built by BFS from the topology when
                omitted. An explicit tree lets tests pin the exact
                hierarchy of the paper's Figure 1.
            boards: Per-node sensor boards; one shared board instance
                may be passed for all nodes via a dict with every id.
            group_of: Node id → cluster (room) membership.
            seed: Seed for the loss process.
        """
        self.topology = topology
        self.radio = radio or RadioModel(range_m=topology.radio_range)
        self.energy = energy or EnergyModel()
        self.tree = tree or RoutingTree.from_topology(topology)
        missing = set(self.tree.node_ids) - set(topology.node_ids)
        if missing:
            raise TopologyError(f"tree references unknown nodes: {sorted(missing)}")
        self.stats = NetworkStats()
        self._rng = random.Random(seed)
        group_of = group_of or {}
        self.nodes: dict[int, SensorNode] = {}
        for node_id in self.tree.sensor_ids:
            board = boards.get(node_id) if boards else None
            self.nodes[node_id] = SensorNode(
                node_id, board=board, group=group_of.get(node_id))
        #: The sink keeps an energy ledger too (mains-powered in the
        #: demo, but counting keeps totals comparable).
        self.sink_ledger = EnergyLedger()
        self.epoch = 0
        self._clock_holds = 0
        self._advance_requested = False
        self._stat_taps: list[NetworkStats] = []
        self._subscribers: list[Callable[[TopologyEvent], None]] = []

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def sink_id(self) -> int:
        """The base station id."""
        return self.tree.root

    def node(self, node_id: int) -> SensorNode:
        """The runtime of a sensor node."""
        try:
            return self.nodes[node_id]
        except KeyError:
            raise TopologyError(f"unknown sensor {node_id}") from None

    def alive_sensor_ids(self) -> tuple[int, ...]:
        """Sensors still running, sorted by id."""
        return tuple(i for i in self.tree.sensor_ids if self.nodes[i].alive)

    def ledger(self, node_id: int) -> EnergyLedger:
        """The energy ledger of a node (or of the sink)."""
        if node_id == self.sink_id:
            return self.sink_ledger
        return self.node(node_id).ledger

    def groups(self) -> dict[Hashable, int]:
        """Cluster → number of live member sensors."""
        counts: dict[Hashable, int] = {}
        for node_id in self.alive_sensor_ids():
            group = self.nodes[node_id].group
            if group is not None:
                counts[group] = counts.get(group, 0) + 1
        return counts

    # ------------------------------------------------------------------
    # Transport primitives
    # ------------------------------------------------------------------

    def _ship(self, sender: int, receivers: Iterable[int],
              message: WireMessage) -> None:
        """Fragment, apply the loss process, charge energy, record."""
        receivers = tuple(receivers)
        cost = fragment(message.payload_bytes)
        attempts = 0
        try:
            for _ in range(cost.packets):
                attempts += self.radio.attempts_needed(self._rng)
        except RoutingError:
            self.stats.record_drop()
            for tap in self._stat_taps:
                tap.record_drop()
            raise
        air_bytes = cost.air_bytes + (attempts - cost.packets) * (
            cost.air_bytes // cost.packets)
        tx_joules = air_bytes * self.energy.tx_joules_per_byte
        rx_joules_each = air_bytes * self.energy.rx_joules_per_byte
        self.ledger(sender).charge_tx(tx_joules)
        for receiver in receivers:
            self.ledger(receiver).charge_rx(rx_joules_each)
        for stats in (self.stats, *self._stat_taps):
            stats.record(
                kind=message.kind,
                packets=cost.packets,
                payload_bytes=cost.payload_bytes,
                air_bytes=air_bytes,
                tx_joules=tx_joules,
                rx_joules=rx_joules_each * len(receivers),
                retransmissions=attempts - cost.packets,
            )

    def send_up(self, child: int, message: WireMessage) -> int:
        """Unicast from ``child`` to its tree parent; returns the parent id."""
        parent = self.tree.parent(child)
        if child != self.sink_id and not self.nodes[child].alive:
            raise RoutingError(f"dead node {child} cannot transmit")
        self._ship(child, (parent,), message)
        return parent

    def broadcast_down(self, parent: int, message: WireMessage) -> tuple[int, ...]:
        """One transmission from ``parent`` heard by all its tree children."""
        children = self.tree.children(parent)
        live = tuple(c for c in children if self.nodes[c].alive)
        if not live:
            return ()
        self._ship(parent, live, message)
        return live

    def flood_down(self, make_message: Callable[[int], WireMessage | None]
                   ) -> int:
        """Disseminate sink→leaves: every non-leaf broadcasts once.

        ``make_message(node_id)`` builds the (possibly node-specific)
        message each forwarding parent sends; returning None suppresses
        that hop (used by probe phases to prune the dissemination to
        relevant subtrees). Returns the number of broadcasts sent.
        """
        sends = 0
        for node_id in self.tree.pre_order():
            if node_id != self.sink_id and not self.nodes[node_id].alive:
                continue
            if not self.tree.children(node_id):
                continue
            message = make_message(node_id)
            if message is None:
                continue
            if self.broadcast_down(node_id, message):
                sends += 1
        return sends

    def unicast_to_sink(self, origin: int, message: WireMessage) -> int:
        """Relay hop-by-hop from ``origin`` to the sink, no merging.

        Flat protocols (TPUT, FILA reports) route through the tree but
        do not aggregate, so the same logical message pays transmit and
        receive at every hop. Returns the number of hops charged.
        """
        hops = 0
        for node_id in self.tree.path_to_root(origin)[:-1]:
            self._ship(node_id, (self.tree.parent(node_id),), message)
            hops += 1
        return hops

    def unicast_from_sink(self, target: int, message: WireMessage) -> int:
        """Relay hop-by-hop from the sink to ``target``; returns hops."""
        path = self.tree.path_to_root(target)
        hops = 0
        for receiver, sender in zip(path[:-1][::-1] or (), path[1:][::-1] or ()):
            self._ship(sender, (receiver,), message)
            hops += 1
        return hops

    # ------------------------------------------------------------------
    # Epoch machinery
    # ------------------------------------------------------------------

    def converge_cast_order(self) -> tuple[int, ...]:
        """Live sensors leaves-first (the per-epoch send schedule)."""
        return tuple(
            node_id for node_id in self.tree.post_order()
            if node_id != self.sink_id and self.nodes[node_id].alive
        )

    def sample_all(self, attribute: str) -> dict[int, float]:
        """Every live sensor samples ``attribute`` for the current epoch."""
        return {
            node_id: self.nodes[node_id].read(attribute, self.epoch)
            for node_id in self.alive_sensor_ids()
        }

    def advance_epoch(self) -> int:
        """Close the epoch: charge idle energy, bump the counter.

        Inside a :meth:`shared_epoch` block the advance is deferred:
        the request is latched and one real advance happens when the
        outermost block exits. That lets N query sessions each "finish
        their epoch" while the deployment's clock ticks exactly once.
        """
        if self._clock_holds:
            self._advance_requested = True
            return self.epoch
        for node_id in self.alive_sensor_ids():
            self.nodes[node_id].ledger.charge_idle(
                self.energy.idle_joules_per_epoch)
        self.epoch += 1
        return self.epoch

    @contextmanager
    def shared_epoch(self) -> Iterator[None]:
        """Hold the epoch clock while several sessions run one epoch.

        Every :meth:`advance_epoch` call inside the block (each
        session's engine closes "its" epoch) is coalesced into a single
        real advance on exit, so idle energy is charged once and all
        sessions observe the same epoch number. Nesting is allowed; the
        outermost block performs the advance.
        """
        self._clock_holds += 1
        try:
            yield
        finally:
            self._clock_holds -= 1
            if self._clock_holds == 0 and self._advance_requested:
                self._advance_requested = False
                self.advance_epoch()

    @contextmanager
    def tap_stats(self, stats: NetworkStats) -> Iterator[NetworkStats]:
        """Mirror every message shipped inside the block into ``stats``.

        Sessions use this to attribute their own traffic on a shared
        deployment: the global ledger keeps counting everything, while
        the tapped ledger sees only the block's messages.
        """
        self._stat_taps.append(stats)
        try:
            yield stats
        finally:
            # Unregister by identity: NetworkStats is a dataclass, so
            # list.remove() would match any ledger with equal counters.
            for index, tap in enumerate(reversed(self._stat_taps)):
                if tap is stats:
                    del self._stat_taps[len(self._stat_taps) - 1 - index]
                    break

    # ------------------------------------------------------------------
    # Node lifecycle (churn)
    # ------------------------------------------------------------------

    def subscribe(self, callback: Callable[[TopologyEvent], None]) -> None:
        """Register a listener for node failure / join lifecycle events.

        Every :meth:`kill_node` and :meth:`join_node` publishes one
        :class:`~repro.network.events.TopologyEvent` stamped with the
        current epoch; the server forwards them to live query sessions
        so engines invalidate and re-prime only the affected subtrees.
        """
        if callback not in self._subscribers:
            self._subscribers.append(callback)

    def unsubscribe(self, callback: Callable[[TopologyEvent], None]) -> None:
        """Remove a lifecycle listener (missing callbacks are ignored)."""
        if callback in self._subscribers:
            self._subscribers.remove(callback)

    def _emit(self, event: TopologyEvent) -> None:
        for callback in tuple(self._subscribers):
            callback(event)

    def _energy_spent(self, node_id: int) -> float:
        return self.ledger(node_id).total

    def kill_node(self, node_id: int, repair: bool = True) -> None:
        """Kill a sensor and, by default, repair the routing tree.

        The repair is *incremental*: orphaned subtrees re-attach at
        their best surviving radio neighbour (residual-energy-aware),
        each new edge paying one attach handshake charged to the
        ``recovery`` stats phase. With ``repair=False`` the tree is
        left broken — batch schedules kill several victims and repair
        once on the last. A typed ``NODE_FAILED`` event is published
        either way.
        """
        if node_id == self.sink_id:
            raise ConfigurationError(
                "the sink cannot be killed: it is the mains-powered base "
                "station every query routes to"
            )
        former_parent = (self.tree.parent(node_id)
                         if node_id in self.tree.node_ids else None)
        self.node(node_id).kill()
        reattached: tuple[tuple[int, int], ...] = ()
        detached: tuple[int, ...] = ()
        dirty: set[int] = set()
        if repair:
            dead = [i for i, n in self.nodes.items() if not n.alive]
            self.tree, report = self.tree.repaired(
                dead, self.topology, energy_of=self._energy_spent,
                detach_unreachable=True)
            reattached = report.reattached
            detached = report.detached
            # Partitioned survivors keep sensing, but the deployment
            # can no longer hear them: they leave the fleet too.
            for lost in detached:
                self.nodes[lost].kill()
            with self.stats.phase("recovery"):
                for child, parent in reattached:
                    self._ship(child, (parent,),
                               ControlMessage(label="attach"))
            in_tree = set(self.tree.node_ids)
            for child, parent in reattached:
                dirty.add(child)
                dirty.update(self.tree.path_to_root(parent))
            if former_parent in in_tree:
                dirty.update(self.tree.path_to_root(former_parent))
        dirty.discard(self.sink_id)
        self._emit(TopologyEvent(
            kind=TopologyEventKind.NODE_FAILED,
            epoch=self.epoch,
            node_id=node_id,
            repaired=repair,
            reattached=reattached,
            dirty=tuple(sorted(dirty)),
        ))
        for lost in detached:
            self._emit(TopologyEvent(
                kind=TopologyEventKind.NODE_FAILED,
                epoch=self.epoch,
                node_id=lost,
                repaired=True,
            ))

    def join_node(self, node_id: int, position: tuple[float, float],
                  board: SensorBoard | None = None,
                  group: Hashable = None) -> int:
        """Deploy one more mote mid-run; returns its chosen parent.

        The joiner is placed in the topology, attaches to the alive
        in-range tree node that has spent the least energy (ties break
        toward the shallower, then smaller-id candidate), pays one join
        handshake on the ``recovery`` stats phase, and a ``NODE_JOINED``
        event is published. A previously killed node id may rejoin —
        fresh battery, empty history — but an alive id is refused.
        """
        if node_id == self.sink_id:
            raise ConfigurationError("the sink is already deployed")
        existing = self.nodes.get(node_id)
        if existing is not None and existing.alive:
            raise ConfigurationError(
                f"node {node_id} is already deployed and alive")
        self.topology.add_node(node_id, position)
        in_tree = set(self.tree.node_ids)
        candidates = [
            neighbor for neighbor in self.topology.neighbors(node_id)
            if neighbor in in_tree
            and (neighbor == self.sink_id or self.nodes[neighbor].alive)
        ]
        if not candidates:
            self.topology.remove_node(node_id)
            raise TopologyError(
                f"node {node_id} at {position} hears no alive node; "
                f"place it within radio range of the deployment"
            )
        parent = min(candidates, key=lambda n: (
            self._energy_spent(n), self.tree.depth(n), n))
        self.tree = self.tree.attach(node_id, parent)
        self.nodes[node_id] = SensorNode(node_id, board=board, group=group)
        with self.stats.phase("recovery"):
            self._ship(node_id, (parent,), ControlMessage(label="join"))
        dirty = {node_id, *self.tree.path_to_root(parent)}
        dirty.discard(self.sink_id)
        self._emit(TopologyEvent(
            kind=TopologyEventKind.NODE_JOINED,
            epoch=self.epoch,
            node_id=node_id,
            repaired=True,
            reattached=((node_id, parent),),
            dirty=tuple(sorted(dirty)),
        ))
        return parent

    def bottleneck_energy(self) -> tuple[int, float]:
        """(node id, joules) of the most drained sensor — the lifetime limit."""
        if not self.nodes:
            raise ConfigurationError("network has no sensors")
        node_id = max(self.nodes, key=lambda i: self.nodes[i].ledger.total)
        return node_id, self.nodes[node_id].ledger.total
