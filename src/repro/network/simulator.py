"""Epoch-synchronous network simulator.

The TinyDB execution model is epoch-synchronous: every epoch the sink's
query wave travels down the routing tree, nodes sample, and partial
results converge-cast back up, children before parents. The
:class:`Network` reproduces that model and provides the only two
transport primitives the algorithms use:

* :meth:`Network.send_up` — unicast one logical message over a tree
  edge from child to parent (converge-cast step); and
* :meth:`Network.broadcast_down` — a parent transmits once and all its
  tree children receive (the radio-broadcast optimisation TAG relies
  on for dissemination).

Both primitives fragment the message into TOS_Msg packets, charge
transmit energy to the sender and receive energy to each receiver, and
record everything in :class:`~repro.network.stats.NetworkStats`.

The per-message work runs on an allocation-free **hot path** (see
:mod:`repro.network.hotpath`): packet costs come from the memoized
fragment table, energy rates and ledger lookups are precomputed,
traffic is batched per epoch into per-kind accumulators flushed at
epoch/phase/tap boundaries, and tree traversal orders / live-children
lookups are cached and invalidated on topology change. All of it is
observationally identical to the reference path — same counters, same
per-phase snapshots, same RNG draws — which stays available as the
oracle via :func:`repro.network.hotpath.reference_path`;
``tests/test_hotpath_equivalence.py`` proves the equivalence
byte-for-byte.

Randomness is split into *per-purpose streams*: the packet-loss process
draws from one seeded RNG, while churn-recovery handshakes (attach /
join control traffic) draw from a second stream derived from the same
seed. Topology events therefore never perturb the loss outcomes of
session traffic — a run with a churn schedule whose victims carry no
query traffic sees byte-for-byte the same losses as a run without it.

A third switch (:mod:`repro.network.eventsim`) replaces the inline
ship calls with a discrete-event queue: :meth:`Network._ship_unicast`
and friends *post* deliveries that fire from the queue. In zero-delay
mode the queue drains synchronously at each post site, so ordering,
counters and RNG draws are byte-identical to the inline path — the
inline path stays in-tree as that mode's oracle
(:func:`repro.network.eventsim.inline_ship`), and
``tests/test_hotpath_equivalence.py::TestEventsimEquivalence`` holds
the proof. Delay and partitioned modes defer transport accounting to
timestamped events drained at the epoch barrier (churn-recovery
handshakes always ship inline: repairs are synchronous tree surgery,
not radio traffic racing an epoch).
"""

from __future__ import annotations

import random
from contextlib import contextmanager
from typing import Callable, Hashable, Iterable, Iterator, Mapping, Sequence

from ..errors import ConfigurationError, RoutingError, TopologyError
from ..sensing.board import SensorBoard
from . import columnar, eventsim, hotpath
from .energy import EnergyLedger, EnergyModel
from .events import TopologyEvent, TopologyEventKind
from .link import RadioModel
from .messages import ControlMessage, WireMessage
from .node import SensorNode
from .packets import fragment, fragment_cached
from .stats import NetworkStats
from .topology import Topology
from .tree import RoutingTree

#: Offset deriving the recovery-handshake RNG stream from the loss seed
#: (an arbitrary odd 64-bit constant; any fixed value works).
_RECOVERY_STREAM = 0x9E3779B97F4A7C15


class Network:
    """A deployed sensor network: topology + tree + cost models + nodes."""

    def __init__(self, topology: Topology,
                 radio: RadioModel | None = None,
                 energy: EnergyModel | None = None,
                 tree: RoutingTree | None = None,
                 boards: Mapping[int, SensorBoard] | None = None,
                 group_of: Mapping[int, Hashable] | None = None,
                 seed: int = 0):
        """Deploy a network.

        Args:
            topology: Physical placement and connectivity.
            radio: Link model (defaults to the MICA2 CC1000).
            energy: Energy model (defaults to MICA2 calibration).
            tree: Routing tree; built by BFS from the topology when
                omitted. An explicit tree lets tests pin the exact
                hierarchy of the paper's Figure 1.
            boards: Per-node sensor boards; one shared board instance
                may be passed for all nodes via a dict with every id.
            group_of: Node id → cluster (room) membership.
            seed: Seed for the loss process.
        """
        self.topology = topology
        self.radio = radio or RadioModel(range_m=topology.radio_range)
        self.energy = energy or EnergyModel()
        self.tree = tree or RoutingTree.from_topology(topology)
        missing = set(self.tree.node_ids) - set(topology.node_ids)
        if missing:
            raise TopologyError(f"tree references unknown nodes: {sorted(missing)}")
        self.stats = NetworkStats()
        #: Loss-process stream: consumed only by session traffic.
        self._rng = random.Random(seed)
        #: Recovery stream: consumed only by churn handshakes, so
        #: topology events never shift the loss process.
        self._recovery_rng = random.Random(seed ^ _RECOVERY_STREAM)
        group_of = group_of or {}
        self.nodes: dict[int, SensorNode] = {}
        for node_id in self.tree.sensor_ids:
            board = boards.get(node_id) if boards else None
            self.nodes[node_id] = SensorNode(
                node_id, board=board, group=group_of.get(node_id))
        #: The sink keeps an energy ledger too (mains-powered in the
        #: demo, but counting keeps totals comparable).
        self.sink_ledger = EnergyLedger()
        self.epoch = 0
        self._clock_holds = 0
        self._advance_requested = False
        self._stat_taps: list[NetworkStats] = []
        self._subscribers: list[Callable[[TopologyEvent], None]] = []
        # ---- hot-path state (semantically invisible; see hotpath) ----
        #: The root id never changes across repairs (the sink cannot
        #: die), so it is resolved once.
        self._sink_id = self.tree.root
        #: Precomputed J/byte rates (the EnergyModel is immutable).
        self._tx_rate = self.energy.tx_joules_per_byte
        self._rx_rate = self.energy.rx_joules_per_byte
        #: node id → ledger, maintained across joins (kept for dead
        #: nodes: their ledgers stay readable).
        self._ledger_of: dict[int, EnergyLedger] = {
            self._sink_id: self.sink_ledger,
            **{i: n.ledger for i, n in self.nodes.items()},
        }
        #: Per-epoch traffic accumulator: kind → [messages, packets,
        #: payload, air, retransmissions]; flushed into the active
        #: stats sinks at epoch / phase / tap boundaries.
        self._pending_traffic: dict[str, list] = {}
        #: payload bytes → (packets, air bytes, tx J, rx J) for
        #: lossless hops (unicast fast path).
        self._cost_memo: dict[int, tuple] = {}
        self.stats._drain_hook = self._flush_traffic
        #: Topology caches, invalidated by bumping the version (node
        #: deaths report in via the per-node kill hook).
        self._topo_version = 0
        self._order_cache: tuple[int, ...] | None = None
        self._alive_ids_cache: tuple[int, ...] | None = None
        self._forwarders_cache: tuple[int, ...] | None = None
        self._live_children_cache: dict[int, tuple[int, ...]] = {}
        self._cache_tree: RoutingTree | None = None
        self._cache_version = -1
        #: Structure-of-arrays caches (readings rows / columns) for the
        #: columnar kernel; epoch-stamped and id-tuple-keyed, so no
        #: invalidation hooks are needed (see ColumnarState).
        self._columnar = columnar.ColumnarState()
        # ---- event-core state (third switch; see eventsim) ----
        #: The deployment seed, kept for per-subtree stream derivation.
        self._seed = seed
        self._events = eventsim.EventQueue()
        #: True while a queue drain is firing events: posted ships fall
        #: through to the inline bodies instead of re-enqueueing.
        self._draining = False
        #: Events fired over the network's lifetime (the driver's
        #: event-budget policy reads this).
        self.events_processed = 0
        #: Simulated radio time in seconds; only advances in delay /
        #: partitioned mode (zero-delay stays at 0.0 forever).
        self.sim_time_s = 0.0
        self._epoch_start_s = 0.0
        #: node id → earliest time its radio is free again (delay mode;
        #: cleared at every real epoch advance).
        self._node_ready: dict[int, float] = {}
        #: Per-subtree event streams: sink-child root → (queue, loss
        #: RNG). None while partitioning is off.
        self._partitions: dict[int, tuple] | None = None
        self._subtree_of: dict[int, int] = {}
        self._subtree_tree: RoutingTree | None = None
        self._subtree_version = -1
        for node in self.nodes.values():
            node.on_kill = self._on_node_killed

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def sink_id(self) -> int:
        """The base station id."""
        return self._sink_id

    def node(self, node_id: int) -> SensorNode:
        """The runtime of a sensor node."""
        try:
            return self.nodes[node_id]
        except KeyError:
            raise TopologyError(f"unknown sensor {node_id}") from None

    def alive_sensor_ids(self) -> tuple[int, ...]:
        """Sensors still running, sorted by id."""
        if hotpath.enabled():
            self._validate_topo_caches()
            if self._alive_ids_cache is None:
                nodes = self.nodes
                self._alive_ids_cache = tuple(
                    i for i in self.tree.sensor_ids if nodes[i].alive)
            return self._alive_ids_cache
        return tuple(i for i in self.tree.sensor_ids if self.nodes[i].alive)

    def _validate_topo_caches(self) -> None:
        """Drop every topology-derived cache after a tree change or a
        node death/join (cheap identity + version check per use)."""
        if (self._cache_tree is not self.tree
                or self._cache_version != self._topo_version):
            self._cache_tree = self.tree
            self._cache_version = self._topo_version
            self._order_cache = None
            self._alive_ids_cache = None
            self._forwarders_cache = None
            self._live_children_cache.clear()

    def _on_node_killed(self, _node_id: int) -> None:
        """Per-node death hook: invalidate aliveness-derived caches.

        Installed on every :class:`SensorNode` (including ones killed
        directly, bypassing :meth:`kill_node`), so caches can never
        observe a stale ``alive`` flag.
        """
        self._topo_version += 1

    def ledger(self, node_id: int) -> EnergyLedger:
        """The energy ledger of a node (or of the sink)."""
        if node_id == self.sink_id:
            return self.sink_ledger
        return self.node(node_id).ledger

    def groups(self) -> dict[Hashable, int]:
        """Cluster → number of live member sensors."""
        counts: dict[Hashable, int] = {}
        for node_id in self.alive_sensor_ids():
            group = self.nodes[node_id].group
            if group is not None:
                counts[group] = counts.get(group, 0) + 1
        return counts

    # ------------------------------------------------------------------
    # Transport primitives
    # ------------------------------------------------------------------

    def _ship(self, sender: int, receivers: Iterable[int],
              message: WireMessage,
              rng: random.Random | None = None) -> None:
        """Fragment, apply the loss process, charge energy, record.

        ``rng`` selects the randomness stream paying for this message's
        loss draws (default: the loss-process stream; churn recovery
        passes its own stream so repairs never perturb session losses —
        and recovery traffic always ships inline, bypassing the event
        core, because repairs are synchronous tree surgery).
        """
        receivers = tuple(receivers)
        if (eventsim._enabled and hotpath._enabled and rng is None
                and not self._draining):
            self.post_ship(sender, receivers, message)
            return
        hot = hotpath.enabled()
        cost = (fragment_cached(message.payload_bytes) if hot
                else fragment(message.payload_bytes))
        if hot and self.radio.loss_probability == 0.0:
            # Lossless links take exactly one attempt per packet and
            # consume no randomness — identical to the drawn outcome.
            attempts = cost.packets
        else:
            if rng is None:
                rng = self._rng
            attempts = 0
            try:
                for _ in range(cost.packets):
                    attempts += self.radio.attempts_needed(rng)
            except RoutingError:
                self.stats.record_drop()
                for tap in self._stat_taps:
                    tap.record_drop()
                raise
        air_bytes = cost.air_bytes + (attempts - cost.packets) * (
            cost.air_bytes // cost.packets)
        if hot:
            tx_joules = air_bytes * self._tx_rate
            rx_joules_each = air_bytes * self._rx_rate
            ledgers = self._ledger_of
            ledgers[sender].tx += tx_joules
            for receiver in receivers:
                ledgers[receiver].rx += rx_joules_each
            self._record_hot(message.kind, cost.packets,
                             cost.payload_bytes, air_bytes,
                             attempts - cost.packets, tx_joules,
                             rx_joules_each * len(receivers))
            return
        tx_joules = air_bytes * self.energy.tx_joules_per_byte
        rx_joules_each = air_bytes * self.energy.rx_joules_per_byte
        self.ledger(sender).charge_tx(tx_joules)
        for receiver in receivers:
            self.ledger(receiver).charge_rx(rx_joules_each)
        for stats in (self.stats, *self._stat_taps):
            stats.record(
                kind=message.kind,
                packets=cost.packets,
                payload_bytes=cost.payload_bytes,
                air_bytes=air_bytes,
                tx_joules=tx_joules,
                rx_joules=rx_joules_each * len(receivers),
                retransmissions=attempts - cost.packets,
            )

    def _ship_unicast(self, sender: int, receiver: int,
                      message: WireMessage) -> None:
        """Hot-path :meth:`_ship` specialised for one receiver.

        Tree traffic is overwhelmingly unicast (every converge-cast
        edge), so the single-receiver case skips the receiver tuple,
        the receiver loop and the generic branching. Costs, energy and
        recorded counters are identical to :meth:`_ship`.
        """
        # Direct _enabled reads, like the hotpath._enabled reads at hot
        # call sites: this method is only reachable from hot-path
        # branches, so the stacked eventsim.enabled() conjunction is
        # already satisfied.
        if eventsim._enabled and not self._draining:
            self.post_unicast(sender, receiver, message)
            return
        payload_bytes = message.payload_bytes
        if self.radio.loss_probability == 0.0:
            info = (self._cost_memo.get(payload_bytes)
                    or self._memo_cost(payload_bytes))
            packets, air_bytes, tx_joules, rx_joules = info
            retransmissions = 0
        else:
            cost = fragment_cached(payload_bytes)
            packets = cost.packets
            rng = self._rng
            attempts_needed = self.radio.attempts_needed
            attempts = 0
            try:
                for _ in range(packets):
                    attempts += attempts_needed(rng)
            except RoutingError:
                self.stats.record_drop()
                for tap in self._stat_taps:
                    tap.record_drop()
                raise
            air_bytes = cost.air_bytes + (attempts - packets) * (
                cost.air_bytes // packets)
            tx_joules = air_bytes * self._tx_rate
            rx_joules = air_bytes * self._rx_rate
            retransmissions = attempts - packets
        ledgers = self._ledger_of
        ledgers[sender].tx += tx_joules
        ledgers[receiver].rx += rx_joules
        # _record_hot, inlined: this is the per-converge-cast-edge call
        # site — the hottest in the simulator — and the call frame
        # alone is measurable there. Keep in lock-step with
        # _record_hot (the canonical implementation).
        batch = self._pending_traffic.get(message.kind)
        if batch is None:
            batch = self._pending_traffic[message.kind] = [0, 0, 0, 0, 0]
        batch[0] += 1
        batch[1] += packets
        batch[2] += payload_bytes
        batch[3] += air_bytes
        batch[4] += retransmissions
        stats = self.stats
        stats._tx_joules += tx_joules
        stats._rx_joules += rx_joules
        for tap in self._stat_taps:
            tap._tx_joules += tx_joules
            tap._rx_joules += rx_joules

    def _ship_broadcast(self, sender: int, receivers: tuple[int, ...],
                        message: WireMessage) -> None:
        """Hot-path :meth:`_ship` for one lossless multi-receiver send."""
        if eventsim._enabled and not self._draining:
            self.post_broadcast(sender, receivers, message)
            return
        payload_bytes = message.payload_bytes
        info = (self._cost_memo.get(payload_bytes)
                or self._memo_cost(payload_bytes))
        packets, air_bytes, tx_joules, rx_joules_each = info
        ledgers = self._ledger_of
        ledgers[sender].tx += tx_joules
        for receiver in receivers:
            ledgers[receiver].rx += rx_joules_each
        self._record_hot(message.kind, packets, payload_bytes, air_bytes,
                         0, tx_joules, rx_joules_each * len(receivers))

    def _memo_cost(self, payload_bytes: int) -> tuple:
        """Fill the lossless cost memo for one payload size: one memo
        entry yields packets, air bytes and both joule figures (energy
        rates are fixed per deployment). Cold path only."""
        cost = fragment_cached(payload_bytes)
        info = self._cost_memo[payload_bytes] = (
            cost.packets, cost.air_bytes,
            cost.air_bytes * self._tx_rate,
            cost.air_bytes * self._rx_rate,
        )
        return info

    def _record_hot(self, kind: str, packets: int, payload_bytes: int,
                    air_bytes: int, retransmissions: int,
                    tx_joules: float, rx_total: float) -> None:
        """Record one hot-path message: integer counters into the
        per-epoch per-kind batch, joules eagerly into every sink (so
        float accumulation order matches eager recording).

        The joule adds write the sinks' private accumulators directly
        — this is the single hottest call site in the simulator, and
        Network already owns the sinks' batching lifecycle (it installs
        their drain hooks); see NetworkStats.add_joules for the
        public equivalent.
        """
        batch = self._pending_traffic.get(kind)
        if batch is None:
            batch = self._pending_traffic[kind] = [0, 0, 0, 0, 0]
        batch[0] += 1
        batch[1] += packets
        batch[2] += payload_bytes
        batch[3] += air_bytes
        batch[4] += retransmissions
        stats = self.stats
        stats._tx_joules += tx_joules
        stats._rx_joules += rx_total
        for tap in self._stat_taps:
            tap._tx_joules += tx_joules
            tap._rx_joules += rx_total

    def _flush_traffic(self) -> None:
        """Fold the per-epoch traffic accumulator into every active
        stats sink (the deployment ledger plus any session taps).

        Installed as the sinks' drain hook, so it runs before any
        counter read, phase boundary or snapshot — readers can never
        observe half-recorded epochs. Tap registration flushes first,
        so everything pending was recorded while the current sink set
        was active.
        """
        pending = self._pending_traffic
        if not pending:
            return
        self._pending_traffic = {}
        sinks = (self.stats, *self._stat_taps)
        for kind, batch in pending.items():
            for sink in sinks:
                sink.apply_batch(kind, batch[0], batch[1], batch[2],
                                 batch[3], batch[4])

    # ------------------------------------------------------------------
    # Event core (the eventsim switch)
    # ------------------------------------------------------------------

    def _deferred_mode(self) -> bool:
        """True when posted events carry real timestamps and drain at
        the epoch barrier instead of at the post site."""
        return (self._partitions is not None
                or self.radio.propagation_latency_s > 0.0)

    def post_unicast(self, sender: int, receiver: int,
                     message: WireMessage,
                     deliver: Callable[[], None] | None = None) -> None:
        """Enqueue one unicast delivery on the event core.

        Zero-delay mode pushes the ship onto the queue and drains it
        immediately, so accounting, RNG draws, handler effects and
        exceptions happen in the exact inline order (the byte-identity
        claim). Delay/partitioned mode runs ``deliver`` eagerly — the
        per-epoch lookahead window that keeps engines on epoch
        semantics — and defers the transport accounting to a
        timestamped event drained at the epoch barrier.
        """
        if not self._deferred_mode():
            def fire() -> None:
                self._ship_unicast(sender, receiver, message)
                if deliver is not None:
                    deliver()

            events = self._events
            events.push(self.sim_time_s, receiver, fire)
            self._drain_inline(events)
            return
        self._post_deferred(
            sender, receiver, (receiver,), message,
            lambda: self._ship_unicast(sender, receiver, message))
        if deliver is not None:
            deliver()

    def post_broadcast(self, sender: int, receivers: tuple[int, ...],
                       message: WireMessage,
                       deliver: Callable[[], None] | None = None) -> None:
        """Enqueue one lossless broadcast delivery (see
        :meth:`post_unicast` for the mode semantics)."""
        if not self._deferred_mode():
            def fire() -> None:
                self._ship_broadcast(sender, receivers, message)
                if deliver is not None:
                    deliver()

            events = self._events
            events.push(self.sim_time_s, sender, fire)
            self._drain_inline(events)
            return
        self._post_deferred(
            sender, sender, receivers, message,
            lambda: self._ship_broadcast(sender, receivers, message))
        if deliver is not None:
            deliver()

    def post_ship(self, sender: int, receivers: tuple[int, ...],
                  message: WireMessage) -> None:
        """Enqueue one generic (possibly lossy) multi-receiver send."""
        if not self._deferred_mode():
            events = self._events
            events.push(self.sim_time_s, sender,
                        lambda: self._ship(sender, receivers, message))
            self._drain_inline(events)
            return
        self._post_deferred(
            sender, sender, receivers, message,
            lambda: self._ship(sender, receivers, message))

    def _post_deferred(self, sender: int, event_node: int,
                       receivers: tuple[int, ...], message: WireMessage,
                       ship: Callable[[], None]) -> None:
        """Timestamp and enqueue one delivery for the barrier drain.

        The arrival time is the sender's channel-free time plus the
        message's nominal (no-retry) airtime plus the radio's
        propagation latency; the sender's channel then stays busy for
        the airtime and each receiver cannot transmit before the
        arrival. The stats phase open at the post site is captured and
        replayed around the deferred accounting, so by_phase
        attribution survives the deferral.
        """
        payload_bytes = message.payload_bytes
        info = (self._cost_memo.get(payload_bytes)
                or self._memo_cost(payload_bytes))
        air_seconds = self.radio.airtime_seconds(info[1])
        ready = self._node_ready
        start = self._epoch_start_s
        send_at = ready.get(sender, start)
        arrival = send_at + air_seconds + self.radio.propagation_latency_s
        ready[sender] = send_at + air_seconds
        for receiver in receivers:
            prior = ready.get(receiver, start)
            if arrival > prior:
                ready[receiver] = arrival
        stack = self.stats._phase_stack
        phase_name = stack[-1][0] if stack else None

        def fire() -> None:
            if phase_name is None:
                ship()
            else:
                with self.stats.phase(phase_name):
                    ship()

        if self._partitions is not None:
            queue = self._partition_for(self._subtree_root(sender))[0]
        else:
            queue = self._events
        queue.push(arrival, event_node, fire)

    def _drain_inline(self, events: eventsim.EventQueue) -> None:
        """Zero-delay drain: fire every queued event synchronously at
        the post site. Fires run with ``_draining`` set, so nested
        ships (a handler shipping onward) take the inline bodies
        directly — the exact inline call order. Exceptions (lossy-link
        :class:`RoutingError`) propagate to the post site, as inline.
        """
        self._draining = True
        try:
            while events:
                event = events.pop()
                self.events_processed += 1
                event.fire()
        finally:
            self._draining = False

    def _drain_queue(self, events: eventsim.EventQueue) -> None:
        """Barrier drain of one deferred queue, in timestamp order.

        A deferred lossy delivery whose retry budget exhausts raises
        :class:`RoutingError` with the sender's frame long gone; the
        drop was already recorded inside the ship body, so the event is
        absorbed here (a documented delay-mode divergence — the inline
        path surfaces the drop to the sender).
        """
        last = self.sim_time_s
        while events:
            event = events.pop()
            self.events_processed += 1
            if event.time > last:
                last = event.time
            try:
                event.fire()
            except RoutingError:
                pass
        self.sim_time_s = last

    def _drain_deferred_events(self) -> None:
        """Drain every deferred event stream (the epoch barrier).

        Partitioned mode drains subtree streams in sorted-root order,
        each under its own loss-RNG stream and into its own stats
        batch; the batches merge afterwards in that same order, so any
        partition layout yields one deterministic ledger.
        """
        if self._events:
            self._draining = True
            try:
                self._drain_queue(self._events)
            finally:
                self._draining = False
        partitions = self._partitions
        if partitions is None:
            return
        session_rng = self._rng
        inline_pending = self._pending_traffic
        batches: list[dict[str, list]] = []
        self._draining = True
        try:
            for root in sorted(partitions):
                queue, rng = partitions[root]
                if not queue:
                    continue
                self._pending_traffic = {}
                self._rng = rng
                self._drain_queue(queue)
                batches.append(self._pending_traffic)
        finally:
            self._draining = False
            self._rng = session_rng
            self._pending_traffic = inline_pending
            for batch_map in batches:
                for kind, counts in batch_map.items():
                    batch = inline_pending.get(kind)
                    if batch is None:
                        inline_pending[kind] = counts
                    else:
                        for index in range(5):
                            batch[index] += counts[index]

    def _drain_events_at_barrier(self) -> None:
        """Cheap barrier hook: drain only when something is queued
        (zero-delay mode never leaves the queues non-empty)."""
        if self._events or self._partitions is not None:
            self._drain_deferred_events()

    def enable_subtree_partitioning(self, enabled: bool = True) -> None:
        """Give each sink-child subtree an independent event stream.

        Requires the event core (:mod:`repro.network.eventsim`). Every
        subtree gets its own queue and its own loss-RNG stream
        (``parallel.derive_seed(seed, "subtree", root)``), so one
        subtree's traffic never perturbs another's draws — the
        stream-identity property that lets worker processes each
        simulate one subtree and reproduce the full run's per-subtree
        results exactly. Deliveries defer to the epoch barrier even at
        zero latency; this mode is deliberately *not* byte-identical to
        the inline path (one global loss stream cannot be split), its
        claim is determinism at any partition layout.
        """
        self._drain_events_at_barrier()
        self._partitions = {} if enabled else None

    def _partition_for(self, root: int) -> tuple:
        entry = self._partitions.get(root)
        if entry is None:
            # repro: allow[layer-dag] -- deliberate back-edge: per-subtree loss streams reuse parallel.derive_seed so partition streams match the executor's identity-keyed derivation; imported lazily, only when partitioning is on
            from ..parallel import derive_seed

            entry = self._partitions[root] = (
                eventsim.EventQueue(),
                random.Random(derive_seed(self._seed, "subtree", root)),
            )
        return entry

    def _subtree_root(self, node_id: int) -> int:
        """The sink child whose subtree contains ``node_id`` (the sink
        itself maps to its own id — sink-originated dissemination is
        one stream of its own)."""
        if (self._subtree_tree is not self.tree
                or self._subtree_version != self._topo_version):
            self._subtree_of.clear()
            self._subtree_tree = self.tree
            self._subtree_version = self._topo_version
        root = self._subtree_of.get(node_id)
        if root is None:
            path = self.tree.path_to_root(node_id)
            root = path[-2] if len(path) > 1 else node_id
            self._subtree_of[node_id] = root
        return root

    def send_up(self, child: int, message: WireMessage) -> int:
        """Unicast from ``child`` to its tree parent; returns the parent id."""
        if hotpath.enabled():
            parent = self.tree._parents.get(child)
            if parent is None:
                parent = self.tree.parent(child)  # error semantics
            if child != self._sink_id and not self.nodes[child].alive:
                raise RoutingError(f"dead node {child} cannot transmit")
            self._ship_unicast(child, parent, message)
            return parent
        parent = self.tree.parent(child)
        if child != self.sink_id and not self.nodes[child].alive:
            raise RoutingError(f"dead node {child} cannot transmit")
        self._ship(child, (parent,), message)
        return parent

    def broadcast_down(self, parent: int, message: WireMessage) -> tuple[int, ...]:
        """One transmission from ``parent`` heard by all its tree children."""
        if hotpath.enabled():
            self._validate_topo_caches()
            live = self._live_children_cache.get(parent)
            if live is None:
                nodes = self.nodes
                live = tuple(c for c in self.tree.children(parent)
                             if nodes[c].alive)
                self._live_children_cache[parent] = live
        else:
            children = self.tree.children(parent)
            live = tuple(c for c in children if self.nodes[c].alive)
        if not live:
            return ()
        if hotpath.enabled() and self.radio.loss_probability == 0.0:
            self._ship_broadcast(parent, live, message)
        else:
            self._ship(parent, live, message)
        return live

    def flood_down(self, make_message: Callable[[int], WireMessage | None]
                   ) -> int:
        """Disseminate sink→leaves: every non-leaf broadcasts once.

        ``make_message(node_id)`` builds the (possibly node-specific)
        message each forwarding parent sends; returning None suppresses
        that hop (used by probe phases to prune the dissemination to
        relevant subtrees). Returns the number of broadcasts sent.
        """
        sends = 0
        if hotpath.enabled():
            self._validate_topo_caches()
            forwarders = self._forwarders_cache
            if forwarders is None:
                sink = self._sink_id
                nodes = self.nodes
                tree = self.tree
                forwarders = self._forwarders_cache = tuple(
                    node_id for node_id in tree.pre_order()
                    if (node_id == sink or nodes[node_id].alive)
                    and tree.children(node_id)
                )
            for node_id in forwarders:
                message = make_message(node_id)
                if message is None:
                    continue
                if self.broadcast_down(node_id, message):
                    sends += 1
            return sends
        for node_id in self.tree.pre_order():
            if node_id != self.sink_id and not self.nodes[node_id].alive:
                continue
            if not self.tree.children(node_id):
                continue
            message = make_message(node_id)
            if message is None:
                continue
            if self.broadcast_down(node_id, message):
                sends += 1
        return sends

    def unicast_to_sink(self, origin: int, message: WireMessage,
                        deliver: Callable[[], None] | None = None) -> int:
        """Relay hop-by-hop from ``origin`` to the sink, no merging.

        Flat protocols (TPUT, FILA reports) route through the tree but
        do not aggregate, so the same logical message pays transmit and
        receive at every hop. Returns the number of hops charged.
        ``deliver`` — the sink-side receive handler under the event
        core — runs once after the last hop ships.
        """
        hops = 0
        if hotpath.enabled():
            path = self.tree.path_to_root(origin)
            for node_id, parent in zip(path, path[1:]):
                self._ship_unicast(node_id, parent, message)
                hops += 1
            if deliver is not None:
                deliver()
            return hops
        for node_id in self.tree.path_to_root(origin)[:-1]:
            self._ship(node_id, (self.tree.parent(node_id),), message)
            hops += 1
        if deliver is not None:
            deliver()
        return hops

    def unicast_from_sink(self, target: int, message: WireMessage) -> int:
        """Relay hop-by-hop from the sink to ``target``; returns hops."""
        path = self.tree.path_to_root(target)
        hops = 0
        if hotpath.enabled():
            for receiver, sender in zip(path[-2::-1], path[::-1]):
                self._ship_unicast(sender, receiver, message)
                hops += 1
            return hops
        for receiver, sender in zip(path[:-1][::-1] or (), path[1:][::-1] or ()):
            self._ship(sender, (receiver,), message)
            hops += 1
        return hops

    # ------------------------------------------------------------------
    # Epoch machinery
    # ------------------------------------------------------------------

    def converge_cast_order(self) -> tuple[int, ...]:
        """Live sensors leaves-first (the per-epoch send schedule)."""
        if hotpath.enabled():
            self._validate_topo_caches()
            if self._order_cache is None:
                nodes = self.nodes
                sink = self._sink_id
                self._order_cache = tuple(
                    node_id for node_id in self.tree.post_order()
                    if node_id != sink and nodes[node_id].alive
                )
            return self._order_cache
        return tuple(
            node_id for node_id in self.tree.post_order()
            if node_id != self.sink_id and self.nodes[node_id].alive
        )

    def sample_all(self, attribute: str) -> dict[int, float]:
        """Every live sensor samples ``attribute`` for the current epoch."""
        return dict(self.read_many(self.alive_sensor_ids(), attribute))

    def read_many(self, node_ids: Sequence[int],
                  attribute: str) -> dict[int, float]:
        """One epoch's readings for a whole id column, in id order.

        Byte-identical to ``{n: self.nodes[n].read(attribute, epoch)
        for n in node_ids}`` — that *is* the code path with the
        columnar kernel off. With it on, nodes still needing a physical
        sample are grouped by board channel and acquired through one
        :meth:`~repro.sensing.generators.FieldGenerator.batch_values`
        call plus a vectorized clamp/quantize per channel, then booked
        per node exactly as a scalar read
        (:meth:`~repro.network.node.SensorNode.store_sample`). The row
        is cached per (attribute, epoch, id-tuple identity), so N
        concurrent sessions over the same deployment pay for one batch.

        The returned dict is shared with later same-epoch callers —
        treat it as read-only (copy it to mutate, as
        :meth:`sample_all` does).
        """
        nodes, epoch = self.nodes, self.epoch
        if not (columnar._enabled and hotpath._enabled):
            return {node_id: nodes[node_id].read(attribute, epoch)
                    for node_id in node_ids}
        row = self._columnar.cached(attribute, epoch, node_ids)
        if row is not None:
            return row
        plan = self._columnar.plan(attribute, node_ids)
        if plan is None:
            plan = self._build_sampling_plan(node_ids, attribute)
            if plan is None:
                # A dead or board-less node in the tuple: the generic
                # walk raises exactly as a scalar read would, at that
                # node's position in the loop.
                return self._read_many_generic(node_ids, attribute)
            self._columnar.store_plan(attribute, node_ids, plan)
        out = [0.0] * len(node_ids)
        # The epoch's first batch (no row stored yet for this
        # attribute+epoch, so no session warmed the per-node caches
        # through this path) skips the freshness probe entirely and
        # draws every row — ``book_sample`` still re-checks per node,
        # so a straggler sampled by a scalar ``read`` is never
        # double-booked.
        first_batch = not self._columnar.has_row(attribute, epoch)
        for field, modality, quantize, ids, rows in plan:
            if first_batch:
                values = field.batch_values(ids, epoch)
                values = (columnar.quantize_column(values, modality)
                          if quantize
                          else columnar.clamp_column(values, modality))
                cost = modality.sample_cost_joules
                for (row_index, node), value in zip(rows, values):
                    out[row_index] = node.book_sample(attribute, epoch,
                                                      value, cost)
                continue
            # Later same-epoch readers: with N concurrent sessions
            # only the first reader of an epoch pays the physical
            # draw; everyone else is served from the per-node cache
            # (exactly the scalar ``read`` fast path). Only stale
            # rows reach ``batch_values`` — a Mersenne cell draw is
            # ~100x the cost of this dict probe.
            stale = None
            for pair_index, (row_index, node) in enumerate(rows):
                cached = node._sample_cache.get(attribute)
                if cached is not None and cached[0] == epoch:
                    out[row_index] = cached[1]
                elif stale is None:
                    stale = [pair_index]
                else:
                    stale.append(pair_index)
            if stale is None:
                continue
            # All-stale (the first session each epoch) reuses the
            # plan's id list itself, so the fields' identity-keyed
            # base memos keep hitting.
            stale_ids = (ids if len(stale) == len(ids)
                         else [ids[i] for i in stale])
            values = field.batch_values(stale_ids, epoch)
            values = (columnar.quantize_column(values, modality) if quantize
                      else columnar.clamp_column(values, modality))
            cost = modality.sample_cost_joules
            for pair_index, value in zip(stale, values):
                row_index, node = rows[pair_index]
                out[row_index] = node.book_sample(attribute, epoch,
                                                  value, cost)
        readings = dict(zip(node_ids, out))
        self._columnar.store(attribute, epoch, node_ids, readings)
        return readings

    def _build_sampling_plan(self, node_ids: Sequence[int],
                             attribute: str):
        """Partition an id tuple by board channel (see
        :meth:`repro.network.columnar.ColumnarState.plan`). None when
        any node is dead or board-less — those tuples take the generic
        walk, which reproduces scalar error ordering."""
        nodes = self.nodes
        groups: dict[tuple, tuple] = {}
        for row_index, node_id in enumerate(node_ids):
            node = nodes[node_id]
            if not node.alive or node.board is None:
                return None
            field, modality, quantize = node.board.channel(attribute)
            key = (id(field), id(modality), quantize)
            group = groups.get(key)
            if group is None:
                group = groups[key] = (field, modality, quantize, [], [])
            group[3].append(node_id)
            group[4].append((row_index, node))
        return tuple(groups.values())

    def _read_many_generic(self, node_ids: Sequence[int],
                           attribute: str) -> dict[int, float]:
        """The unplanned batch walk: per-node freshness and liveness
        checks inline, in id order (the pre-plan read_many body)."""
        nodes, epoch = self.nodes, self.epoch
        readings: dict[int, float] = {}
        pending: dict[tuple, list[int]] = {}
        channels: dict[tuple, tuple] = {}
        for node_id in node_ids:
            node = nodes[node_id]
            cached = node._sample_cache.get(attribute)
            if cached is not None and cached[0] == epoch and node.alive:
                readings[node_id] = cached[1]
                continue
            if not node.alive or node.board is None:
                readings[node_id] = node.read(attribute, epoch)
                continue
            field, modality, quantize = node.board.channel(attribute)
            key = (id(field), id(modality), quantize)
            group = pending.get(key)
            if group is None:
                group = pending[key] = []
                channels[key] = (field, modality, quantize)
            group.append(node_id)
            readings[node_id] = 0.0  # placeholder keeps dict in id order
        for key, ids in pending.items():
            field, modality, quantize = channels[key]
            values = field.batch_values(ids, epoch)
            values = (columnar.quantize_column(values, modality) if quantize
                      else columnar.clamp_column(values, modality))
            cost = modality.sample_cost_joules
            for node_id, value in zip(ids, values):
                node = nodes[node_id]
                node.ledger.charge_sensing(cost)
                node.store_sample(attribute, epoch, value)
                readings[node_id] = value
        self._columnar.store(attribute, epoch, node_ids, readings)
        return readings

    def reading_column(self, node_ids: Sequence[int], attribute: str):
        """This epoch's cached readings row as a backend float column
        aligned to ``node_ids`` (None when :meth:`read_many` has not
        built the row). FILA's mask passes consume this."""
        return self._columnar.column(attribute, self.epoch, node_ids)

    def advance_epoch(self) -> int:
        """Close the epoch: charge idle energy, bump the counter.

        Inside a :meth:`shared_epoch` block the advance is deferred:
        the request is latched and one real advance happens when the
        outermost block exits. That lets N query sessions each "finish
        their epoch" while the deployment's clock ticks exactly once.

        Under the event core this is the epoch barrier: deferred
        (delay/partitioned) event streams drain here *before* the latch
        check, so a latched advance inside :meth:`shared_epoch`
        coalesces identically whether its traffic shipped inline or
        arrived as events.
        """
        self._drain_events_at_barrier()
        self._flush_traffic()
        if self._clock_holds:
            self._advance_requested = True
            return self.epoch
        idle = self.energy.idle_joules_per_epoch
        nodes = self.nodes
        for node_id in self.alive_sensor_ids():
            nodes[node_id].ledger.idle += idle
        self.epoch += 1
        if self._node_ready:
            self._node_ready.clear()
        self._epoch_start_s = self.sim_time_s
        return self.epoch

    @contextmanager
    def shared_epoch(self) -> Iterator[None]:
        """Hold the epoch clock while several sessions run one epoch.

        Every :meth:`advance_epoch` call inside the block (each
        session's engine closes "its" epoch) is coalesced into a single
        real advance on exit, so idle energy is charged once and all
        sessions observe the same epoch number. Nesting is allowed; the
        outermost block performs the advance.
        """
        self._clock_holds += 1
        try:
            yield
        finally:
            self._clock_holds -= 1
            if self._clock_holds == 0 and self._advance_requested:
                self._advance_requested = False
                self.advance_epoch()

    @contextmanager
    def tap_stats(self, stats: NetworkStats) -> Iterator[NetworkStats]:
        """Mirror every message shipped inside the block into ``stats``.

        Sessions use this to attribute their own traffic on a shared
        deployment: the global ledger keeps counting everything, while
        the tapped ledger sees only the block's messages.
        """
        # Whatever is pending was recorded before the tap existed; fold
        # it in now so the tap sees only the block's traffic, and give
        # the tap the drain hook so reads inside the block stay exact.
        # Deferred event streams are a tap boundary too: pre-tap posts
        # drain before registration, the block's posts drain before
        # unregistration, so the tap's attribution matches inline.
        self._drain_events_at_barrier()
        self._flush_traffic()
        self._stat_taps.append(stats)
        stats._drain_hook = self._flush_traffic
        try:
            yield stats
        finally:
            self._drain_events_at_barrier()
            self._flush_traffic()
            stats._drain_hook = None
            # Unregister by identity: list.remove() would match any
            # ledger with equal counters.
            for index, tap in enumerate(reversed(self._stat_taps)):
                if tap is stats:
                    del self._stat_taps[len(self._stat_taps) - 1 - index]
                    break

    # ------------------------------------------------------------------
    # Node lifecycle (churn)
    # ------------------------------------------------------------------

    def subscribe(self, callback: Callable[[TopologyEvent], None]) -> None:
        """Register a listener for node failure / join lifecycle events.

        Every :meth:`kill_node` and :meth:`join_node` publishes one
        :class:`~repro.network.events.TopologyEvent` stamped with the
        current epoch; the server forwards them to live query sessions
        so engines invalidate and re-prime only the affected subtrees.
        """
        if callback not in self._subscribers:
            self._subscribers.append(callback)

    def unsubscribe(self, callback: Callable[[TopologyEvent], None]) -> None:
        """Remove a lifecycle listener (missing callbacks are ignored)."""
        if callback in self._subscribers:
            self._subscribers.remove(callback)

    def _emit(self, event: TopologyEvent) -> None:
        for callback in tuple(self._subscribers):
            callback(event)

    def _energy_spent(self, node_id: int) -> float:
        return self.ledger(node_id).total

    def kill_node(self, node_id: int, repair: bool = True) -> None:
        """Kill a sensor and, by default, repair the routing tree.

        The repair is *incremental*: orphaned subtrees re-attach at
        their best surviving radio neighbour (residual-energy-aware),
        each new edge paying one attach handshake charged to the
        ``recovery`` stats phase. With ``repair=False`` the tree is
        left broken — batch schedules kill several victims and repair
        once on the last. A typed ``NODE_FAILED`` event is published
        either way.
        """
        if node_id == self.sink_id:
            raise ConfigurationError(
                "the sink cannot be killed: it is the mains-powered base "
                "station every query routes to"
            )
        former_parent = (self.tree.parent(node_id)
                         if node_id in self.tree.node_ids else None)
        self.node(node_id).kill()
        reattached: tuple[tuple[int, int], ...] = ()
        detached: tuple[int, ...] = ()
        dirty: set[int] = set()
        if repair:
            dead = [i for i, n in self.nodes.items() if not n.alive]
            self.tree, report = self.tree.repaired(
                dead, self.topology, energy_of=self._energy_spent,
                detach_unreachable=True)
            reattached = report.reattached
            detached = report.detached
            # Partitioned survivors keep sensing, but the deployment
            # can no longer hear them: they leave the fleet too.
            for lost in detached:
                self.nodes[lost].kill()
            with self.stats.phase("recovery"):
                for child, parent in reattached:
                    self._ship(child, (parent,),
                               ControlMessage(label="attach"),
                               rng=self._recovery_rng)
            in_tree = set(self.tree.node_ids)
            for child, parent in reattached:
                dirty.add(child)
                dirty.update(self.tree.path_to_root(parent))
            if former_parent in in_tree:
                dirty.update(self.tree.path_to_root(former_parent))
        dirty.discard(self.sink_id)
        self._emit(TopologyEvent(
            kind=TopologyEventKind.NODE_FAILED,
            epoch=self.epoch,
            node_id=node_id,
            repaired=repair,
            reattached=reattached,
            dirty=tuple(sorted(dirty)),
        ))
        for lost in detached:
            self._emit(TopologyEvent(
                kind=TopologyEventKind.NODE_FAILED,
                epoch=self.epoch,
                node_id=lost,
                repaired=True,
            ))

    def join_node(self, node_id: int, position: tuple[float, float],
                  board: SensorBoard | None = None,
                  group: Hashable = None) -> int:
        """Deploy one more mote mid-run; returns its chosen parent.

        The joiner is placed in the topology, attaches to the alive
        in-range tree node that has spent the least energy (ties break
        toward the shallower, then smaller-id candidate), pays one join
        handshake on the ``recovery`` stats phase, and a ``NODE_JOINED``
        event is published. A previously killed node id may rejoin —
        fresh battery, empty history — but an alive id is refused.
        """
        if node_id == self.sink_id:
            raise ConfigurationError("the sink is already deployed")
        existing = self.nodes.get(node_id)
        if existing is not None and existing.alive:
            raise ConfigurationError(
                f"node {node_id} is already deployed and alive")
        self.topology.add_node(node_id, position)
        in_tree = set(self.tree.node_ids)
        candidates = [
            neighbor for neighbor in self.topology.neighbors(node_id)
            if neighbor in in_tree
            and (neighbor == self.sink_id or self.nodes[neighbor].alive)
        ]
        if not candidates:
            self.topology.remove_node(node_id)
            raise TopologyError(
                f"node {node_id} at {position} hears no alive node; "
                f"place it within radio range of the deployment"
            )
        parent = min(candidates, key=lambda n: (
            self._energy_spent(n), self.tree.depth(n), n))
        self.tree = self.tree.attach(node_id, parent)
        newborn = SensorNode(node_id, board=board, group=group)
        newborn.on_kill = self._on_node_killed
        self.nodes[node_id] = newborn
        self._ledger_of[node_id] = newborn.ledger
        self._topo_version += 1
        with self.stats.phase("recovery"):
            self._ship(node_id, (parent,), ControlMessage(label="join"),
                       rng=self._recovery_rng)
        dirty = {node_id, *self.tree.path_to_root(parent)}
        dirty.discard(self.sink_id)
        self._emit(TopologyEvent(
            kind=TopologyEventKind.NODE_JOINED,
            epoch=self.epoch,
            node_id=node_id,
            repaired=True,
            reattached=((node_id, parent),),
            dirty=tuple(sorted(dirty)),
        ))
        return parent

    def bottleneck_energy(self) -> tuple[int, float]:
        """(node id, joules) of the most drained sensor — the lifetime limit."""
        if not self.nodes:
            raise ConfigurationError("network has no sensors")
        node_id = max(self.nodes, key=lambda i: self.nodes[i].ledger.total)
        return node_id, self.nodes[node_id].ledger.total
