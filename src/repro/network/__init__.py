"""WSN substrate: topology, routing tree, radio, energy, epoch simulator.

This package is the software stand-in for the paper's hardware testbed
(MICA2 motes, CC1000 radio, MIB520 sink). Algorithms in
:mod:`repro.core` never touch sockets or hardware — they call the
:class:`repro.network.simulator.Network` primitives (``send_up``,
``broadcast_down``) and the simulator charges messages, packets, bytes
and joules to the statistics ledgers that the demo's System Panel
displays.
"""

from .churn import ChurnEvent, ChurnKind, ChurnSchedule
from .energy import EnergyLedger, EnergyModel
from .events import TopologyEvent, TopologyEventKind
from .failures import Failure, FailureSchedule
from .lifetime import LifetimeReport, simulate_lifetime
from .link import RadioModel
from .node import SensorNode
from .simulator import Network
from .stats import NetworkStats, PhaseSnapshot
from .topology import (
    Topology,
    grid_topology,
    linear_topology,
    random_topology,
    room_topology,
    star_topology,
)
from .tree import RoutingTree

__all__ = [
    "Topology",
    "grid_topology",
    "linear_topology",
    "random_topology",
    "room_topology",
    "star_topology",
    "RoutingTree",
    "ChurnEvent",
    "ChurnKind",
    "ChurnSchedule",
    "TopologyEvent",
    "TopologyEventKind",
    "Failure",
    "FailureSchedule",
    "RadioModel",
    "EnergyModel",
    "EnergyLedger",
    "LifetimeReport",
    "simulate_lifetime",
    "SensorNode",
    "Network",
    "NetworkStats",
    "PhaseSnapshot",
]
