"""Radio link model (MICA2 CC1000).

Captures what the cost accounting needs from the physical layer: the
bit-rate (38.4 kbit/s on MICA2, §IV-A), the communication range, and an
optional Bernoulli per-packet loss process with ARQ retransmissions.
Loss is drawn from a seeded RNG owned by the simulator so runs stay
reproducible.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from ..errors import ConfigurationError, RoutingError


@dataclass(frozen=True)
class RadioModel:
    """Link-layer parameters.

    Attributes:
        bitrate_bps: Air data rate; MICA2 ships 38.4 kbit/s.
        range_m: Maximum link distance (150 m outdoors per the paper;
            indoor experiments use smaller values via the topology).
        loss_probability: Independent per-packet loss probability.
        max_retries: ARQ retransmissions before a packet is declared
            lost. With the default loss of 0 every packet takes exactly
            one attempt.
        propagation_latency_s: Fixed per-link propagation/processing
            delay added to the airtime when the event core
            (:mod:`repro.network.eventsim`) timestamps a delivery. The
            default 0 keeps the event core in zero-delay mode, where it
            is proven byte-identical to the inline ship path; any
            positive value opens the asynchronous-radio (delay-mode)
            scenario family.
    """

    bitrate_bps: float = 38_400.0
    range_m: float = 150.0
    loss_probability: float = 0.0
    max_retries: int = 5
    propagation_latency_s: float = 0.0

    def __post_init__(self) -> None:
        if self.bitrate_bps <= 0:
            raise ConfigurationError("bitrate must be positive")
        if not 0.0 <= self.loss_probability < 1.0:
            raise ConfigurationError("loss probability must be in [0, 1)")
        if self.max_retries < 0:
            raise ConfigurationError("max_retries must be non-negative")
        if (not math.isfinite(self.propagation_latency_s)
                or self.propagation_latency_s < 0.0):
            raise ConfigurationError(
                "propagation latency must be finite and non-negative")

    def airtime_seconds(self, air_bytes: int) -> float:
        """Time on the air for ``air_bytes`` (one attempt)."""
        return air_bytes * 8.0 / self.bitrate_bps

    def attempts_needed(self, rng: random.Random) -> int:
        """Transmissions until success, honouring the retry budget.

        Returns the number of attempts actually transmitted (all are
        paid for by the energy model). Raises :class:`RoutingError`
        when the packet is lost even after ``max_retries`` retries —
        callers treat that as a link-layer drop.
        """
        if self.loss_probability == 0.0:
            return 1
        for attempt in range(1, self.max_retries + 2):
            if rng.random() >= self.loss_probability:
                return attempt
        raise RoutingError(
            f"packet lost after {self.max_retries + 1} attempts "
            f"(loss probability {self.loss_probability})"
        )
