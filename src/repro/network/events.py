"""Typed topology lifecycle events (the churn subsystem's wire format).

Long-lived deployments lose and gain nodes continuously. Every
lifecycle transition the :class:`~repro.network.simulator.Network`
performs — a sensor dying, a fresh mote joining — is published to
subscribers as one immutable :class:`TopologyEvent` stamped with the
shared epoch clock, so query engines and sessions can invalidate and
re-prime exactly the state the transition touched instead of
restarting from scratch.

The event carries everything a subscriber needs to scope its recovery:

* ``node_id`` — the node that died or joined;
* ``reattached`` — the ``(child, new_parent)`` tree edges the
  incremental repair created (each one cost a real attach handshake on
  the air, charged to the ``recovery`` stats phase);
* ``dirty`` — the closed set of nodes whose cached protocol state can
  no longer be trusted: every re-parented node plus the ancestor
  chains of both the old and the new attachment points. The set is
  upward-closed (the parent of a dirty node is dirty), which is what
  lets MINT reset only these nodes and still keep every parent-side
  cache consistent.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class TopologyEventKind(enum.Enum):
    """What happened to the deployment."""

    NODE_FAILED = "node_failed"
    NODE_JOINED = "node_joined"


@dataclass(frozen=True)
class TopologyEvent:
    """One lifecycle transition, as published to subscribers.

    Attributes:
        kind: Failure or join.
        epoch: Shared epoch clock value when the transition happened.
        node_id: The node that died or joined.
        repaired: True when the routing tree was repaired as part of
            this transition (batched kills defer repair to the last
            victim, whose event carries the combined repair).
        reattached: ``(child, new_parent)`` edges the repair created.
        dirty: Upward-closed set of nodes whose cached per-subtree
            protocol state must be invalidated and re-primed.
    """

    kind: TopologyEventKind
    epoch: int
    node_id: int
    repaired: bool = True
    reattached: tuple[tuple[int, int], ...] = ()
    dirty: tuple[int, ...] = ()

    @property
    def failed(self) -> bool:
        """True for a node-failure event."""
        return self.kind is TopologyEventKind.NODE_FAILED

    @property
    def joined(self) -> bool:
        """True for a node-join event."""
        return self.kind is TopologyEventKind.NODE_JOINED
