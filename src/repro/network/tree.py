"""Sink-rooted routing tree (TAG-style collection tree).

TinyDB/TAG route data over a spanning tree built during query
dissemination: each node picks the neighbour on the shortest path to
the sink as its parent. :class:`RoutingTree` captures that structure,
serves the traversal orders the aggregation algorithms need
(leaves-first converge-cast, root-first dissemination), and supports
repair after node failures.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Iterable, Mapping

from ..errors import TopologyError
from .topology import Topology


@dataclass(frozen=True)
class RepairReport:
    """What an incremental repair actually did.

    Attributes:
        dead: Nodes removed from the tree.
        orphaned: Survivors that lost their upstream path and had to be
            re-homed (the dead nodes' descendants, transitively).
        reattached: ``(child, new_parent)`` edges the repair created —
            each one is a real attach handshake on the air, so this
            tuple is the repair's message bill.
    """

    dead: tuple[int, ...]
    orphaned: tuple[int, ...]
    reattached: tuple[tuple[int, int], ...]
    #: Survivors with no radio path back to the sink (only populated
    #: when the repair was asked to detach them instead of raising).
    detached: tuple[int, ...] = ()


class RoutingTree:
    """Parent/children structure rooted at the sink."""

    def __init__(self, root: int, parents: Mapping[int, int]):
        """Build from an explicit child → parent map.

        Args:
            root: The sink node id.
            parents: parent of every non-root node. Every chain must
                terminate at ``root``; cycles raise TopologyError.
        """
        self._root = root
        self._parents = dict(parents)
        if root in self._parents:
            raise TopologyError("the root cannot have a parent")
        grow: dict[int, list[int]] = {root: []}
        for child in self._parents:
            grow.setdefault(child, [])
        for child, parent in sorted(self._parents.items()):
            if parent not in grow:
                raise TopologyError(
                    f"node {child} has parent {parent} which is not in the tree"
                )
            grow[parent].append(child)
        # The tree is immutable after construction (attach/repaired
        # build new trees), so child lists freeze into tuples here and
        # children() becomes a plain dict lookup — the converge-cast
        # loop asks for them once per node per epoch.
        self._children: dict[int, tuple[int, ...]] = {
            node: tuple(kids) for node, kids in grow.items()
        }
        self._depths = self._compute_depths()
        # Traversal orders are pure functions of the frozen structure;
        # memoized lazily (see post_order / pre_order / path_to_root).
        self._post_order: tuple[int, ...] | None = None
        self._pre_order: tuple[int, ...] | None = None
        self._path_memo: dict[int, tuple[int, ...]] = {}

    @classmethod
    def from_topology(cls, topology: Topology) -> "RoutingTree":
        """Breadth-first tree over the connectivity graph (min-hop paths).

        Ties between candidate parents break toward the smallest node
        id, which makes tree construction deterministic.
        """
        root = topology.sink_id
        parents: dict[int, int] = {}
        seen = {root}
        frontier = deque([root])
        while frontier:
            current = frontier.popleft()
            for neighbor in sorted(topology.neighbors(current)):
                if neighbor not in seen:
                    seen.add(neighbor)
                    parents[neighbor] = current
                    frontier.append(neighbor)
        missing = set(topology.node_ids) - seen
        if missing:
            raise TopologyError(
                f"nodes unreachable from the sink: {sorted(missing)}"
            )
        return cls(root, parents)

    def _compute_depths(self) -> dict[int, int]:
        depths = {self._root: 0}
        frontier = deque([self._root])
        visited = 1
        while frontier:
            current = frontier.popleft()
            for child in self._children[current]:
                depths[child] = depths[current] + 1
                frontier.append(child)
                visited += 1
        if visited != len(self._children):
            raise TopologyError("parent map contains a cycle or unreachable node")
        return depths

    @property
    def root(self) -> int:
        """The sink node id."""
        return self._root

    @property
    def node_ids(self) -> tuple[int, ...]:
        """All tree nodes including the root, sorted."""
        return tuple(sorted(self._children))

    @property
    def sensor_ids(self) -> tuple[int, ...]:
        """All tree nodes except the root."""
        return tuple(i for i in self.node_ids if i != self._root)

    def parent(self, node_id: int) -> int:
        """The parent of a non-root node."""
        try:
            return self._parents[node_id]
        except KeyError:
            if node_id == self._root:
                raise TopologyError("the root has no parent") from None
            raise TopologyError(f"unknown node {node_id}") from None

    def children(self, node_id: int) -> tuple[int, ...]:
        """Direct children of a node."""
        try:
            return self._children[node_id]
        except KeyError:
            raise TopologyError(f"unknown node {node_id}") from None

    def depth(self, node_id: int) -> int:
        """Hops from the root (root itself has depth 0)."""
        try:
            return self._depths[node_id]
        except KeyError:
            raise TopologyError(f"unknown node {node_id}") from None

    @property
    def height(self) -> int:
        """Depth of the deepest node."""
        return max(self._depths.values())

    def is_leaf(self, node_id: int) -> bool:
        """True when the node has no children."""
        return not self.children(node_id)

    def post_order(self) -> tuple[int, ...]:
        """Leaves-first order over ALL nodes (root last).

        This is the converge-cast schedule: by the time a node is
        visited, every descendant has already produced its message.
        Computed once and memoized (the tree never mutates).
        """
        if self._post_order is None:
            order: list[int] = []
            stack: list[tuple[int, bool]] = [(self._root, False)]
            while stack:
                node, expanded = stack.pop()
                if expanded:
                    order.append(node)
                else:
                    stack.append((node, True))
                    for child in reversed(self._children[node]):
                        stack.append((child, False))
            self._post_order = tuple(order)
        return self._post_order

    def pre_order(self) -> tuple[int, ...]:
        """Root-first order (the dissemination schedule); memoized."""
        if self._pre_order is None:
            order: list[int] = []
            stack = [self._root]
            while stack:
                node = stack.pop()
                order.append(node)
                for child in reversed(self._children[node]):
                    stack.append(child)
            self._pre_order = tuple(order)
        return self._pre_order

    def subtree(self, node_id: int) -> tuple[int, ...]:
        """All nodes in the subtree rooted at ``node_id`` (inclusive)."""
        nodes: list[int] = []
        stack = [node_id]
        while stack:
            current = stack.pop()
            nodes.append(current)
            stack.extend(self._children[current])
        return tuple(sorted(nodes))

    def subtree_size(self, node_id: int) -> int:
        """Number of nodes in the subtree rooted at ``node_id``."""
        return len(self.subtree(node_id))

    def path_to_root(self, node_id: int) -> tuple[int, ...]:
        """Nodes from ``node_id`` up to and including the root.

        Memoized per tree (flat protocols relay every report along
        this path, so the walk is on the per-message hot path); the
        tree never mutates, so ancestor paths can be shared suffixes.
        """
        cached = self._path_memo.get(node_id)
        if cached is not None:
            return cached
        path = [node_id]
        while path[-1] != self._root:
            path.append(self.parent(path[-1]))
        result = self._path_memo[node_id] = tuple(path)
        return result

    def attach(self, node_id: int, parent_id: int) -> "RoutingTree":
        """A new tree with ``node_id`` attached as a leaf of ``parent_id``.

        The incremental join primitive: one new edge, every existing
        parent/child relation untouched.
        """
        if node_id in self._children:
            raise TopologyError(f"node {node_id} is already in the tree")
        if parent_id not in self._children:
            raise TopologyError(f"unknown parent {parent_id}")
        return RoutingTree(self._root,
                           {**self._parents, node_id: parent_id})

    def repaired(self, dead: Iterable[int], topology: Topology,
                 energy_of: Callable[[int], float] | None = None,
                 detach_unreachable: bool = False,
                 ) -> "tuple[RoutingTree, RepairReport]":
        """Incremental repair: re-home orphaned subtrees, keep the rest.

        Unlike :meth:`without` (a full BFS rebuild that may reshuffle
        every parent pointer in the network), this touches only the
        subtrees the deaths actually orphaned: each orphaned component
        is re-rooted at the node with a radio link into the surviving
        tree and re-attached there, so the repair's message bill is
        proportional to the damage, not to the network size.

        New parents are chosen *residual-energy-aware*: among the
        attached in-range candidates the one that has spent the fewest
        joules (``energy_of``) wins, ties breaking toward the shallower
        and then the smaller-id node — dying deployments should not
        pile orphans onto their most drained relays.

        Returns the repaired tree plus a :class:`RepairReport`.
        Survivors with no radio path back to the sink raise
        :class:`TopologyError` — unless ``detach_unreachable`` is set,
        in which case they are dropped from the tree and reported in
        ``RepairReport.detached`` (a partitioned mote keeps sensing,
        but the deployment can no longer hear it).
        """
        dead_set = {d for d in dead if d in self._children}
        if self._root in dead_set:
            raise TopologyError("the sink cannot die")
        spent = energy_of or (lambda _node: 0.0)
        parents = {child: parent
                   for child, parent in self._parents.items()
                   if child not in dead_set}
        survivors = set(parents) | {self._root}

        def attached_and_depths() -> tuple[set[int], dict[int, int]]:
            children: dict[int, list[int]] = {i: [] for i in survivors}
            for child, parent in parents.items():
                if parent in survivors:
                    children[parent].append(child)
            depths = {self._root: 0}
            frontier = deque([self._root])
            while frontier:
                current = frontier.popleft()
                for child in children[current]:
                    if child not in depths:
                        depths[child] = depths[current] + 1
                        frontier.append(child)
            return set(depths), depths

        attached, depths = attached_and_depths()
        orphaned = survivors - attached
        orphaned_initially = tuple(sorted(orphaned))
        reattached: list[tuple[int, int]] = []
        detached: list[int] = []
        while orphaned:
            best: tuple[tuple[float, int, int, int], int, int] | None = None
            for node in sorted(orphaned):
                for neighbor in topology.neighbors(node):
                    if neighbor not in attached:
                        continue
                    key = (spent(neighbor), depths[neighbor], neighbor, node)
                    if best is None or key < best[0]:
                        best = (key, node, neighbor)
            if best is None:
                if not detach_unreachable:
                    raise TopologyError(
                        f"nodes unreachable from the sink after failures: "
                        f"{sorted(orphaned)}"
                    )
                detached.extend(sorted(orphaned))
                for node in orphaned:
                    parents.pop(node, None)
                break
            _, node, new_parent = best
            # Re-root the orphaned component at ``node``: the chain from
            # ``node`` up to its old component root reverses direction,
            # then ``node`` hangs off the surviving tree.
            chain = [node]
            while (chain[-1] in parents and parents[chain[-1]] in orphaned
                   and parents[chain[-1]] not in chain):
                chain.append(parents[chain[-1]])
            for upper, lower in zip(chain[1:], chain):
                parents[upper] = lower
                reattached.append((upper, lower))
            parents[node] = new_parent
            reattached.append((node, new_parent))
            attached, depths = attached_and_depths()
            orphaned = survivors - attached
        tree = RoutingTree(self._root, parents)
        report = RepairReport(dead=tuple(sorted(dead_set)),
                              orphaned=orphaned_initially,
                              reattached=tuple(reattached),
                              detached=tuple(detached))
        return tree, report

    def without(self, dead: Iterable[int], topology: Topology) -> "RoutingTree":
        """Repair the tree after nodes die.

        Dead nodes and their (possibly orphaned) descendants are
        re-attached by rebuilding a BFS tree on the surviving
        connectivity graph — how TinyDB recovers when a parent stops
        acknowledging. Raises if survivors become unreachable.
        """
        dead_set = set(dead)
        if self._root in dead_set:
            raise TopologyError("the sink cannot die")
        survivors = {
            i: topology.positions[i]
            for i in self.node_ids
            if i not in dead_set and i in topology.positions
        }
        repaired = Topology(positions=survivors,
                            radio_range=topology.radio_range,
                            sink_id=self._root)
        return RoutingTree.from_topology(repaired)
