"""Sink-rooted routing tree (TAG-style collection tree).

TinyDB/TAG route data over a spanning tree built during query
dissemination: each node picks the neighbour on the shortest path to
the sink as its parent. :class:`RoutingTree` captures that structure,
serves the traversal orders the aggregation algorithms need
(leaves-first converge-cast, root-first dissemination), and supports
repair after node failures.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Mapping

from ..errors import TopologyError
from .topology import Topology


class RoutingTree:
    """Parent/children structure rooted at the sink."""

    def __init__(self, root: int, parents: Mapping[int, int]):
        """Build from an explicit child → parent map.

        Args:
            root: The sink node id.
            parents: parent of every non-root node. Every chain must
                terminate at ``root``; cycles raise TopologyError.
        """
        self._root = root
        self._parents = dict(parents)
        if root in self._parents:
            raise TopologyError("the root cannot have a parent")
        self._children: dict[int, list[int]] = {root: []}
        for child in self._parents:
            self._children.setdefault(child, [])
        for child, parent in sorted(self._parents.items()):
            if parent not in self._children:
                raise TopologyError(
                    f"node {child} has parent {parent} which is not in the tree"
                )
            self._children[parent].append(child)
        self._depths = self._compute_depths()

    @classmethod
    def from_topology(cls, topology: Topology) -> "RoutingTree":
        """Breadth-first tree over the connectivity graph (min-hop paths).

        Ties between candidate parents break toward the smallest node
        id, which makes tree construction deterministic.
        """
        root = topology.sink_id
        parents: dict[int, int] = {}
        seen = {root}
        frontier = deque([root])
        while frontier:
            current = frontier.popleft()
            for neighbor in sorted(topology.neighbors(current)):
                if neighbor not in seen:
                    seen.add(neighbor)
                    parents[neighbor] = current
                    frontier.append(neighbor)
        missing = set(topology.node_ids) - seen
        if missing:
            raise TopologyError(
                f"nodes unreachable from the sink: {sorted(missing)}"
            )
        return cls(root, parents)

    def _compute_depths(self) -> dict[int, int]:
        depths = {self._root: 0}
        frontier = deque([self._root])
        visited = 1
        while frontier:
            current = frontier.popleft()
            for child in self._children[current]:
                depths[child] = depths[current] + 1
                frontier.append(child)
                visited += 1
        if visited != len(self._children):
            raise TopologyError("parent map contains a cycle or unreachable node")
        return depths

    @property
    def root(self) -> int:
        """The sink node id."""
        return self._root

    @property
    def node_ids(self) -> tuple[int, ...]:
        """All tree nodes including the root, sorted."""
        return tuple(sorted(self._children))

    @property
    def sensor_ids(self) -> tuple[int, ...]:
        """All tree nodes except the root."""
        return tuple(i for i in self.node_ids if i != self._root)

    def parent(self, node_id: int) -> int:
        """The parent of a non-root node."""
        try:
            return self._parents[node_id]
        except KeyError:
            if node_id == self._root:
                raise TopologyError("the root has no parent") from None
            raise TopologyError(f"unknown node {node_id}") from None

    def children(self, node_id: int) -> tuple[int, ...]:
        """Direct children of a node."""
        try:
            return tuple(self._children[node_id])
        except KeyError:
            raise TopologyError(f"unknown node {node_id}") from None

    def depth(self, node_id: int) -> int:
        """Hops from the root (root itself has depth 0)."""
        try:
            return self._depths[node_id]
        except KeyError:
            raise TopologyError(f"unknown node {node_id}") from None

    @property
    def height(self) -> int:
        """Depth of the deepest node."""
        return max(self._depths.values())

    def is_leaf(self, node_id: int) -> bool:
        """True when the node has no children."""
        return not self.children(node_id)

    def post_order(self) -> tuple[int, ...]:
        """Leaves-first order over ALL nodes (root last).

        This is the converge-cast schedule: by the time a node is
        visited, every descendant has already produced its message.
        """
        order: list[int] = []
        stack: list[tuple[int, bool]] = [(self._root, False)]
        while stack:
            node, expanded = stack.pop()
            if expanded:
                order.append(node)
            else:
                stack.append((node, True))
                for child in reversed(self._children[node]):
                    stack.append((child, False))
        return tuple(order)

    def pre_order(self) -> tuple[int, ...]:
        """Root-first order (the dissemination schedule)."""
        order: list[int] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            order.append(node)
            for child in reversed(self._children[node]):
                stack.append(child)
        return tuple(order)

    def subtree(self, node_id: int) -> tuple[int, ...]:
        """All nodes in the subtree rooted at ``node_id`` (inclusive)."""
        nodes: list[int] = []
        stack = [node_id]
        while stack:
            current = stack.pop()
            nodes.append(current)
            stack.extend(self._children[current])
        return tuple(sorted(nodes))

    def subtree_size(self, node_id: int) -> int:
        """Number of nodes in the subtree rooted at ``node_id``."""
        return len(self.subtree(node_id))

    def path_to_root(self, node_id: int) -> tuple[int, ...]:
        """Nodes from ``node_id`` up to and including the root."""
        path = [node_id]
        while path[-1] != self._root:
            path.append(self.parent(path[-1]))
        return tuple(path)

    def without(self, dead: Iterable[int], topology: Topology) -> "RoutingTree":
        """Repair the tree after nodes die.

        Dead nodes and their (possibly orphaned) descendants are
        re-attached by rebuilding a BFS tree on the surviving
        connectivity graph — how TinyDB recovers when a parent stops
        acknowledging. Raises if survivors become unreachable.
        """
        dead_set = set(dead)
        if self._root in dead_set:
            raise TopologyError("the sink cannot die")
        survivors = {
            i: topology.positions[i]
            for i in self.node_ids
            if i not in dead_set and i in topology.positions
        }
        repaired = Topology(positions=survivors,
                            radio_range=topology.radio_range,
                            sink_id=self._root)
        return RoutingTree.from_topology(repaired)
