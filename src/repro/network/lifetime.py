"""Network-lifetime simulation.

The demo's energy story ends in one number: how long until the network
dies? Lifetime is conventionally the time to the *first* battery death
(the bottleneck node — usually a sink neighbour relaying everyone's
traffic). This module runs a continuous query until that happens, or
extrapolates when the battery outlives the simulation budget.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError
from .simulator import Network


@dataclass(frozen=True)
class LifetimeReport:
    """Outcome of a lifetime run.

    Attributes:
        epochs: Epochs until the first death (possibly extrapolated).
        first_dead: The bottleneck node id.
        simulated_epochs: Epochs actually executed.
        extrapolated: True when the battery outlived the budget and the
            answer comes from the steady-state burn rate.
        burn_rates: Per-node joules per epoch (steady state).
    """

    epochs: float
    first_dead: int
    simulated_epochs: int
    extrapolated: bool
    burn_rates: dict[int, float]


def simulate_lifetime(algorithm, network: Network,
                      battery_joules: float | None = None,
                      max_epochs: int = 10_000,
                      warmup_epochs: int = 5) -> LifetimeReport:
    """Run ``algorithm`` until a node's cumulative energy exceeds the
    battery, killing it for real; extrapolate if the budget runs out.

    Args:
        algorithm: Anything with ``run_epoch()`` bound to ``network``.
        battery_joules: Per-node battery (defaults to the network's
            energy model). Benchmarks pass small values so deaths occur
            within the simulation budget.
        max_epochs: Simulation budget before extrapolating.
        warmup_epochs: Epochs excluded from the steady-state burn rate
            (the creation phase is atypically expensive).
    """
    battery = (network.energy.battery_joules if battery_joules is None
               else battery_joules)
    if battery <= 0:
        raise ConfigurationError("battery must be positive")
    warmup_totals: dict[int, float] = {}
    for epoch in range(max_epochs):
        algorithm.run_epoch()
        if epoch + 1 == warmup_epochs:
            warmup_totals = {
                node_id: network.ledger(node_id).total
                for node_id in network.tree.sensor_ids
            }
        drained = [
            node_id for node_id in network.alive_sensor_ids()
            if network.ledger(node_id).total >= battery
        ]
        if drained:
            victim = max(drained,
                         key=lambda n: network.ledger(n).total)
            simulated = epoch + 1
            rates = {
                node_id: network.ledger(node_id).total / simulated
                for node_id in network.tree.sensor_ids
            }
            return LifetimeReport(
                epochs=float(simulated),
                first_dead=victim,
                simulated_epochs=simulated,
                extrapolated=False,
                burn_rates=rates,
            )

    # Budget exhausted: extrapolate from the post-warmup burn rate.
    steady_epochs = max_epochs - warmup_epochs
    if steady_epochs <= 0:
        raise ConfigurationError("max_epochs must exceed warmup_epochs")
    rates = {}
    worst_node = None
    worst_rate = 0.0
    for node_id in network.tree.sensor_ids:
        total = network.ledger(node_id).total
        steady = (total - warmup_totals.get(node_id, 0.0)) / steady_epochs
        rates[node_id] = steady
        if steady > worst_rate:
            worst_rate = steady
            worst_node = node_id
    if worst_node is None or worst_rate <= 0:
        raise ConfigurationError("no energy was drawn; nothing to project")
    remaining = battery - network.ledger(worst_node).total
    return LifetimeReport(
        epochs=max_epochs + max(0.0, remaining) / worst_rate,
        first_dead=worst_node,
        simulated_epochs=max_epochs,
        extrapolated=True,
        burn_rates=rates,
    )
