"""Node placement and radio connectivity.

A :class:`Topology` is the physical layer input to routing: node
positions plus the radio range that induces the connectivity graph.
Placement helpers build the layouts used across the experiments —
grids, uniform-random fields, and the clustered "rooms" layout of the
paper's demo scenario.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from ..errors import TopologyError

#: Conventional identifier of the sink / base station (s0 in the paper).
SINK_ID = 0


@dataclass
class Topology:
    """Node positions and the range-disc connectivity they induce.

    Attributes:
        positions: node id → (x, y) metres. Must include the sink.
        radio_range: maximum link distance in metres.
        sink_id: identifier of the base station.
    """

    positions: dict[int, tuple[float, float]]
    radio_range: float
    sink_id: int = SINK_ID
    _adjacency: dict[int, tuple[int, ...]] = field(init=False, repr=False,
                                                   default_factory=dict)

    def __post_init__(self) -> None:
        if self.sink_id not in self.positions:
            raise TopologyError(f"sink {self.sink_id} has no position")
        if self.radio_range <= 0:
            raise TopologyError("radio range must be positive")
        self._rebuild_adjacency()

    def _rebuild_adjacency(self) -> None:
        ids = sorted(self.positions)
        adjacency: dict[int, list[int]] = {i: [] for i in ids}
        for index, a in enumerate(ids):
            for b in ids[index + 1:]:
                if self.distance(a, b) <= self.radio_range:
                    adjacency[a].append(b)
                    adjacency[b].append(a)
        self._adjacency = {i: tuple(ns) for i, ns in adjacency.items()}

    @property
    def node_ids(self) -> tuple[int, ...]:
        """All node ids including the sink, sorted."""
        return tuple(sorted(self.positions))

    @property
    def sensor_ids(self) -> tuple[int, ...]:
        """All node ids excluding the sink."""
        return tuple(i for i in self.node_ids if i != self.sink_id)

    def distance(self, a: int, b: int) -> float:
        """Euclidean distance between two nodes in metres."""
        ax, ay = self.positions[a]
        bx, by = self.positions[b]
        return math.hypot(ax - bx, ay - by)

    def neighbors(self, node_id: int) -> tuple[int, ...]:
        """Nodes within radio range of ``node_id``."""
        try:
            return self._adjacency[node_id]
        except KeyError:
            raise TopologyError(f"unknown node {node_id}") from None

    def is_connected(self) -> bool:
        """True when every node can reach the sink over radio links."""
        return len(self.reachable_from_sink()) == len(self.positions)

    def reachable_from_sink(self) -> set[int]:
        """Set of nodes (incl. sink) reachable from the sink."""
        seen = {self.sink_id}
        frontier = [self.sink_id]
        while frontier:
            current = frontier.pop()
            for nxt in self.neighbors(current):
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        return seen

    def add_node(self, node_id: int, position: tuple[float, float]) -> None:
        """Place a node (join injection); re-placing the sink is refused.

        A node id that already has a position is moved — how a killed
        mote re-enters the field at a fresh spot when it rejoins.
        """
        if node_id == self.sink_id:
            raise TopologyError("the sink is already deployed")
        if node_id < 0:
            raise TopologyError("node ids must be non-negative")
        self.positions[node_id] = (float(position[0]), float(position[1]))
        self._rebuild_adjacency()

    def remove_node(self, node_id: int) -> None:
        """Delete a node (failure injection); the sink cannot be removed."""
        if node_id == self.sink_id:
            raise TopologyError("cannot remove the sink")
        if node_id not in self.positions:
            raise TopologyError(f"unknown node {node_id}")
        del self.positions[node_id]
        self._rebuild_adjacency()


def grid_topology(side: int, spacing: float = 10.0,
                  radio_range: float | None = None) -> Topology:
    """A ``side × side`` sensor grid with the sink at the origin corner.

    Node ids are 1..side² in row-major order; the sink (id 0) sits at
    the grid's (0, 0) corner cell. The default radio range connects the
    4-neighbourhood plus diagonals, giving a multi-hop tree — the
    standard TAG evaluation layout.
    """
    if side < 1:
        raise TopologyError("grid side must be >= 1")
    if radio_range is None:
        radio_range = spacing * 1.5
    positions: dict[int, tuple[float, float]] = {SINK_ID: (0.0, 0.0)}
    node_id = 1
    for row in range(side):
        for col in range(side):
            positions[node_id] = (col * spacing, row * spacing)
            node_id += 1
    return Topology(positions=positions, radio_range=radio_range)


def linear_topology(n: int, spacing: float = 10.0) -> Topology:
    """A chain sink—1—2—…—n; worst-case depth, used in routing tests."""
    if n < 1:
        raise TopologyError("linear topology needs at least one sensor")
    positions = {SINK_ID: (0.0, 0.0)}
    positions.update({i: (i * spacing, 0.0) for i in range(1, n + 1)})
    return Topology(positions=positions, radio_range=spacing * 1.2)


def star_topology(n: int, radius: float = 10.0) -> Topology:
    """All sensors one hop from the sink (single-hop star)."""
    if n < 1:
        raise TopologyError("star topology needs at least one sensor")
    positions = {SINK_ID: (0.0, 0.0)}
    for i in range(1, n + 1):
        angle = 2.0 * math.pi * (i - 1) / n
        positions[i] = (radius * math.cos(angle), radius * math.sin(angle))
    return Topology(positions=positions, radio_range=radius * 1.05)


def random_topology(n: int, area: float = 100.0, radio_range: float = 25.0,
                    seed: int = 0, max_attempts: int = 200) -> Topology:
    """``n`` sensors placed uniformly in an ``area × area`` square.

    Redraws placements (deterministically, advancing the seed) until the
    network is connected, raising :class:`TopologyError` if no connected
    placement is found within ``max_attempts`` draws.
    """
    if n < 1:
        raise TopologyError("random topology needs at least one sensor")
    for attempt in range(max_attempts):
        rng = random.Random(seed + attempt * 7_919)
        positions = {SINK_ID: (area / 2.0, area / 2.0)}
        positions.update({
            i: (rng.uniform(0, area), rng.uniform(0, area))
            for i in range(1, n + 1)
        })
        topology = Topology(positions=positions, radio_range=radio_range)
        if topology.is_connected():
            return topology
    raise TopologyError(
        f"no connected placement of {n} nodes in {area}x{area} at range "
        f"{radio_range} after {max_attempts} attempts; increase the range"
    )


@dataclass(frozen=True)
class RoomSpec:
    """A rectangular room hosting some number of sensors.

    Attributes:
        name: Room / cluster label (the GROUP BY key of the demo query).
        x, y: Lower-left corner in metres.
        width, height: Room dimensions in metres.
        sensors: Number of sensors placed in this room.
    """

    name: str
    x: float
    y: float
    width: float
    height: float
    sensors: int

    def __post_init__(self) -> None:
        if self.sensors < 1:
            raise TopologyError(f"room {self.name!r} needs at least one sensor")
        if self.width <= 0 or self.height <= 0:
            raise TopologyError(f"room {self.name!r} has non-positive size")


def room_topology(rooms: Sequence[RoomSpec], radio_range: float = 30.0,
                  sink_position: tuple[float, float] | None = None,
                  seed: int = 0) -> tuple[Topology, dict[int, str]]:
    """Clustered placement: sensors scattered inside rectangular rooms.

    Returns the topology plus the ``node id → room name`` mapping that
    becomes the query's GROUP BY attribute (the paper's Configuration
    Panel clusters). The sink defaults to the centroid of all rooms.
    """
    if not rooms:
        raise TopologyError("room topology needs at least one room")
    names = [room.name for room in rooms]
    if len(set(names)) != len(names):
        raise TopologyError("room names must be unique")
    rng = random.Random(seed)
    positions: dict[int, tuple[float, float]] = {}
    room_of: dict[int, str] = {}
    node_id = 1
    for room in rooms:
        for _ in range(room.sensors):
            positions[node_id] = (
                room.x + rng.uniform(0, room.width),
                room.y + rng.uniform(0, room.height),
            )
            room_of[node_id] = room.name
            node_id += 1
    if sink_position is None:
        xs = [p[0] for p in positions.values()]
        ys = [p[1] for p in positions.values()]
        sink_position = (sum(xs) / len(xs), sum(ys) / len(ys))
    positions[SINK_ID] = sink_position
    topology = Topology(positions=positions, radio_range=radio_range)
    if not topology.is_connected():
        raise TopologyError(
            "room layout is not connected at the given radio range; "
            "increase radio_range or move rooms closer"
        )
    return topology, room_of


def group_counts(group_of: Mapping[int, str | int]) -> dict[str | int, int]:
    """Sensors per group — the cardinalities MINT learns at creation."""
    counts: dict[str | int, int] = {}
    for group in group_of.values():
        counts[group] = counts.get(group, 0) + 1
    return counts
