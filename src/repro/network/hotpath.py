"""Hot-path switchboard: optimized epoch loop vs. reference semantics.

The simulator's epoch loop carries several caches that exist purely for
speed — the memoized :func:`~repro.network.packets.fragment` cost
model, per-tree traversal-order caches, per-epoch traffic batching,
and the engines' fused per-epoch passes (MINT's prune+update
converge-cast, TAG's aggregation converge-cast, FILA's monitor+bounds
pass and repartition-order memo) — all of which are *semantically
invisible*: with the caches on or off, every message, byte, joule and
per-phase snapshot is identical.

The switch also selects the sinks' certification strategy: on the hot
path each session maintains an incremental
:class:`~repro.core.delta.TopKView` (threshold, rank order and
ambiguous set updated per delta); on the reference path every epoch
calls the stateless :func:`~repro.core.certify.certify_top_k` oracle
cold. ``tests/test_delta_equivalence.py`` proves the two byte-identical
across engines and churn.

This module owns the single switch that selects between the two modes:

* **hot path** (the default) — caches enabled; this is what every
  benchmark and production run uses; and
* **reference path** — caches bypassed, every cost re-derived from
  first principles exactly as the pre-optimization code did.

The reference path exists so the equivalence can be *proved* rather
than asserted: ``tests/test_hotpath_equivalence.py`` drives random
scenarios through both modes and compares answers and
:class:`~repro.network.stats.NetworkStats` byte-for-byte, and the
``repro perf --compare-reference`` harness prices the speedup.

A second, finer switch sits beside this one:
:mod:`repro.network.columnar` selects between the object-at-a-time hot
path and the structure-of-arrays columnar kernel (batched sensing,
mask-driven passes). It layers *on top of* this switch — the columnar
kernel is only active when the hot path is, so
:func:`reference_path` always yields the pristine first-principles
oracle — and follows the same switch-and-prove contract
(``columnar.scalar_path()``, proved by the same equivalence suite,
priced by ``benchmarks/bench_e16_columnar.py``).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

#: The switch itself. Call :func:`enabled` in normal code; call sites
#: executed hundreds of thousands of times per epoch may read this
#: module attribute directly to skip the function call.
_enabled = True


def enabled() -> bool:
    """True when the optimized hot path is active (the default)."""
    return _enabled


def set_enabled(value: bool) -> None:
    """Globally select the hot (True) or reference (False) path.

    Takes effect on the next shipped message / epoch; existing cached
    state is simply bypassed, never trusted, while disabled.
    """
    global _enabled
    _enabled = bool(value)


@contextmanager
def reference_path() -> Iterator[None]:
    """Run the enclosed block on the unoptimized reference path."""
    previous = _enabled
    set_enabled(False)
    try:
        yield
    finally:
        set_enabled(previous)
