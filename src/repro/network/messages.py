"""Typed logical messages and their wire sizes.

Every protocol message the top-k algorithms exchange is a dataclass
here, with a ``payload_bytes`` property derived from realistic field
encodings (2-byte node/group ids, 4-byte fixed-point values, 2-byte
counts). The simulator converts payload bytes into TOS_Msg packets via
:mod:`repro.network.packets` and charges the radio energy model.

Keeping sizes *derived from content* rather than hard-coded per message
type is what lets pruning show up as byte savings: a view update with
fewer tuples is genuinely smaller on the air.

Every message is immutable, so its wire size is fixed at construction:
fixed-layout messages publish ``payload_bytes`` as a class constant,
and the messages that relay hop-by-hop (one instance shipped many
times) memoize it per instance (``functools.cached_property``) so no
hop after the first re-walks the entry tuples.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Hashable, NamedTuple, Sequence

#: Field encodings (bytes).
SZ_NODE_ID = 2
SZ_GROUP_ID = 2
SZ_VALUE = 4
SZ_COUNT = 2
SZ_EPOCH = 4
SZ_QUERY_ID = 1
SZ_OBJECT_ID = 4  # historic queries rank time instants (32-bit epoch ids)

#: Group keys are strings at the API level but travel as 2-byte ids on
#: the air (the creation phase establishes the dictionary).
GroupKey = Hashable


class ViewEntry(NamedTuple):
    """One view tuple: a group's partial aggregate (group, sum, count).

    This is exactly the ``(roomid, sum, count)`` tuple of the paper's
    TAG example, generalised: MIN/MAX ride in ``value`` with count
    carrying the contributing-sensor tally needed by the bound logic.
    (A NamedTuple: entry construction is the epoch loop's most frequent
    allocation after packet costs, and tuples build in C.)
    """

    group: GroupKey
    value: float
    count: int

    WIRE_BYTES = SZ_GROUP_ID + SZ_VALUE + SZ_COUNT


class Reading(NamedTuple):
    """A raw (node, value) sample, as shipped by the centralized baseline."""

    node_id: int
    value: float

    WIRE_BYTES = SZ_NODE_ID + SZ_VALUE


class ObjectScore(NamedTuple):
    """A historic-query item: (object id, partial score, count)."""

    object_id: int
    value: float
    count: int = 1

    WIRE_BYTES = SZ_OBJECT_ID + SZ_VALUE + SZ_COUNT


class WireMessage:
    """Base class: anything the simulator can ship has a payload size."""

    kind: str = "generic"

    @property
    def payload_bytes(self) -> int:
        raise NotImplementedError


@dataclass(frozen=True)
class QueryMessage(WireMessage):
    """Query dissemination (sink → network): compiled query descriptor.

    TinyDB ships a compact compiled form, not SQL text; we charge a
    fixed descriptor (query id, operator code, attribute id, K, epoch
    duration, window length) — 16 bytes.
    """

    query_id: int
    kind: str = field(default="query", init=False)

    #: Fixed compiled-descriptor layout — a class constant, no walk.
    payload_bytes = 16


@dataclass(frozen=True)
class ViewUpdateMessage(WireMessage):
    """MINT view update (child → parent): pruned view ``V'`` plus γ.

    γ travels as one 4-byte value when present. An empty update (no
    surviving tuples, γ only) is how a heavily-pruned subtree sounds.
    """

    epoch: int
    entries: tuple[ViewEntry, ...]
    gamma: float | None = None
    retractions: tuple[GroupKey, ...] = ()
    kind: str = field(default="view_update", init=False)

    @property
    def payload_bytes(self) -> int:
        size = SZ_EPOCH + len(self.entries) * ViewEntry.WIRE_BYTES
        size += len(self.retractions) * SZ_GROUP_ID
        if self.gamma is not None:
            size += SZ_VALUE
        return size


@dataclass(frozen=True)
class RawReadingsMessage(WireMessage):
    """Centralized baseline: raw readings forwarded verbatim."""

    epoch: int
    readings: tuple[Reading, ...]
    kind: str = field(default="raw_readings", init=False)

    @property
    def payload_bytes(self) -> int:
        return SZ_EPOCH + len(self.readings) * Reading.WIRE_BYTES


@dataclass(frozen=True)
class ProbeRequestMessage(WireMessage):
    """MINT probe (sink → network): groups whose exact partials are needed."""

    epoch: int
    groups: tuple[GroupKey, ...]
    kind: str = field(default="probe_request", init=False)

    @cached_property
    def payload_bytes(self) -> int:
        return SZ_EPOCH + len(self.groups) * SZ_GROUP_ID


@dataclass(frozen=True)
class ProbeReplyMessage(WireMessage):
    """MINT probe reply (child → parent): exact partials for probed groups."""

    epoch: int
    entries: tuple[ViewEntry, ...]
    kind: str = field(default="probe_reply", init=False)

    @property
    def payload_bytes(self) -> int:
        return SZ_EPOCH + len(self.entries) * ViewEntry.WIRE_BYTES


@dataclass(frozen=True)
class LBReplyMessage(WireMessage):
    """TJA Lower-Bound phase (child → parent): union of local top-k ids.

    The hierarchical union ships object identifiers only — values
    follow in the join phase, which is exactly why the union is cheap.
    """

    object_ids: tuple[int, ...]
    kind: str = field(default="lb_reply", init=False)

    @property
    def payload_bytes(self) -> int:
        return len(self.object_ids) * SZ_OBJECT_ID


@dataclass(frozen=True)
class CandidateSetMessage(WireMessage):
    """TJA HJ dissemination (sink → network): the candidate object ids."""

    object_ids: tuple[int, ...]
    kind: str = field(default="candidate_set", init=False)

    @property
    def payload_bytes(self) -> int:
        return len(self.object_ids) * SZ_OBJECT_ID


@dataclass(frozen=True)
class JoinReplyMessage(WireMessage):
    """TJA HJ reply (child → parent): joined partial scores + threshold.

    ``threshold`` is the subtree's combined k-th local score — the bound
    the Clean-Up certification uses for unseen objects.
    """

    items: tuple[ObjectScore, ...]
    threshold_value: float
    threshold_count: int
    kind: str = field(default="join_reply", init=False)

    @property
    def payload_bytes(self) -> int:
        return len(self.items) * ObjectScore.WIRE_BYTES + SZ_VALUE + SZ_COUNT


@dataclass(frozen=True)
class ScoreListMessage(WireMessage):
    """Flat (object id, value) pairs, as TPUT ships them node→sink."""

    items: tuple[ObjectScore, ...]
    kind: str = field(default="score_list", init=False)

    @cached_property
    def payload_bytes(self) -> int:
        # Flat protocols ship (id, value) without the count field.
        return len(self.items) * (SZ_OBJECT_ID + SZ_VALUE)


@dataclass(frozen=True)
class FilterUpdateMessage(WireMessage):
    """FILA filter installation (sink → node): per-group [lo, hi] window."""

    intervals: tuple[tuple[GroupKey, float, float], ...]
    kind: str = field(default="filter_update", init=False)

    @property
    def payload_bytes(self) -> int:
        return len(self.intervals) * (SZ_GROUP_ID + 2 * SZ_VALUE)


@dataclass(frozen=True)
class FilterReportMessage(WireMessage):
    """FILA violation report (node → sink): readings that left their filter."""

    epoch: int
    entries: tuple[ViewEntry, ...]
    kind: str = field(default="filter_report", init=False)

    @cached_property
    def payload_bytes(self) -> int:
        return SZ_EPOCH + len(self.entries) * ViewEntry.WIRE_BYTES


@dataclass(frozen=True)
class ControlMessage(WireMessage):
    """Small fixed-size control traffic (acks, phase turnovers, beacons)."""

    label: str
    size: int = 8
    kind: str = field(default="control", init=False)

    @property
    def payload_bytes(self) -> int:
        return self.size


def total_entries(messages: Sequence[WireMessage]) -> int:
    """Number of tuples carried by a batch of messages (for assertions)."""
    count = 0
    for message in messages:
        entries = getattr(message, "entries", None) or getattr(message, "items", None)
        if entries:
            count += len(entries)
    return count
