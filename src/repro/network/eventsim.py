"""Discrete-event simulator core — the third switch-and-prove layer.

:mod:`repro.network.hotpath` made the epoch loop allocation-free and
:mod:`repro.network.columnar` gave it a columnar data layout; both kept
the *control flow* inline — a shipped message charges energy and
counters in the middle of its caller's stack frame. This module is the
control-flow half of the story: a deterministic discrete-event queue
(:class:`EventQueue` of :class:`ScheduledEvent` entries, heap-keyed on
``(time, seq, node_id)`` with the per-queue ``seq`` breaking ties so
insertion order is total and the fire callable is never compared) that
the simulator's shipping layer
(:meth:`~repro.network.simulator.Network._ship_unicast` and friends)
posts deliveries onto instead of invoking handlers inline, with the
engine receive paths (the MINT/FILA/TAG fused passes) handed over as
explicit ``deliver`` event handlers.

**Switch-and-prove discipline** — the same contract as hotpath and
columnar, stacked as the third switch. The event core is only *active*
when the hot path is (:func:`enabled` consults both flags), so
``hotpath.reference_path()`` still yields the pristine first-principles
oracle, and :func:`inline_ship` isolates the event core from the other
two switches. The modes:

* **Zero-delay mode** (the default :class:`~repro.network.link.
  RadioModel`: no propagation latency, no partitioning): every posted
  event fires synchronously at its post site, so the queue drains in
  the exact order the inline path ran — proven **byte-identical**
  (answers, certifications, ledgers, by_kind/by_phase counters, RNG
  draws) by
  ``tests/test_hotpath_equivalence.py::TestEventsimEquivalence``
  across the five-engine mix with churn.
* **Delay mode** (``RadioModel.propagation_latency_s > 0``):
  deliveries are timestamped with the sender's channel-busy time plus
  per-link airtime plus propagation latency, and transport accounting
  drains in timestamp order at the epoch barrier — the
  asynchronous-radio scenario family. Engines still observe epoch
  semantics through the *per-epoch lookahead window*: payload
  delivery (the ``deliver`` handler) stays eager at the post site,
  only the channel-time accounting defers, and stats phases are
  replayed from the phase that was open when the event was posted.
* **Partitioned mode**
  (:meth:`~repro.network.simulator.Network.enable_subtree_partitioning`):
  the sink's child subtrees get independent event streams — a queue
  and a loss-RNG stream per subtree, derived via
  ``repro.parallel.derive_seed`` from the deployment seed and the
  subtree root's identity — with per-subtree stats batches merged at
  the epoch barrier in sorted-root order. Subtree streams being
  independent of each other is what lets ``repro perf`` parallelise
  one large deployment's epoch across worker processes
  (``measure_eventsim``'s partitioned section).

``tests/test_eventsim.py`` pins the queue's deterministic
tie-breaking, the delay-mode timeline, the latch coalescing under
:meth:`~repro.network.simulator.Network.shared_epoch`, and the
subtree-stream independence.
"""

from __future__ import annotations

import heapq
from contextlib import contextmanager
from typing import Callable, Iterator, NamedTuple

from . import hotpath


class ScheduledEvent(NamedTuple):
    """One queued delivery: fires at ``time`` (simulated seconds).

    Tuple comparison orders the heap by ``(time, seq, node_id)``;
    ``seq`` is unique per queue, so ties on ``time`` resolve by
    insertion order and ``fire`` is never compared.
    """

    time: float
    seq: int
    node_id: int
    fire: Callable[[], None]


class EventQueue:
    """A deterministic min-heap of :class:`ScheduledEvent` entries."""

    __slots__ = ("_heap", "_seq")

    def __init__(self) -> None:
        self._heap: list[ScheduledEvent] = []
        self._seq = 0

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def push(self, time: float, node_id: int,
             fire: Callable[[], None]) -> ScheduledEvent:
        """Schedule ``fire`` at ``time``; returns the queued event."""
        event = ScheduledEvent(time, self._seq, node_id, fire)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> ScheduledEvent:
        """Remove and return the earliest event (IndexError when empty)."""
        return heapq.heappop(self._heap)

    def peek(self) -> ScheduledEvent | None:
        """The earliest event without removing it (None when empty)."""
        return self._heap[0] if self._heap else None


# --------------------------------------------------------------------
# The switch (third in the hotpath -> columnar -> eventsim stack)
# --------------------------------------------------------------------

#: The event-core switch. Unlike hotpath/columnar it defaults OFF: the
#: inline ship path remains the production default until a scenario
#: asks for the event core (``--event-core`` / ``--latency``).
_enabled = False


def enabled() -> bool:
    """True when the event core is active (eventsim switch on AND the
    hot path enabled — :func:`hotpath.reference_path` therefore
    disables the event core too, keeping the oracle pristine)."""
    return _enabled and hotpath._enabled


def set_enabled(value: bool) -> None:
    """Globally select the event-queue (True) or inline (False)
    shipping layer. Takes effect on the next shipped message."""
    global _enabled
    _enabled = bool(value)


@contextmanager
def event_core() -> Iterator[None]:
    """Run the enclosed block with the event core enabled."""
    previous = _enabled
    set_enabled(True)
    try:
        yield
    finally:
        set_enabled(previous)


@contextmanager
def inline_ship() -> Iterator[None]:
    """Run the enclosed block on the inline ship path (the event
    core's oracle): handlers invoked in the caller's frame, exactly as
    the pre-event-core simulator did. The equivalence suite and
    ``repro perf`` use this to hold the queue to the inline path."""
    previous = _enabled
    set_enabled(False)
    try:
        yield
    finally:
        set_enabled(previous)
