"""Failure injection for robustness experiments.

Sensor deployments lose nodes — batteries die, hardware fails. A
:class:`FailureSchedule` scripts deterministic node deaths against the
simulator so tests and benchmarks can check that the routing tree
repairs itself and the top-k algorithms keep answering correctly over
the surviving population.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterable

from ..errors import ConfigurationError
from .simulator import Network


@dataclass(frozen=True)
class Failure:
    """One scripted death: ``node_id`` dies at the start of ``epoch``."""

    epoch: int
    node_id: int


@dataclass
class FailureSchedule:
    """An ordered script of node deaths."""

    failures: list[Failure] = field(default_factory=list)

    @classmethod
    def random_deaths(cls, node_ids: Iterable[int], count: int,
                      epochs: int, seed: int = 0,
                      first_epoch: int = 1) -> "FailureSchedule":
        """``count`` distinct nodes dying at random epochs in
        ``[first_epoch, epochs)``."""
        pool = sorted(node_ids)
        if count > len(pool):
            raise ConfigurationError(
                f"cannot kill {count} of {len(pool)} nodes"
            )
        if first_epoch >= epochs and count > 0:
            raise ConfigurationError("no epoch available for failures")
        rng = random.Random(seed)
        victims = rng.sample(pool, count)
        deaths = sorted(
            (rng.randrange(first_epoch, epochs), v) for v in victims
        )
        return cls([Failure(epoch, node) for epoch, node in deaths])

    def due(self, epoch: int) -> tuple[Failure, ...]:
        """Failures scheduled for exactly this epoch."""
        return tuple(f for f in self.failures if f.epoch == epoch)

    def apply(self, network: Network, epoch: int) -> tuple[int, ...]:
        """Kill every node due at ``epoch``; returns the victims.

        The tree is repaired once after the batch, not per victim.
        """
        victims = [f.node_id for f in self.due(epoch)
                   if network.node(f.node_id).alive]
        for node_id in victims[:-1]:
            network.kill_node(node_id, repair=False)
        if victims:
            network.kill_node(victims[-1], repair=True)
        return tuple(victims)
