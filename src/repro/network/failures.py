"""Failure injection for robustness experiments (deaths-only view).

Sensor deployments lose nodes — batteries die, hardware fails. A
:class:`FailureSchedule` scripts deterministic node deaths against the
simulator so tests and benchmarks can check that the routing tree
repairs itself and the top-k algorithms keep answering correctly over
the surviving population.

This is the historical, deaths-only API; it is now a thin view over
the general churn subsystem (:mod:`repro.network.churn`), which also
scripts node *births* and Poisson-generated fleets. The sink is never
in the victim pool.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from .churn import ChurnKind, ChurnSchedule
from .simulator import Network
from .topology import SINK_ID


@dataclass(frozen=True)
class Failure:
    """One scripted death: ``node_id`` dies at the start of ``epoch``."""

    epoch: int
    node_id: int


@dataclass
class FailureSchedule:
    """An ordered script of node deaths."""

    failures: list[Failure] = field(default_factory=list)

    @classmethod
    def random_deaths(cls, node_ids: Iterable[int], count: int,
                      epochs: int, seed: int = 0,
                      first_epoch: int = 1,
                      sink_id: int = SINK_ID) -> "FailureSchedule":
        """``count`` distinct non-sink nodes dying at random epochs in
        ``[first_epoch, epochs)``. The sink is excluded from the victim
        pool — it is the mains-powered base station."""
        churn = ChurnSchedule.random_deaths(
            node_ids, count, epochs, seed=seed, first_epoch=first_epoch,
            sink_id=sink_id)
        return cls([Failure(e.epoch, e.node_id) for e in churn.events])

    def as_churn(self) -> ChurnSchedule:
        """This schedule as a (deaths-only) :class:`ChurnSchedule`."""
        from .churn import ChurnEvent

        return ChurnSchedule([
            ChurnEvent(f.epoch, ChurnKind.DEATH, f.node_id)
            for f in self.failures
        ])

    def due(self, epoch: int) -> tuple[Failure, ...]:
        """Failures scheduled for exactly this epoch."""
        return tuple(f for f in self.failures if f.epoch == epoch)

    def apply(self, network: Network, epoch: int) -> tuple[int, ...]:
        """Kill every node due at ``epoch``; returns the victims.

        Delegates to the churn subsystem's batch application, so the
        tree is repaired once after the batch, not per victim.
        """
        applied = self.as_churn().apply(network, epoch)
        return tuple(e.node_id for e in applied)
