"""Churn schedules: scripted and stochastic node deaths *and* births.

:class:`~repro.network.failures.FailureSchedule` scripts deaths only;
real deployments also gain nodes — batteries get swapped, extra motes
get scattered. A :class:`ChurnSchedule` is the generalisation: an
ordered script of :class:`ChurnEvent` deaths and births applied
against the simulator's lifecycle hooks
(:meth:`~repro.network.simulator.Network.kill_node` /
:meth:`~repro.network.simulator.Network.join_node`), plus a Poisson
generator that draws both processes from one seed so experiments get
reproducible "messy fleet" behaviour.

The sink is never a victim: it is the mains-powered base station, and
scheduling its death is a configuration error, not an experiment.
"""

from __future__ import annotations

import enum
import math
import random
from dataclasses import dataclass, field
from typing import Callable, Hashable, Iterable

from ..errors import ConfigurationError, TopologyError
from .simulator import Network
from .topology import SINK_ID, Topology


class ChurnKind(enum.Enum):
    """What a scheduled churn event does to the fleet."""

    DEATH = "death"
    BIRTH = "birth"


@dataclass(frozen=True)
class ChurnEvent:
    """One scripted transition at the start of ``epoch``.

    Births carry the placement (and optionally the cluster) of the new
    mote; deaths need only the victim id.
    """

    epoch: int
    kind: ChurnKind
    node_id: int
    position: tuple[float, float] | None = None
    group: Hashable = None

    def __post_init__(self) -> None:
        if self.kind is ChurnKind.BIRTH and self.position is None:
            raise ConfigurationError(
                f"birth of node {self.node_id} needs a position")


def _poisson(rng: random.Random, lam: float) -> int:
    """Knuth's Poisson sampler (λ is small here; exactness over speed)."""
    if lam <= 0:
        return 0
    threshold = math.exp(-lam)
    count = 0
    product = rng.random()
    while product > threshold:
        count += 1
        product *= rng.random()
    return count


@dataclass
class ChurnSchedule:
    """An ordered script of node deaths and births.

    The per-epoch lookup (:meth:`due`) keeps a lazily built epoch
    index, so a driver stepping E epochs over an N-event schedule pays
    pointer-cheap fingerprint checks instead of re-filtering all N
    events per epoch. The index rebuilds whenever the ``events`` list
    no longer holds the same event objects it was built from (append,
    remove, replace — any mutation).
    """

    events: list[ChurnEvent] = field(default_factory=list)
    _by_epoch: "dict[int, tuple[ChurnEvent, ...]] | None" = field(
        default=None, init=False, repr=False, compare=False)
    _index_fingerprint: "tuple[ChurnEvent, ...] | None" = field(
        default=None, init=False, repr=False, compare=False)

    # ------------------------------------------------------------------
    # Generators
    # ------------------------------------------------------------------

    @classmethod
    def random_deaths(cls, node_ids: Iterable[int], count: int,
                      epochs: int, seed: int = 0, first_epoch: int = 1,
                      sink_id: int = SINK_ID) -> "ChurnSchedule":
        """``count`` distinct non-sink victims at random epochs in
        ``[first_epoch, epochs)`` — the FailureSchedule workload, typed
        as churn. The sink is excluded from the victim pool."""
        pool = sorted(i for i in node_ids if i != sink_id)
        if count > len(pool):
            raise ConfigurationError(
                f"cannot kill {count} of {len(pool)} non-sink nodes"
            )
        if first_epoch >= epochs and count > 0:
            raise ConfigurationError("no epoch available for failures")
        rng = random.Random(seed)
        victims = rng.sample(pool, count)
        deaths = sorted(
            (rng.randrange(first_epoch, epochs), v) for v in victims
        )
        return cls([ChurnEvent(epoch, ChurnKind.DEATH, node)
                    for epoch, node in deaths])

    @classmethod
    def poisson(cls, topology: Topology, epochs: int,
                death_rate: float = 0.05, birth_rate: float = 0.02,
                seed: int = 0, first_epoch: int = 1,
                group_for: Callable[[int], Hashable] | None = None,
                min_population: int | None = None) -> "ChurnSchedule":
        """Draw deaths and births as independent Poisson processes.

        ``death_rate`` / ``birth_rate`` are expected events per epoch
        for the whole fleet. Victims are sampled without replacement
        from the current (scheduled) population, never the sink, and
        never below ``min_population`` survivors (default: half the
        initial fleet, at least two). Newborns get fresh ids above the
        highest ever used and are dropped next to a surviving anchor
        node — within ~70 % of the radio range, so they can hear the
        deployment — inheriting the anchor's cluster via ``group_for``.
        """
        if epochs <= first_epoch:
            raise ConfigurationError("no epoch available for churn")
        rng = random.Random(seed)
        alive = {i for i in topology.node_ids if i != topology.sink_id}
        if min_population is None:
            min_population = max(2, len(alive) // 2)
        next_id = max(topology.node_ids) + 1
        positions = dict(topology.positions)
        events: list[ChurnEvent] = []
        for epoch in range(first_epoch, epochs):
            for _ in range(_poisson(rng, birth_rate)):
                anchor = rng.choice(sorted(alive) or
                                    [topology.sink_id])
                ax, ay = positions[anchor]
                angle = rng.uniform(0.0, 2.0 * math.pi)
                radius = rng.uniform(0.2, 0.7) * topology.radio_range
                position = (ax + radius * math.cos(angle),
                            ay + radius * math.sin(angle))
                group = group_for(anchor) if group_for else None
                events.append(ChurnEvent(epoch, ChurnKind.BIRTH, next_id,
                                         position=position, group=group))
                positions[next_id] = position
                alive.add(next_id)
                next_id += 1
            deaths = min(_poisson(rng, death_rate),
                         max(0, len(alive) - min_population))
            for victim in rng.sample(sorted(alive), deaths):
                events.append(ChurnEvent(epoch, ChurnKind.DEATH, victim))
                alive.discard(victim)
        return cls(sorted(events, key=lambda e: (e.epoch, e.kind.value,
                                                 e.node_id)))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def deaths(self) -> tuple[ChurnEvent, ...]:
        """Every scheduled death, in script order."""
        return tuple(e for e in self.events if e.kind is ChurnKind.DEATH)

    @property
    def births(self) -> tuple[ChurnEvent, ...]:
        """Every scheduled birth, in script order."""
        return tuple(e for e in self.events if e.kind is ChurnKind.BIRTH)

    @property
    def last_epoch(self) -> int:
        """Epoch of the final scheduled event (-1 when empty)."""
        return max((e.epoch for e in self.events), default=-1)

    def due(self, epoch: int) -> tuple[ChurnEvent, ...]:
        """Events scheduled for exactly this epoch (indexed lookup)."""
        # Value-based fingerprint: ChurnEvent is frozen, so equality is
        # by content and immune to id() reuse after a pop+append; the
        # unmutated common case still compares pointer-fast (tuple
        # equality short-circuits on element identity).
        fingerprint = tuple(self.events)
        if self._by_epoch is None or self._index_fingerprint != fingerprint:
            index: dict[int, list[ChurnEvent]] = {}
            for event in self.events:
                index.setdefault(event.epoch, []).append(event)
            self._by_epoch = {e: tuple(batch) for e, batch in index.items()}
            self._index_fingerprint = fingerprint
        return self._by_epoch.get(epoch, ())

    # ------------------------------------------------------------------
    # Application
    # ------------------------------------------------------------------

    def apply(self, network: Network, epoch: int,
              board_for: "Callable[[int], object] | None" = None,
              ) -> tuple[ChurnEvent, ...]:
        """Apply every event due at ``epoch``; returns those applied.

        Deaths batch — the tree repairs once after the last victim, not
        per victim. Births attach one by one (each needs the repaired
        tree to pick a parent); a birth whose whole neighbourhood died
        is skipped, exactly as a mote scattered out of range stays
        silent. ``board_for(node_id)`` supplies the newborn's sensor
        board; without one the node joins but cannot be sampled.
        """
        due = self.due(epoch)
        born_now = {e.node_id for e in due if e.kind is ChurnKind.BIRTH}
        victims = [e for e in due if e.kind is ChurnKind.DEATH
                   and e.node_id not in born_now
                   and e.node_id in network.nodes
                   and network.nodes[e.node_id].alive]
        applied: list[ChurnEvent] = []
        for event in victims[:-1]:
            network.kill_node(event.node_id, repair=False)
            applied.append(event)
        if victims:
            network.kill_node(victims[-1].node_id, repair=True)
            applied.append(victims[-1])
        for event in due:
            if event.kind is not ChurnKind.BIRTH:
                continue
            board = board_for(event.node_id) if board_for else None
            try:
                network.join_node(event.node_id, event.position,
                                  board=board, group=event.group)
            except TopologyError:
                continue
            applied.append(event)
        # A mote born and lost in the same epoch (the generator allows
        # it) still dies: its death applies after the join, not never.
        for event in due:
            if (event.kind is ChurnKind.DEATH
                    and event.node_id in born_now
                    and event.node_id in network.nodes
                    and network.nodes[event.node_id].alive):
                network.kill_node(event.node_id)
                applied.append(event)
        return tuple(applied)
