"""TinyOS wire-format accounting.

The CC1000 stack on MICA2 ships ``TOS_Msg`` frames: a fixed header plus
at most 29 bytes of application payload. A logical message larger than
the MTU is fragmented into multiple packets, each paying the header
again. Modelling this matters: the savings KSpot's System Panel reports
are *packet* savings, and a view update that shrinks from 12 tuples to
3 crosses packet boundaries.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache

from ..errors import ValidationError

#: Application payload per TOS_Msg frame (TinyOS default).
PAYLOAD_MTU = 29

#: Frame overhead: destination address (2), AM type (1), group (1),
#: length (1) and CRC (2) — 7 bytes per packet on the air.
HEADER_BYTES = 7


@dataclass(frozen=True)
class PacketCount:
    """Cost of shipping one logical message over one hop.

    Attributes:
        packets: TOS_Msg frames required.
        payload_bytes: application bytes carried.
        air_bytes: total bytes on the air (payload + per-packet headers).
    """

    packets: int
    payload_bytes: int
    air_bytes: int


def fragment(payload_bytes: int, mtu: int = PAYLOAD_MTU,
             header_bytes: int = HEADER_BYTES) -> PacketCount:
    """Fragment a logical payload into TOS_Msg frames.

    A zero-byte logical message (a pure signal, e.g. an empty view
    update standing in for "no change") still costs one frame.

    >>> fragment(29).packets
    1
    >>> fragment(30).packets
    2
    """
    if payload_bytes < 0:
        raise ValidationError("payload size cannot be negative")
    if mtu <= 0 or header_bytes < 0:
        raise ValidationError("bad MTU/header configuration")
    packets = max(1, math.ceil(payload_bytes / mtu))
    return PacketCount(
        packets=packets,
        payload_bytes=payload_bytes,
        air_bytes=payload_bytes + packets * header_bytes,
    )


@lru_cache(maxsize=8192)
def fragment_cached(payload_bytes: int, mtu: int = PAYLOAD_MTU,
                    header_bytes: int = HEADER_BYTES) -> PacketCount:
    """Memoized :func:`fragment` — the epoch loop's cost model.

    ``fragment`` is a pure function of its integer arguments and
    :class:`PacketCount` is frozen, so sharing one instance per
    distinct payload size is observationally identical to fragmenting
    afresh — but the converge-cast hot path ships the same few dozen
    payload sizes millions of times, making the allocation the single
    most frequent one of the epoch loop. The simulator consults this
    memo when :func:`repro.network.hotpath.enabled` and re-derives via
    :func:`fragment` on the reference path.
    """
    return fragment(payload_bytes, mtu, header_bytes)
