"""The sensor-board model a node carries.

A :class:`SensorBoard` binds MTS310 modalities to field generators and
serves quantized samples, charging the sampling energy to a caller-
provided ledger. This is the software stand-in for the physical MTS310
expansion board of the demo (§IV-A).
"""

from __future__ import annotations

from typing import Callable, Mapping

from ..errors import ConfigurationError, ValidationError
from .generators import FieldGenerator
from .modalities import Modality, get_modality

#: Callback the board uses to charge sampling energy: (joules) -> None.
EnergySink = Callable[[float], None]


class SensorBoard:
    """Per-node sensing hardware: attribute name → field generator."""

    def __init__(self, fields: Mapping[str, FieldGenerator],
                 quantize: bool = True):
        """Args:
            fields: Channel name → generator producing its readings.
            quantize: Snap readings to the ADC grid (the physical
                behaviour). Pinned textbook scenarios disable it so
                hand-picked values round-trip exactly.
        """
        if not fields:
            raise ConfigurationError("a sensor board needs at least one channel")
        self._quantize = quantize
        self._fields: dict[str, FieldGenerator] = {}
        self._modalities: dict[str, Modality] = {}
        for name, generator in fields.items():
            self._fields[name] = generator
            self._modalities[name] = get_modality(name)

    @property
    def attributes(self) -> tuple[str, ...]:
        """The channels this board can sample, sorted by name."""
        return tuple(sorted(self._fields))

    def modality(self, attribute: str) -> Modality:
        """The modality metadata for a channel on this board."""
        try:
            return self._modalities[attribute]
        except KeyError:
            raise ValidationError(
                f"board has no {attribute!r} channel; available: "
                f"{', '.join(self.attributes)}"
            ) from None

    def channel(self, attribute: str) -> tuple[FieldGenerator, Modality, bool]:
        """The (field, modality, quantize) triple behind a channel.

        The columnar kernel groups nodes by this triple so one
        :meth:`FieldGenerator.batch_values` call plus one vectorized
        quantize/clamp serves every node sharing the same physical
        channel (:meth:`repro.network.simulator.Network.read_many`).
        """
        modality = self.modality(attribute)
        return self._fields[attribute], modality, self._quantize

    def sample(self, attribute: str, node_id: int, epoch: int,
               energy_sink: EnergySink | None = None) -> float:
        """Acquire one quantized reading, charging sampling energy.

        Args:
            attribute: Channel to sample.
            node_id: Identity of the sampling node (fields are node-aware).
            epoch: Current epoch number.
            energy_sink: Optional ledger callback charged with the
                modality's sampling cost.
        """
        modality = self.modality(attribute)
        if energy_sink is not None:
            energy_sink(modality.sample_cost_joules)
        if self._quantize:
            return self._fields[attribute].bounded(modality, node_id, epoch)
        return modality.clamp(self._fields[attribute].value(node_id, epoch))

    def sample_all(self, node_id: int, epoch: int,
                   energy_sink: EnergySink | None = None) -> dict[str, float]:
        """Sample every channel on the board at once."""
        return {
            attribute: self.sample(attribute, node_id, epoch, energy_sink)
            for attribute in self.attributes
        }
