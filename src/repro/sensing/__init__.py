"""Sensing substrate: MTS310 modalities, synthetic field generators, traces.

The demo hardware attaches an MTS310 multi-sensor board to each MICA2
mote. This package models that board (:mod:`repro.sensing.modalities`,
:mod:`repro.sensing.board`) and, because no live conference sound field
is available, provides deterministic synthetic field generators
(:mod:`repro.sensing.generators`) plus trace record/replay
(:mod:`repro.sensing.traces`).
"""

from .board import SensorBoard
from .modalities import MODALITIES, Modality, get_modality
from .generators import (
    ConstantField,
    DiurnalField,
    FieldGenerator,
    GaussianNoiseField,
    RandomWalkField,
    RoomField,
    TableField,
    UniformRandomField,
    ZipfEventField,
)
from .traces import Trace, TraceRecorder, replay

__all__ = [
    "SensorBoard",
    "MODALITIES",
    "Modality",
    "get_modality",
    "FieldGenerator",
    "ConstantField",
    "UniformRandomField",
    "GaussianNoiseField",
    "RandomWalkField",
    "DiurnalField",
    "ZipfEventField",
    "RoomField",
    "TableField",
    "Trace",
    "TraceRecorder",
    "replay",
]
