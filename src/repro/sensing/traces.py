"""Trace recording, replay, and CSV round-tripping.

A *trace* is a dense epoch × node matrix of readings for one attribute.
Traces make experiments repeatable across algorithms: the same recorded
readings can be fed to MINT, TAG and the centralized oracle so their
answers are comparable tuple-for-tuple.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping

from ..errors import ConfigurationError
from .generators import FieldGenerator, TableField


@dataclass
class Trace:
    """A recorded run: ``rows[epoch][node_id] = value``."""

    attribute: str
    rows: list[dict[int, float]] = field(default_factory=list)

    @property
    def epochs(self) -> int:
        """Number of recorded epochs."""
        return len(self.rows)

    @property
    def node_ids(self) -> tuple[int, ...]:
        """Sorted union of node ids appearing anywhere in the trace."""
        ids: set[int] = set()
        for row in self.rows:
            ids.update(row)
        return tuple(sorted(ids))

    def value(self, node_id: int, epoch: int) -> float:
        """The recorded reading; raises if the cell was never recorded."""
        try:
            return self.rows[epoch][node_id]
        except (IndexError, KeyError):
            raise ConfigurationError(
                f"trace has no reading for node {node_id} at epoch {epoch}"
            ) from None

    def column(self, node_id: int) -> list[float]:
        """One node's full time series (missing cells are skipped)."""
        return [row[node_id] for row in self.rows if node_id in row]

    def to_csv(self) -> str:
        """Serialize as CSV with an ``epoch`` column plus one per node."""
        nodes = self.node_ids
        out = io.StringIO()
        writer = csv.writer(out)
        writer.writerow(["epoch", *[f"node_{n}" for n in nodes]])
        for epoch, row in enumerate(self.rows):
            writer.writerow([epoch, *[row.get(n, "") for n in nodes]])
        return out.getvalue()

    @classmethod
    def from_csv(cls, text: str, attribute: str = "value") -> "Trace":
        """Parse a trace previously produced by :meth:`to_csv`."""
        reader = csv.reader(io.StringIO(text))
        try:
            header = next(reader)
        except StopIteration:
            raise ConfigurationError("empty trace CSV") from None
        if not header or header[0] != "epoch":
            raise ConfigurationError("trace CSV must start with an 'epoch' column")
        node_ids = []
        for name in header[1:]:
            if not name.startswith("node_"):
                raise ConfigurationError(f"bad trace column name: {name!r}")
            node_ids.append(int(name[len("node_"):]))
        rows: list[dict[int, float]] = []
        for record in reader:
            if not record:
                continue
            row = {
                node_id: float(cell)
                for node_id, cell in zip(node_ids, record[1:])
                if cell != ""
            }
            rows.append(row)
        return cls(attribute=attribute, rows=rows)

    def as_field(self, cycle: bool = False) -> TableField:
        """View this trace as a :class:`FieldGenerator` for replay."""
        return TableField(self.rows, cycle=cycle)

    def __iter__(self) -> Iterator[dict[int, float]]:
        return iter(self.rows)


class TraceRecorder:
    """Samples a field generator into a :class:`Trace`.

    >>> from repro.sensing.generators import ConstantField
    >>> rec = TraceRecorder(ConstantField({1: 5.0}), node_ids=[1], attribute="sound")
    >>> rec.record(epochs=3).rows
    [{1: 5.0}, {1: 5.0}, {1: 5.0}]
    """

    def __init__(self, generator: FieldGenerator, node_ids: Iterable[int],
                 attribute: str = "value"):
        self._generator = generator
        self._node_ids = tuple(node_ids)
        if not self._node_ids:
            raise ConfigurationError("TraceRecorder needs at least one node id")
        self._attribute = attribute

    def record(self, epochs: int, start_epoch: int = 0) -> Trace:
        """Record ``epochs`` consecutive epochs starting at ``start_epoch``."""
        if epochs <= 0:
            raise ConfigurationError("epochs must be positive")
        rows = [
            {n: self._generator.value(n, start_epoch + t) for n in self._node_ids}
            for t in range(epochs)
        ]
        return Trace(attribute=self._attribute, rows=rows)


def replay(trace: Trace | Mapping[int, Mapping[int, float]],
           cycle: bool = False) -> FieldGenerator:
    """Build a generator replaying ``trace`` (a Trace or epoch→node→value map)."""
    if isinstance(trace, Trace):
        return trace.as_field(cycle=cycle)
    epochs = sorted(trace)
    if epochs != list(range(len(epochs))):
        raise ConfigurationError("replay mapping must use contiguous epochs from 0")
    return TableField([dict(trace[e]) for e in epochs], cycle=cycle)
