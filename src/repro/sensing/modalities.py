"""Catalogue of MTS310 sensing modalities.

The MTS310 sensor board (§IV-A of the paper) carries a 2-axis
accelerometer, a 2-axis magnetometer, light, temperature, acoustic and
sounder components. Each modality here records the physical value range
the simulator generates within, the ADC resolution of the real board,
and the sampling cost used by the energy model.

The value ranges double as the *attribute bounds* ``[lo, hi]`` that the
MINT bounding framework relies on: a top-k certification needs to know
the smallest and largest value a reading can take (e.g. sound level as a
percentage lies in [0, 100]).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ValidationError


@dataclass(frozen=True)
class Modality:
    """One sensing channel of the MTS310 board.

    Attributes:
        name: Attribute name used in queries (``SELECT ... AVERAGE(sound)``).
        unit: Human-readable physical unit.
        lo: Smallest value the channel can report.
        hi: Largest value the channel can report.
        adc_bits: Resolution of the mote ADC for this channel.
        sample_cost_joules: Energy to acquire one sample (sensor warm-up
            plus ADC conversion), used by the node energy ledger.
    """

    name: str
    unit: str
    lo: float
    hi: float
    adc_bits: int = 10
    sample_cost_joules: float = 90e-6

    def __post_init__(self) -> None:
        if self.lo >= self.hi:
            raise ValidationError(
                f"modality {self.name!r}: lo ({self.lo}) must be < hi ({self.hi})"
            )
        if self.adc_bits <= 0:
            raise ValidationError("adc_bits must be positive")
        if self.sample_cost_joules < 0:
            raise ValidationError("sample cost must be non-negative")

    @property
    def span(self) -> float:
        """Width of the value range."""
        return self.hi - self.lo

    def clamp(self, value: float) -> float:
        """Clip ``value`` into the channel's physical range."""
        return min(self.hi, max(self.lo, value))

    def quantize(self, value: float) -> float:
        """Snap ``value`` to the nearest ADC step, as the real board would."""
        steps = (1 << self.adc_bits) - 1
        clamped = self.clamp(value)
        index = round((clamped - self.lo) / self.span * steps)
        return self.lo + index * self.span / steps


#: The MTS310 channels, in the order the datasheet lists them. Sound is
#: expressed as a percentage to match the paper's running example.
MODALITIES: dict[str, Modality] = {
    m.name: m
    for m in (
        Modality("sound", "% of full scale", 0.0, 100.0, adc_bits=10,
                 sample_cost_joules=90e-6),
        Modality("temperature", "degrees Celsius", -10.0, 60.0, adc_bits=10,
                 sample_cost_joules=90e-6),
        Modality("light", "lux (normalised)", 0.0, 1000.0, adc_bits=10,
                 sample_cost_joules=90e-6),
        Modality("accel_x", "g", -2.0, 2.0, adc_bits=10,
                 sample_cost_joules=120e-6),
        Modality("accel_y", "g", -2.0, 2.0, adc_bits=10,
                 sample_cost_joules=120e-6),
        Modality("mag_x", "mgauss", -4000.0, 4000.0, adc_bits=10,
                 sample_cost_joules=150e-6),
        Modality("mag_y", "mgauss", -4000.0, 4000.0, adc_bits=10,
                 sample_cost_joules=150e-6),
        Modality("voltage", "volts", 0.0, 3.3, adc_bits=10,
                 sample_cost_joules=30e-6),
    )
}


def get_modality(name: str) -> Modality:
    """Look up a modality by attribute name.

    Raises:
        ValidationError: if the attribute is not an MTS310 channel.
    """
    try:
        return MODALITIES[name]
    except KeyError:
        known = ", ".join(sorted(MODALITIES))
        raise ValidationError(
            f"unknown sensed attribute {name!r}; MTS310 provides: {known}"
        ) from None
