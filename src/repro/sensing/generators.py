"""Deterministic synthetic field generators.

The paper's demo senses a live conference sound field. That field is not
available offline, so experiments run on synthetic fields whose skew and
spatial correlation are controllable — the properties that drive top-k
pruning efficacy. All generators are seeded and therefore reproducible.

A *field generator* answers one question: what does node ``node_id``
read at epoch ``epoch``? Generators are composable (see
:class:`RoomField`, which layers per-room baselines, room random walks
and per-node noise, reproducing the "rooms with active discussions"
scenario of the paper's Figure 1).
"""

from __future__ import annotations

import math
import random
from abc import ABC, abstractmethod
from typing import Mapping, Sequence

from ..errors import ConfigurationError
from .modalities import Modality


def _rng_for(seed: int, node_id: int, epoch: int) -> random.Random:
    """A private RNG for one (node, epoch) cell.

    Seeding per cell makes every reading independent of evaluation
    order: the simulator may sample nodes in any order (or resample
    after a failure) and still observe identical values.
    """
    return random.Random((seed * 1_000_003 + node_id) * 1_000_033 + epoch)


class FieldGenerator(ABC):
    """Produces the physical value sensed by a node at an epoch."""

    @abstractmethod
    def value(self, node_id: int, epoch: int) -> float:
        """The raw (unquantized) reading of ``node_id`` at ``epoch``."""

    def bounded(self, modality: Modality, node_id: int, epoch: int) -> float:
        """The reading clamped and quantized to a modality's ADC."""
        return modality.quantize(self.value(node_id, epoch))


class ConstantField(FieldGenerator):
    """Every node reads a fixed per-node constant.

    Used for pinned scenarios such as the paper's Figure 1, where the
    nine sensors read exactly {40, 74, 75, 42, 75, 75, 78, 75, 39}.
    """

    def __init__(self, values: Mapping[int, float], default: float = 0.0):
        self._values = dict(values)
        self._default = default

    def value(self, node_id: int, epoch: int) -> float:
        return self._values.get(node_id, self._default)


class UniformRandomField(FieldGenerator):
    """Independent uniform readings in ``[lo, hi]``."""

    def __init__(self, lo: float, hi: float, seed: int = 0):
        if lo > hi:
            raise ConfigurationError("UniformRandomField: lo must be <= hi")
        self._lo = lo
        self._hi = hi
        self._seed = seed

    def value(self, node_id: int, epoch: int) -> float:
        return _rng_for(self._seed, node_id, epoch).uniform(self._lo, self._hi)


class GaussianNoiseField(FieldGenerator):
    """A base field plus independent Gaussian noise per reading."""

    def __init__(self, base: FieldGenerator, sigma: float, seed: int = 0):
        if sigma < 0:
            raise ConfigurationError("sigma must be non-negative")
        self._base = base
        self._sigma = sigma
        self._seed = seed

    def value(self, node_id: int, epoch: int) -> float:
        noise = _rng_for(self._seed ^ 0x5EED, node_id, epoch).gauss(0.0, self._sigma)
        return self._base.value(node_id, epoch) + noise


class RandomWalkField(FieldGenerator):
    """Per-node bounded random walk — temporally correlated readings.

    Temporal correlation is what makes MINT's cached views pay off: a
    view whose tuples barely move needs few update messages.
    """

    def __init__(self, start: float, step: float, lo: float, hi: float,
                 seed: int = 0):
        if lo > hi:
            raise ConfigurationError("RandomWalkField: lo must be <= hi")
        self._start = min(hi, max(lo, start))
        self._step = step
        self._lo = lo
        self._hi = hi
        self._seed = seed
        self._cache: dict[int, list[float]] = {}

    def value(self, node_id: int, epoch: int) -> float:
        walk = self._cache.setdefault(node_id, [self._start])
        while len(walk) <= epoch:
            t = len(walk)
            rng = _rng_for(self._seed ^ 0xA1C, node_id, t)
            nxt = walk[-1] + rng.uniform(-self._step, self._step)
            walk.append(min(self._hi, max(self._lo, nxt)))
        return walk[epoch]


class DiurnalField(FieldGenerator):
    """Sinusoidal day/night pattern plus per-node phase offset.

    Models temperature-style signals: ``mean + amplitude *
    sin(2π (epoch/period + phase(node)))``.
    """

    def __init__(self, mean: float, amplitude: float, period_epochs: int,
                 seed: int = 0, common_phase: bool = False):
        """``common_phase=True`` drives every node with the *same*
        oscillation (one shared weather signal) — the workload where a
        time instant hot at one node is hot at all of them, which is
        what historic-vertical queries rank."""
        if period_epochs <= 0:
            raise ConfigurationError("period_epochs must be positive")
        self._mean = mean
        self._amplitude = amplitude
        self._period = period_epochs
        self._seed = seed
        self._common_phase = common_phase

    def value(self, node_id: int, epoch: int) -> float:
        phase_key = 0 if self._common_phase else node_id
        phase = random.Random(self._seed * 7919 + phase_key).random()
        angle = 2.0 * math.pi * (epoch / self._period + phase)
        return self._mean + self._amplitude * math.sin(angle)


class ZipfEventField(FieldGenerator):
    """Zipf-skewed event magnitudes over groups of nodes.

    With skew ``s = 0`` every group is equally loud on average; as ``s``
    grows a few groups dominate, which is the regime where top-k pruning
    saves the most traffic. Group ``r`` (by popularity rank) has expected
    magnitude proportional to ``1 / (r+1)^s``; per-epoch jitter is
    uniform within ±``jitter``.
    """

    def __init__(self, group_of: Mapping[int, int], lo: float, hi: float,
                 skew: float, jitter: float = 5.0, seed: int = 0):
        if lo > hi:
            raise ConfigurationError("ZipfEventField: lo must be <= hi")
        if skew < 0:
            raise ConfigurationError("skew must be non-negative")
        self._group_of = dict(group_of)
        self._lo = lo
        self._hi = hi
        self._skew = skew
        self._jitter = jitter
        self._seed = seed
        groups = sorted(set(self._group_of.values()))
        ranks = list(range(len(groups)))
        random.Random(seed).shuffle(ranks)
        weights = [1.0 / (r + 1) ** skew for r in ranks]
        top = max(weights) if weights else 1.0
        self._level = {
            g: lo + (hi - lo) * w / top for g, w in zip(groups, weights)
        }

    def group_level(self, group: int) -> float:
        """The expected magnitude of a group (before jitter)."""
        return self._level[group]

    def enroll(self, node_id: int, group: int) -> None:
        """Admit a newborn node into an existing group's event field
        (churn births); unknown groups are a configuration error."""
        if group not in self._level:
            raise ConfigurationError(f"unknown group {group!r}")
        self._group_of[node_id] = group

    def value(self, node_id: int, epoch: int) -> float:
        group = self._group_of.get(node_id)
        if group is None:
            return self._lo
        base = self._level[group]
        jit = _rng_for(self._seed ^ 0x21F, node_id, epoch).uniform(
            -self._jitter, self._jitter)
        return min(self._hi, max(self._lo, base + jit))


class RoomField(FieldGenerator):
    """The conference-room sound model.

    Each room has a slowly-wandering activity level (a random walk —
    discussions heat up and cool down); every sensor in the room reads
    the room level plus small per-sensor Gaussian noise. This is the
    synthetic stand-in for the paper's "rooms with the most active
    discussions" demo scenario.
    """

    def __init__(self, room_of: Mapping[int, str | int], lo: float = 0.0,
                 hi: float = 100.0, room_step: float = 4.0,
                 sensor_sigma: float = 1.5, seed: int = 0):
        self._room_of = dict(room_of)
        self._sigma = sensor_sigma
        self._lo = lo
        self._hi = hi
        self._seed = seed
        rooms = sorted(set(self._room_of.values()), key=str)
        rng = random.Random(seed)
        self._room_walks = {
            room: RandomWalkField(
                start=rng.uniform(lo + 0.2 * (hi - lo), hi - 0.2 * (hi - lo)),
                step=room_step, lo=lo, hi=hi,
                seed=seed * 131 + index,
            )
            for index, room in enumerate(rooms)
        }

    def room_level(self, room: str | int, epoch: int) -> float:
        """Ground-truth activity level of a room at an epoch."""
        return self._room_walks[room].value(0, epoch)

    def enroll(self, node_id: int, room: str | int) -> None:
        """Admit a newborn node into an existing room (churn births):
        it reads that room's activity level plus its own noise, like
        any mote deployed there from the start. Unknown rooms are a
        configuration error (room walks are fixed at construction)."""
        if room not in self._room_walks:
            raise ConfigurationError(f"unknown room {room!r}")
        self._room_of[node_id] = room

    def value(self, node_id: int, epoch: int) -> float:
        room = self._room_of.get(node_id)
        if room is None:
            return self._lo
        level = self.room_level(room, epoch)
        noise = _rng_for(self._seed ^ 0xB00, node_id, epoch).gauss(0.0, self._sigma)
        return min(self._hi, max(self._lo, level + noise))


class TableField(FieldGenerator):
    """Readings replayed from an explicit (epoch → node → value) table.

    The inverse of :class:`repro.sensing.traces.TraceRecorder`; also the
    workhorse for historic-query experiments that need a fixed dense
    matrix of history.
    """

    def __init__(self, table: Sequence[Mapping[int, float]],
                 default: float = 0.0, cycle: bool = False):
        if not table:
            raise ConfigurationError("TableField requires at least one epoch row")
        self._table = [dict(row) for row in table]
        self._default = default
        self._cycle = cycle

    def __len__(self) -> int:
        return len(self._table)

    def value(self, node_id: int, epoch: int) -> float:
        if epoch >= len(self._table):
            if not self._cycle:
                raise ConfigurationError(
                    f"TableField holds {len(self._table)} epochs; "
                    f"epoch {epoch} requested (pass cycle=True to wrap)"
                )
            epoch %= len(self._table)
        return self._table[epoch].get(node_id, self._default)
