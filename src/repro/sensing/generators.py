"""Deterministic synthetic field generators.

The paper's demo senses a live conference sound field. That field is not
available offline, so experiments run on synthetic fields whose skew and
spatial correlation are controllable — the properties that drive top-k
pruning efficacy. All generators are seeded and therefore reproducible.

A *field generator* answers one question: what does node ``node_id``
read at epoch ``epoch``? Generators are composable (see
:class:`RoomField`, which layers per-room baselines, room random walks
and per-node noise, reproducing the "rooms with active discussions"
scenario of the paper's Figure 1).
"""

from __future__ import annotations

import math
import random
from abc import ABC, abstractmethod
from typing import Mapping, Sequence

from ..errors import ConfigurationError
from .modalities import Modality


def _rng_for(seed: int, node_id: int, epoch: int) -> random.Random:
    """A private RNG for one (node, epoch) cell.

    Seeding per cell makes every reading independent of evaluation
    order: the simulator may sample nodes in any order (or resample
    after a failure) and still observe identical values.
    """
    return random.Random((seed * 1_000_003 + node_id) * 1_000_033 + epoch)


def _cell_seed(seed: int, node_id: int, epoch: int) -> int:
    """The integer seed :func:`_rng_for` hands ``random.Random``.

    The batch paths reuse one ``Random`` instance and re-seed it per
    cell — CPython's ``seed()`` resets the full Mersenne state *and*
    ``gauss_next``, so the draws are byte-identical to a fresh
    instance (proved by ``tests/test_generators.py``).
    """
    return (seed * 1_000_003 + node_id) * 1_000_033 + epoch


_MASK64 = (1 << 64) - 1


def _cell_hash01(seed: int, node_id: int, epoch: int) -> float:
    """A uniform float in ``[0, 1)`` from one splitmix64 finalizer.

    Counter-based: the cell coordinates *are* the state, so there is
    no sequential stream to advance and the whole column can be hashed
    at once (:func:`repro.network.columnar.hash01_column` is the
    vectorized twin; the equivalence suite pins the two together).
    Fields that need exactly one uniform per cell
    (:class:`ZipfEventField` jitter) use this instead of seeding a
    Mersenne Twister per cell — full-state MT seeding costs ~6µs per
    cell, ~300x the hash. Gaussian draws (:class:`RoomField` noise)
    keep the per-cell Mersenne stream: ``gauss`` consumes a variable
    number of uniforms plus ``log``/``sqrt``, which does not vectorize
    byte-identically.
    """
    h = ((seed * 1_000_003 + node_id) * 1_000_033 + epoch) & _MASK64
    h = ((h ^ (h >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    h = ((h ^ (h >> 27)) * 0x94D049BB133111EB) & _MASK64
    h ^= h >> 31
    return (h >> 11) * 2.0 ** -53


class FieldGenerator(ABC):
    """Produces the physical value sensed by a node at an epoch."""

    @abstractmethod
    def value(self, node_id: int, epoch: int) -> float:
        """The raw (unquantized) reading of ``node_id`` at ``epoch``."""

    def batch_values(self, node_ids: Sequence[int], epoch: int
                     ) -> list[float]:
        """One epoch's readings for a whole id column, in order.

        Byte-identical to ``[self.value(n, epoch) for n in node_ids]``
        — that *is* the default implementation. Fields whose per-cell
        work vectorizes (:class:`RoomField`, :class:`ZipfEventField`)
        override it for the columnar kernel
        (:mod:`repro.network.columnar`); the equivalence suite holds
        every override to the scalar loop.
        """
        return [self.value(node_id, epoch) for node_id in node_ids]

    def bounded(self, modality: Modality, node_id: int, epoch: int) -> float:
        """The reading clamped and quantized to a modality's ADC."""
        return modality.quantize(self.value(node_id, epoch))


class ClusterField(FieldGenerator):
    """A field whose nodes belong to named clusters (rooms, groups).

    Owns the one enrollment code path churn newborns take: PR 2 wired
    :class:`RoomField` and :class:`ZipfEventField` enrollment
    separately, and the duplicated guards drifted — this base class is
    the fix. Subclasses declare their cluster universe via
    :meth:`_known_clusters`; :meth:`enroll` validates against it and
    records the membership, so a newborn's very first sample draws
    from its inherited cluster under either field
    (``tests/test_generators.py`` holds both fields to that).
    """

    #: node id -> cluster key; subclasses populate at construction.
    _cluster_of: dict
    #: Bumped on every enrollment — batch paths key their per-id-tuple
    #: memos on it so a newborn invalidates them.
    _membership_version = 0

    def _known_clusters(self):
        """The clusters nodes may enroll into (membership container)."""
        raise NotImplementedError

    def cluster_of(self, node_id: int):
        """The cluster ``node_id`` senses within (None when unknown)."""
        return self._cluster_of.get(node_id)

    def enroll(self, node_id: int, cluster) -> None:
        """Admit a newborn node into an existing cluster (churn
        births): it senses that cluster's activity like any mote
        deployed there from the start. Unknown clusters are a
        configuration error (the cluster universe is fixed at
        construction)."""
        if cluster not in self._known_clusters():
            raise ConfigurationError(f"unknown cluster {cluster!r}")
        self._cluster_of[node_id] = cluster
        self._membership_version += 1


class ConstantField(FieldGenerator):
    """Every node reads a fixed per-node constant.

    Used for pinned scenarios such as the paper's Figure 1, where the
    nine sensors read exactly {40, 74, 75, 42, 75, 75, 78, 75, 39}.
    """

    def __init__(self, values: Mapping[int, float], default: float = 0.0):
        self._values = dict(values)
        self._default = default

    def value(self, node_id: int, epoch: int) -> float:
        return self._values.get(node_id, self._default)


class UniformRandomField(FieldGenerator):
    """Independent uniform readings in ``[lo, hi]``."""

    def __init__(self, lo: float, hi: float, seed: int = 0):
        if lo > hi:
            raise ConfigurationError("UniformRandomField: lo must be <= hi")
        self._lo = lo
        self._hi = hi
        self._seed = seed

    def value(self, node_id: int, epoch: int) -> float:
        return _rng_for(self._seed, node_id, epoch).uniform(self._lo, self._hi)


class GaussianNoiseField(FieldGenerator):
    """A base field plus independent Gaussian noise per reading."""

    def __init__(self, base: FieldGenerator, sigma: float, seed: int = 0):
        if sigma < 0:
            raise ConfigurationError("sigma must be non-negative")
        self._base = base
        self._sigma = sigma
        self._seed = seed

    def value(self, node_id: int, epoch: int) -> float:
        noise = _rng_for(self._seed ^ 0x5EED, node_id, epoch).gauss(0.0, self._sigma)
        return self._base.value(node_id, epoch) + noise


class RandomWalkField(FieldGenerator):
    """Per-node bounded random walk — temporally correlated readings.

    Temporal correlation is what makes MINT's cached views pay off: a
    view whose tuples barely move needs few update messages.
    """

    def __init__(self, start: float, step: float, lo: float, hi: float,
                 seed: int = 0):
        if lo > hi:
            raise ConfigurationError("RandomWalkField: lo must be <= hi")
        self._start = min(hi, max(lo, start))
        self._step = step
        self._lo = lo
        self._hi = hi
        self._seed = seed
        self._cache: dict[int, list[float]] = {}

    def value(self, node_id: int, epoch: int) -> float:
        walk = self._cache.setdefault(node_id, [self._start])
        while len(walk) <= epoch:
            t = len(walk)
            rng = _rng_for(self._seed ^ 0xA1C, node_id, t)
            nxt = walk[-1] + rng.uniform(-self._step, self._step)
            walk.append(min(self._hi, max(self._lo, nxt)))
        return walk[epoch]


class DiurnalField(FieldGenerator):
    """Sinusoidal day/night pattern plus per-node phase offset.

    Models temperature-style signals: ``mean + amplitude *
    sin(2π (epoch/period + phase(node)))``.
    """

    def __init__(self, mean: float, amplitude: float, period_epochs: int,
                 seed: int = 0, common_phase: bool = False):
        """``common_phase=True`` drives every node with the *same*
        oscillation (one shared weather signal) — the workload where a
        time instant hot at one node is hot at all of them, which is
        what historic-vertical queries rank."""
        if period_epochs <= 0:
            raise ConfigurationError("period_epochs must be positive")
        self._mean = mean
        self._amplitude = amplitude
        self._period = period_epochs
        self._seed = seed
        self._common_phase = common_phase

    def value(self, node_id: int, epoch: int) -> float:
        phase_key = 0 if self._common_phase else node_id
        phase = random.Random(self._seed * 7919 + phase_key).random()
        angle = 2.0 * math.pi * (epoch / self._period + phase)
        return self._mean + self._amplitude * math.sin(angle)


class ZipfEventField(ClusterField):
    """Zipf-skewed event magnitudes over groups of nodes.

    With skew ``s = 0`` every group is equally loud on average; as ``s``
    grows a few groups dominate, which is the regime where top-k pruning
    saves the most traffic. Group ``r`` (by popularity rank) has expected
    magnitude proportional to ``1 / (r+1)^s``; per-epoch jitter is
    uniform within ±``jitter``, drawn from the counter-based per-cell
    hash (:func:`_cell_hash01`) so the batch path vectorizes it exactly.
    """

    #: The per-cell jitter RNG stream offset (distinct per field kind).
    _STREAM = 0x21F

    def __init__(self, group_of: Mapping[int, int], lo: float, hi: float,
                 skew: float, jitter: float = 5.0, seed: int = 0,
                 margin: float = 0.0):
        """``margin`` insets the group levels from the field's clamp
        range: levels span ``[lo + margin, hi - margin]`` instead of
        ``[lo, hi]``. With ``margin >= jitter`` no reading ever
        saturates — without it the top group's level sits exactly at
        ``hi`` (and, under skew, the quietest groups within jitter of
        ``lo``), so a large fraction of readings clamp to the exact
        rail values, which collapses the value distribution at the
        rails. Default 0 keeps the historical saturating behavior.
        """
        if lo > hi:
            raise ConfigurationError("ZipfEventField: lo must be <= hi")
        if skew < 0:
            raise ConfigurationError("skew must be non-negative")
        if margin < 0 or 2 * margin > hi - lo:
            raise ConfigurationError(
                "margin must satisfy 0 <= 2 * margin <= hi - lo")
        self._cluster_of = dict(group_of)
        self._lo = lo
        self._hi = hi
        self._skew = skew
        self._jitter = jitter
        self._seed = seed
        groups = sorted(set(self._cluster_of.values()))
        ranks = list(range(len(groups)))
        random.Random(seed).shuffle(ranks)
        weights = [1.0 / (r + 1) ** skew for r in ranks]
        top = max(weights) if weights else 1.0
        span = (hi - lo) - 2 * margin
        self._level = {
            g: lo + margin + span * w / top for g, w in zip(groups, weights)
        }
        #: (ids_tuple, membership_version, base column, unknown rows)
        self._base_cache: tuple | None = None

    def _known_clusters(self):
        return self._level

    def group_level(self, group: int) -> float:
        """The expected magnitude of a group (before jitter)."""
        return self._level[group]

    def value(self, node_id: int, epoch: int) -> float:
        group = self._cluster_of.get(node_id)
        if group is None:
            return self._lo
        base = self._level[group]
        jitter = self._jitter
        jit = _cell_hash01(self._seed ^ self._STREAM, node_id, epoch) \
            * (jitter + jitter) - jitter
        return min(self._hi, max(self._lo, base + jit))

    def batch_values(self, node_ids: Sequence[int], epoch: int
                     ) -> list[float]:
        """Batch :meth:`value`: the jitter hash, clamp and level offset
        run as whole-column ops (byte-identical; see base class —
        elementwise ``*``/``-``/``+`` and ``minimum``/``maximum`` are
        IEEE-identical to the scalar expressions in :meth:`value`)."""
        # repro: allow[layer-dag] -- the column backend (numpy/array pair) lives beside its switch in network/columnar; lazy import so sensing stays importable below network
        from ..network import columnar

        np_ = columnar.numpy_module()
        if np_ is None:
            # Pure-python backend: the scalar loop *is* the batch.
            return [self.value(node_id, epoch) for node_id in node_ids]
        lo, hi, jitter = self._lo, self._hi, self._jitter
        cached = self._base_cache
        if (cached is not None and cached[0] is node_ids
                and cached[1] == self._membership_version):
            base, unknown = cached[2], cached[3]
        else:
            cluster_of = self._cluster_of
            level = self._level
            base_list: list[float] = []
            unknown_rows: list[int] = []
            for row, node_id in enumerate(node_ids):
                group = cluster_of.get(node_id)
                if group is None:
                    # Scalar semantics: an unenrolled node reads the
                    # floor, exactly (no jitter). Overwritten after
                    # the clamp.
                    unknown_rows.append(row)
                    base_list.append(lo)
                else:
                    base_list.append(level[group])
            base = np_.asarray(base_list)
            unknown = tuple(unknown_rows)
            # Memoized per id-tuple identity + enrollment version: the
            # level column is a pure function of membership, and the
            # alive tuple is rebuilt on any churn.
            self._base_cache = (node_ids, self._membership_version,
                                base, unknown)
        u = columnar.hash01_column(self._seed ^ self._STREAM,
                                   node_ids, epoch)
        values = np_.minimum(hi, np_.maximum(
            lo, base + (u * (jitter + jitter) - jitter)
        )).tolist()
        for row in unknown:
            values[row] = lo
        return values


class RoomField(ClusterField):
    """The conference-room sound model.

    Each room has a slowly-wandering activity level (a random walk —
    discussions heat up and cool down); every sensor in the room reads
    the room level plus small per-sensor Gaussian noise. This is the
    synthetic stand-in for the paper's "rooms with the most active
    discussions" demo scenario.

    Two noise derivations exist. The default keeps the historical
    per-cell Mersenne ``gauss`` stream (bytes pinned by every committed
    artifact). ``hash_gauss=True`` switches the noise to a hash-based
    Box–Muller pair: two counter-based uniforms per cell (the
    :func:`_cell_hash01` family, at two stream offsets), transformed
    scalar-wise so the scalar and batch paths stay byte-identical to
    *each other* while the column of uniforms vectorizes. This is a
    **deliberate RNG stream break** versus the default — same
    distribution, different bytes — so it is opt-in per scenario and
    documented in ``docs/ARCHITECTURE.md``'s RNG rules.
    """

    #: The per-cell noise RNG stream offset (distinct per field kind).
    _STREAM = 0xB00
    #: Second hash stream: the Box–Muller pair's other uniform
    #: (hash_gauss mode only).
    _STREAM2 = 0xB01

    def __init__(self, room_of: Mapping[int, str | int], lo: float = 0.0,
                 hi: float = 100.0, room_step: float = 4.0,
                 sensor_sigma: float = 1.5, seed: int = 0,
                 hash_gauss: bool = False):
        self._cluster_of = dict(room_of)
        self._sigma = sensor_sigma
        self._lo = lo
        self._hi = hi
        self._seed = seed
        self._hash_gauss = bool(hash_gauss)
        rooms = sorted(set(self._cluster_of.values()), key=str)
        rng = random.Random(seed)
        self._room_walks = {
            room: RandomWalkField(
                start=rng.uniform(lo + 0.2 * (hi - lo), hi - 0.2 * (hi - lo)),
                step=room_step, lo=lo, hi=hi,
                seed=seed * 131 + index,
            )
            for index, room in enumerate(rooms)
        }

    def _known_clusters(self):
        return self._room_walks

    def room_level(self, room: str | int, epoch: int) -> float:
        """Ground-truth activity level of a room at an epoch."""
        return self._room_walks[room].value(0, epoch)

    def _hash_noise(self, node_id: int, epoch: int) -> float:
        """One hash-gauss noise draw: Box–Muller over the cell's two
        counter-based uniforms. ``1 - u1`` keeps the log argument in
        ``(0, 1]`` (``u1`` never reaches 1.0)."""
        u1 = _cell_hash01(self._seed ^ self._STREAM, node_id, epoch)
        u2 = _cell_hash01(self._seed ^ self._STREAM2, node_id, epoch)
        return self._sigma * math.sqrt(-2.0 * math.log(1.0 - u1)) \
            * math.cos(2.0 * math.pi * u2)

    def value(self, node_id: int, epoch: int) -> float:
        room = self._cluster_of.get(node_id)
        if room is None:
            return self._lo
        level = self.room_level(room, epoch)
        if self._hash_gauss:
            noise = self._hash_noise(node_id, epoch)
        else:
            noise = _rng_for(self._seed ^ self._STREAM, node_id, epoch).gauss(
                0.0, self._sigma)
        return min(self._hi, max(self._lo, level + noise))

    def _batch_hash_gauss(self, node_ids: Sequence[int], epoch: int
                          ) -> list[float]:
        """The hash-gauss batch: both uniform columns hashed whole
        (:func:`repro.network.columnar.hash01_column`, bit-identical to
        the scalar hash by construction); the Box–Muller transform
        stays scalar because numpy's ``log``/``cos`` are not
        bit-identical to libm's."""
        # repro: allow[layer-dag] -- column backend lives beside its switch in network/columnar, same contract as batch_values
        from ..network import columnar

        cluster_of = self._cluster_of
        lo = self._lo
        sigma = self._sigma
        levels: dict = {}
        u1 = columnar.hash01_column(self._seed ^ self._STREAM,
                                    node_ids, epoch)
        u2 = columnar.hash01_column(self._seed ^ self._STREAM2,
                                    node_ids, epoch)
        log, cos, sqrt = math.log, math.cos, math.sqrt
        two_pi = 2.0 * math.pi
        raw: list[float] = []
        for row, node_id in enumerate(node_ids):
            room = cluster_of.get(node_id)
            if room is None:
                raw.append(lo)
                continue
            level = levels.get(room)
            if level is None:
                level = levels[room] = self.room_level(room, epoch)
            raw.append(level + sigma * sqrt(-2.0 * log(1.0 - u1[row]))
                       * cos(two_pi * u2[row]))
        return columnar.clamp_values(raw, lo, self._hi)

    def batch_values(self, node_ids: Sequence[int], epoch: int
                     ) -> list[float]:
        """Batch :meth:`value`: room levels resolved once per room,
        one reused per-cell RNG for the sensor noise, clamp vectorized
        over the column (byte-identical; see base class). In
        ``hash_gauss`` mode the uniform columns are hashed whole
        instead (see :meth:`_batch_hash_gauss`)."""
        if self._hash_gauss:
            return self._batch_hash_gauss(node_ids, epoch)
        # repro: allow[layer-dag] -- column backend lives beside its switch in network/columnar, same contract as ZipfEventField.batch_values
        from ..network import columnar

        cluster_of = self._cluster_of
        seed = self._seed ^ self._STREAM
        sigma = self._sigma
        levels: dict = {}
        rng = random.Random()
        raw: list[float] = []
        for node_id in node_ids:
            room = cluster_of.get(node_id)
            if room is None:
                raw.append(self._lo)
                continue
            level = levels.get(room)
            if level is None:
                level = levels[room] = self.room_level(room, epoch)
            rng.seed(_cell_seed(seed, node_id, epoch))
            raw.append(level + rng.gauss(0.0, sigma))
        return columnar.clamp_values(raw, self._lo, self._hi)


class TableField(FieldGenerator):
    """Readings replayed from an explicit (epoch → node → value) table.

    The inverse of :class:`repro.sensing.traces.TraceRecorder`; also the
    workhorse for historic-query experiments that need a fixed dense
    matrix of history.
    """

    def __init__(self, table: Sequence[Mapping[int, float]],
                 default: float = 0.0, cycle: bool = False):
        if not table:
            raise ConfigurationError("TableField requires at least one epoch row")
        self._table = [dict(row) for row in table]
        self._default = default
        self._cycle = cycle

    def __len__(self) -> int:
        return len(self._table)

    def value(self, node_id: int, epoch: int) -> float:
        if epoch >= len(self._table):
            if not self._cycle:
                raise ConfigurationError(
                    f"TableField holds {len(self._table)} epochs; "
                    f"epoch {epoch} requested (pass cycle=True to wrap)"
                )
            epoch %= len(self._table)
        return self._table[epoch].get(node_id, self._default)
