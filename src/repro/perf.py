"""``repro perf`` — the repo's performance harness.

Drives the standard multi-query workload (the e11 mix: four concurrent
MINT monitoring queries plus one historic TJA session) through the
layered :mod:`repro.api` facade at fleet sizes N ∈ {25, 100, 400,
1000}, measures wall-clock per epoch, epochs/sec, messages/sec and
resident memory, and writes a schema-versioned ``BENCH_perf.json`` —
the machine-readable perf trajectory every PR can be judged against.

Methodology (matching ``bench_e13_api_overhead``): each fleet size is
timed **best-of-R with interleaved repetitions**, so ambient drift (GC
pressure, CPU frequency excursions) lands on every configuration
equally; deterministic simulations have no other variance worth
averaging. With ``compare_reference=True`` every size also runs on the
unoptimized reference path (:mod:`repro.network.hotpath`), interleaved
hot/reference, yielding a machine-normalized speedup — the number the
CI regression gate watches, since absolute epochs/sec are incomparable
across runners.

Fleet layouts are near-square grids with exactly N sensors partitioned
into 16 rooms, built by :func:`fleet_scenario` (square sizes reproduce
``grid_rooms_scenario`` exactly).

With ``jobs > 1`` the ladder shards across worker processes via
:mod:`repro.parallel`: each (size, repeat) pair is one shard that runs
the hot path and — when comparing — the reference path back to back
*in the same worker*, so ambient contention cancels out of the
machine-normalized speedup exactly as interleaving does serially. A
final aggregate-throughput section then drives ``jobs`` independent
deployments simultaneously and prices the machine's horizontal
capacity (total epochs/sec across all workers).

Three microbench sections ride every ladder run: ``certifier``
(:func:`measure_certifier` — cold ``certify_top_k`` replay vs the
incremental :class:`~repro.core.delta.TopKView`), ``columnar``
(:func:`measure_columnar` — the structure-of-arrays sensing kernel of
:mod:`repro.network.columnar` vs the scalar hot path, equivalence
asserted on the measured workload before timing) and ``eventsim``
(:func:`measure_eventsim` — the discrete-event shipping core of
:mod:`repro.network.eventsim` vs the inline ship path, zero-delay
byte-identity asserted before timing, plus a partitioned per-subtree
throughput section that shards one deployment's replicas across
worker processes). All are gated by
``benchmarks/check_perf_regression.py`` against the committed
trajectory. The harness only *times* the switches it flips: the
hot-vs-oracle equivalence itself is owned by
``tests/test_hotpath_equivalence.py`` and
``tests/test_delta_equivalence.py``, with ``reference_path()`` /
``scalar_path()`` / ``inline_ship()`` restoring the unoptimized
semantics.
"""

from __future__ import annotations

import gc
import json
import math
import os
import platform
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Hashable, Sequence

from . import __version__
from .network import hotpath
from .network.simulator import Network
from .network.topology import Topology
from .scenarios import Scenario, preset_churn
from .sensing.board import SensorBoard
from .sensing.generators import RoomField

#: Version tag written into every BENCH_perf.json (bump on any
#: backwards-incompatible change to the payload layout).
#: /2: per-repeat timings, cpu_count + workers in the platform block,
#: the aggregate-throughput section, and the shard-error envelope.
#: /3: the certifier microbench section (cold certify_top_k replay vs
#: incremental TopKView over the recorded FILA certification stream).
#: /4: the columnar microbench section (structure-of-arrays sensing
#: kernel vs the scalar hot path on a Zipf-field FILA workload; see
#: :func:`measure_columnar`).
#: /5: the eventsim microbench section (the event-queue shipping core
#: vs the inline ship path on the same Zipf-field FILA workload, plus
#: the partitioned per-subtree throughput section; see
#: :func:`measure_eventsim`).
SCHEMA = "kspot-perf/5"

#: The e11 workload: four concurrent monitoring queries ranking rooms
#: by different aggregates plus one historic TJA pass.
WORKLOAD_QUERIES = (
    "SELECT TOP 2 roomid, AVG(sound) FROM sensors "
    "GROUP BY roomid EPOCH DURATION 1 min",
    "SELECT TOP 1 roomid, MAX(sound) FROM sensors "
    "GROUP BY roomid EPOCH DURATION 1 min",
    "SELECT TOP 3 roomid, SUM(sound) FROM sensors "
    "GROUP BY roomid EPOCH DURATION 1 min",
    "SELECT TOP 1 roomid, MIN(sound) FROM sensors "
    "GROUP BY roomid EPOCH DURATION 1 min",
    "SELECT TOP 3 epoch, AVG(sound) FROM sensors "
    "GROUP BY epoch WITH HISTORY 10 s EPOCH DURATION 1 s",
)

#: Default fleet sizes (the ISSUE's scaling ladder).
FLEET_SIZES = (25, 100, 400, 1000)

#: The --quick (CI smoke) ladder: everything the regression gate
#: inspects (N=100 *and* N=400) at interactive cost.
QUICK_SIZES = (25, 100, 400)

#: Measured epochs per fleet size: enough for a stable per-epoch
#: number, small enough that the full ladder stays interactive.
EPOCHS_FOR = {25: 60, 100: 40, 400: 16, 1000: 6}

#: Warm-up epochs excluded from timing (creation phase, cache priming).
WARMUP_EPOCHS = 2


def fleet_scenario(n: int, seed: int = 11,
                   rooms_per_axis: int = 4) -> Scenario:
    """A deployment of exactly ``n`` sensors on a near-square grid.

    Square ``n`` uses the canonical ``side × side`` layout of
    :func:`repro.scenarios.grid_rooms_scenario`; other sizes extend it
    to ``rows × cols`` (rows = ⌊√n⌋) with the trailing row truncated,
    so N = 1000 is a 31 × 33 grid missing 23 corner motes.
    """
    spacing = 10.0
    rows = max(1, math.isqrt(n))
    cols = math.ceil(n / rows)
    positions: dict[int, tuple[float, float]] = {0: (0.0, 0.0)}
    room_of: dict[int, Hashable] = {}
    row_block = max(1, rows // rooms_per_axis)
    col_block = max(1, cols // rooms_per_axis)
    node_id = 1
    for row in range(rows):
        for col in range(cols):
            if node_id > n:
                break
            positions[node_id] = (col * spacing, row * spacing)
            room = (min(row // row_block, rooms_per_axis - 1),
                    min(col // col_block, rooms_per_axis - 1))
            room_of[node_id] = f"R{room[0]}{room[1]}"
            node_id += 1
    topology = Topology(positions=positions, radio_range=spacing * 1.5)
    sound = RoomField(room_of, lo=0.0, hi=100.0, room_step=4.0,
                      sensor_sigma=1.5, seed=seed)
    boards = {i: SensorBoard({"sound": sound}) for i in room_of}
    network = Network(topology, boards=boards, group_of=room_of)
    return Scenario(network=network, group_of=room_of,
                    attribute="sound", field=sound)


def rss_bytes() -> int:
    """Current resident set size (no psutil; /proc on Linux, peak
    rusage elsewhere)."""
    try:
        with open("/proc/self/statm") as statm:
            pages = int(statm.read().split()[1])
        return pages * os.sysconf("SC_PAGESIZE")
    except (OSError, ValueError, IndexError):
        import resource

        rusage = resource.getrusage(resource.RUSAGE_SELF)
        scale = 1 if sys.platform == "darwin" else 1024
        return rusage.ru_maxrss * scale


@dataclass(frozen=True)
class PathTiming:
    """One driving mode's best-of-R timing at one fleet size.

    ``repeat_seconds`` keeps every repeat's wall clock (in repeat
    order), so trajectory comparisons can reason about run-to-run
    variance instead of trusting a single best-of figure.
    """

    wall_seconds: float
    epochs: int
    messages: int
    repeat_seconds: tuple[float, ...] = ()

    @classmethod
    def best_of(cls, timings: Sequence[float], epochs: int,
                messages: int) -> "PathTiming":
        """Best-of-R over per-repeat wall clocks (messages are
        deterministic, identical across repeats)."""
        return cls(wall_seconds=min(timings), epochs=epochs,
                   messages=messages, repeat_seconds=tuple(timings))

    @property
    def epochs_per_sec(self) -> float:
        return self.epochs / self.wall_seconds if self.wall_seconds else 0.0

    @property
    def messages_per_sec(self) -> float:
        return self.messages / self.wall_seconds if self.wall_seconds else 0.0


@dataclass(frozen=True)
class PerfSample:
    """Everything measured at one fleet size."""

    n_nodes: int
    sessions: int
    repeats: int
    hot: PathTiming
    reference: PathTiming | None
    peak_rss_bytes: int

    @property
    def speedup(self) -> float | None:
        """Hot-path epochs/sec over reference epochs/sec (same host)."""
        if self.reference is None:
            return None
        return self.hot.epochs_per_sec / self.reference.epochs_per_sec

    def as_dict(self) -> dict:
        data = {
            "n_nodes": self.n_nodes,
            "sessions": self.sessions,
            "repeats": self.repeats,
            "epochs": self.hot.epochs,
            "wall_seconds": self.hot.wall_seconds,
            "epochs_per_sec": self.hot.epochs_per_sec,
            "messages": self.hot.messages,
            "messages_per_sec": self.hot.messages_per_sec,
            "repeat_wall_seconds": list(self.hot.repeat_seconds),
            "peak_rss_bytes": self.peak_rss_bytes,
        }
        if self.reference is not None:
            data["reference"] = {
                "wall_seconds": self.reference.wall_seconds,
                "epochs_per_sec": self.reference.epochs_per_sec,
                "messages_per_sec": self.reference.messages_per_sec,
                "repeat_wall_seconds": list(self.reference.repeat_seconds),
            }
            data["speedup_vs_reference"] = self.speedup
        return data


@dataclass
class PerfReport:
    """The whole ladder, ready to serialize."""

    samples: list[PerfSample] = field(default_factory=list)
    churn: str | None = None
    seed: int = 11
    quick: bool = False
    #: Worker processes the ladder sharded across (1 = in-process).
    workers: int = 1
    #: The aggregate-throughput section (``jobs > 1`` runs only).
    aggregate: dict | None = None
    #: Shards that raised instead of reporting ({key, error} each);
    #: the CI tripwire fails on a non-empty envelope.
    shard_errors: list = field(default_factory=list)
    #: The certifier microbench section (see :func:`measure_certifier`).
    certifier: dict | None = None
    #: The columnar microbench section (see :func:`measure_columnar`).
    columnar: dict | None = None
    #: The eventsim microbench section (see :func:`measure_eventsim`).
    eventsim: dict | None = None

    def sample_for(self, n_nodes: int) -> PerfSample | None:
        for sample in self.samples:
            if sample.n_nodes == n_nodes:
                return sample
        return None

    def as_dict(self) -> dict:
        return {
            "schema": SCHEMA,
            "version": __version__,
            "workload": "e11-multiquery",
            "queries": list(WORKLOAD_QUERIES),
            "methodology": (
                "best-of-R interleaved repetitions; "
                f"{WARMUP_EPOCHS} warm-up epochs excluded"
            ),
            "churn": self.churn,
            "seed": self.seed,
            "quick": self.quick,
            "platform": {
                "python": platform.python_version(),
                "implementation": platform.python_implementation(),
                "machine": platform.machine(),
                "system": platform.system(),
                "cpu_count": os.cpu_count(),
                "workers": self.workers,
            },
            "results": [sample.as_dict() for sample in self.samples],
            "aggregate": self.aggregate,
            "shard_errors": list(self.shard_errors),
            "certifier": self.certifier,
            "columnar": self.columnar,
            "eventsim": self.eventsim,
        }

    def write(self, path: str | Path) -> Path:
        path = Path(path)
        path.write_text(json.dumps(self.as_dict(), indent=2,
                                   sort_keys=True) + "\n",
                        encoding="utf-8")
        return path


def _drive_once(n: int, epochs: int, seed: int,
                churn: str | None, churn_seed: int,
                hot: bool) -> tuple[float, int, int]:
    """One timed run; returns (wall seconds, messages timed, RSS
    sampled with the run's deployment still live)."""
    from .api import ChurnIntervention, Deployment, EpochDriver

    previous = hotpath.enabled()
    hotpath.set_enabled(hot)
    try:
        scenario = fleet_scenario(n, seed=seed)
        deployment = Deployment.from_scenario(scenario)
        interventions = []
        if churn is not None:
            schedule = preset_churn(
                scenario.network.topology, WARMUP_EPOCHS + epochs,
                preset=churn, seed=churn_seed,
                group_for=scenario.churn_group_for, field=scenario.field)
            interventions.append(
                ChurnIntervention(schedule, board_for=scenario.board_for))
        driver = EpochDriver(deployment, interventions=interventions)
        for query in WORKLOAD_QUERIES:
            deployment.submit(query)
        driver.run(WARMUP_EPOCHS)
        stats = scenario.network.stats
        messages_before = stats.messages
        gc.collect()
        started = time.perf_counter()
        driver.run(epochs)
        elapsed = time.perf_counter() - started
        return elapsed, stats.messages - messages_before, rss_bytes()
    finally:
        hotpath.set_enabled(previous)


@dataclass(frozen=True)
class _RepeatSpec:
    """One shard of the ladder: one repeat at one fleet size, running
    hot (and, when comparing, reference — back to back in the same
    worker so contention cancels out of the speedup)."""

    n: int
    epochs: int
    repeat: int
    seed: int
    churn: str | None
    churn_seed: int
    compare_reference: bool


def _measure_repeat(spec: _RepeatSpec) -> dict:
    """The ladder's shard worker (module-level: the spawn contract)."""
    elapsed, messages, rss = _drive_once(
        spec.n, spec.epochs, spec.seed, spec.churn, spec.churn_seed,
        hot=True)
    payload = {"n": spec.n, "repeat": spec.repeat,
               "hot": [elapsed, messages, rss], "reference": None}
    if spec.compare_reference:
        elapsed, messages, _ = _drive_once(
            spec.n, spec.epochs, spec.seed, spec.churn, spec.churn_seed,
            hot=False)
        payload["reference"] = [elapsed, messages]
    return payload


@dataclass(frozen=True)
class _ThroughputSpec:
    """One shard of the aggregate-throughput measurement: a whole
    deployment driven end to end (build + warm-up included — the
    parent's wall clock around the batch cannot exclude them)."""

    n: int
    epochs: int
    seed: int
    churn: str | None
    churn_seed: int


def _measure_throughput(spec: _ThroughputSpec) -> dict:
    started = time.perf_counter()
    _drive_once(spec.n, spec.epochs, spec.seed, spec.churn,
                spec.churn_seed, hot=True)
    return {"epochs": spec.epochs,
            "shard_seconds": time.perf_counter() - started}


def _merge_size(results, n: int, epochs: int,
                compare_reference: bool) -> PerfSample | None:
    """Fold one size's repeat envelopes (any execution order) into a
    sample — identical to what the old serial loop accumulated. None
    when every repeat crashed (the envelopes carry the errors)."""
    payloads = sorted((r.payload for r in results if r.ok),
                      key=lambda p: p["repeat"])
    if not payloads:
        return None
    hot = PathTiming.best_of(
        [p["hot"][0] for p in payloads], epochs,
        payloads[0]["hot"][1])
    reference = None
    if compare_reference:
        reference = PathTiming.best_of(
            [p["reference"][0] for p in payloads], epochs,
            payloads[0]["reference"][1])
    return PerfSample(
        n_nodes=n,
        sessions=len(WORKLOAD_QUERIES),
        repeats=len(payloads),
        hot=hot,
        reference=reference,
        # RSS is sampled inside each hot run (deployment still
        # live) and maxed over repeats; worker processes carry only
        # their own shards, so the figure stays per-size honest.
        peak_rss_bytes=max(p["hot"][2] for p in payloads),
    )


def _measure_aggregate(pool, jobs: int, n: int, epochs: int, seed: int,
                       churn: str | None, churn_seed: int,
                       serial_eps: float | None) -> tuple[dict, list]:
    """Drive ``jobs`` independent deployments simultaneously and price
    the machine's horizontal capacity; returns ``(section, results)``
    so the caller can fold shard failures into the error envelope.

    Each shard's deployment gets its own derived seed (a fleet of
    distinct buildings, not one building cloned). ``scaleout`` is the
    classic speedup estimator: summed in-worker shard time over the
    parent's wall clock for the whole batch.
    """
    from .parallel import derive_seed

    specs = [
        _ThroughputSpec(n=n, epochs=epochs,
                        seed=derive_seed(seed, "throughput", index),
                        churn=churn, churn_seed=churn_seed)
        for index in range(jobs)
    ]
    started = time.perf_counter()
    results = pool.map_shards(_measure_throughput, specs,
                              keys=[f"throughput-{i}" for i in range(jobs)])
    wall = time.perf_counter() - started
    payloads = [result.payload for result in results if result.ok]
    epochs_total = sum(p["epochs"] for p in payloads)
    aggregate_eps = epochs_total / wall if wall else 0.0
    data = {
        "workers": jobs,
        "n_nodes": n,
        "epochs_per_shard": epochs,
        "epochs_total": epochs_total,
        "wall_seconds": wall,
        "epochs_per_sec": aggregate_eps,
        "shard_seconds": [p["shard_seconds"] for p in payloads],
        "scaleout": (sum(p["shard_seconds"] for p in payloads) / wall
                     if wall else 0.0),
    }
    if serial_eps:
        data["serial_epochs_per_sec"] = serial_eps
    return data, results


def measure_fleet(n: int, epochs: int, repeats: int = 3, seed: int = 11,
                  churn: str | None = None, churn_seed: int = 0,
                  compare_reference: bool = False) -> PerfSample:
    """Best-of-``repeats`` timings for one fleet size, in-process
    (interleaving the hot and reference paths when comparing)."""
    from .parallel import ShardPool

    specs = [
        _RepeatSpec(n=n, epochs=epochs, repeat=repeat, seed=seed,
                    churn=churn, churn_seed=churn_seed,
                    compare_reference=compare_reference)
        for repeat in range(repeats)
    ]
    with ShardPool(jobs=1) as pool:
        results = pool.map_shards(_measure_repeat, specs)
    return _merge_size(results, n, epochs, compare_reference)


def certifier_streams(n: int, epochs: int, seed: int = 11,
                      k: int = 5) -> list[tuple[dict, int, bool]]:
    """Record every cold ``certify_top_k`` call FILA's sink makes over
    ``epochs`` monitoring rounds on the e11 fleet deployment.

    FILA is the certifier's heaviest client (monitor pass, probe loop,
    answer-time pass — up to three certifications per epoch over all
    ``n`` node-groups), which makes its reference-path call stream the
    honest workload for the cold-vs-incremental microbench. Returns
    ``(bounds snapshot, k, require_exact_scores)`` per call, in call
    order.
    """
    from .core import fila as fila_module
    from .core.aggregates import make_aggregate

    calls: list[tuple[dict, int, bool]] = []
    real = fila_module.certify_top_k

    def recorder(bounds, k_arg, tolerance=1e-9, require_exact_scores=True):
        calls.append((dict(bounds), k_arg, require_exact_scores))
        return real(bounds, k_arg, tolerance=tolerance,
                    require_exact_scores=require_exact_scores)

    previous = hotpath.enabled()
    hotpath.set_enabled(False)
    fila_module.certify_top_k = recorder
    try:
        scenario = fleet_scenario(n, seed=seed)
        aggregate = make_aggregate("AVG", 0.0, 100.0)
        engine = fila_module.Fila(scenario.network, aggregate, k,
                                  attribute=scenario.attribute)
        engine.run(epochs)
    finally:
        fila_module.certify_top_k = real
        hotpath.set_enabled(previous)
    return calls


def measure_certifier(n: int = 400, epochs: int = 30, seed: int = 11,
                      k: int = 5, repeats: int = 3) -> dict:
    """Cold ``certify_top_k`` replay vs one persistent
    :class:`~repro.core.delta.TopKView` over the recorded FILA stream.

    The recorded stream yields both views of the workload: the full
    bounds snapshot every cold call re-ranks, and the consecutive
    per-call :class:`~repro.core.delta.BoundsDelta` — the weighted
    delta batch the engines' dirty tracking hands the view for free on
    the hot path (MINT's sink-dirty sets, FILA's per-node ``ensure``).
    The incremental replay therefore times what the sink actually pays
    per certification: a validated ``apply`` in O(|delta| · log N)
    plus ``outcome``. Both replays produce
    :class:`CertificationOutcome` sequences asserted equal (dataclass
    equality — the equivalence proof runs on the measured stream
    itself), then timed best-of-``repeats`` with interleaved
    repetitions like the rest of the ladder.
    """
    from .core.certify import certify_top_k
    from .core.delta import BoundsDelta, TopKView

    calls = certifier_streams(n, epochs, seed=seed, k=k)
    if not calls:
        raise RuntimeError("certifier stream is empty")
    if any(k_arg != k or require for _, k_arg, require in calls):
        raise RuntimeError("certifier stream mixes certification modes")
    deltas = []
    previous: dict = {}
    for bounds, _, _ in calls:
        deltas.append(BoundsDelta.diff(previous, bounds))
        previous = bounds

    def replay_cold():
        return [certify_top_k(bounds, k, require_exact_scores=False)
                for bounds, _, _ in calls]

    def replay_incremental():
        view = TopKView(k, require_exact_scores=False)
        outcomes = []
        for delta in deltas:
            view.apply(delta)
            outcomes.append(view.outcome())
        return outcomes

    if replay_cold() != replay_incremental():
        raise RuntimeError(
            "incremental replay diverged from the cold certifier")

    cold_times, incremental_times = [], []
    for _ in range(repeats):
        gc.collect()
        started = time.perf_counter()
        replay_cold()
        cold_times.append(time.perf_counter() - started)
        gc.collect()
        started = time.perf_counter()
        replay_incremental()
        incremental_times.append(time.perf_counter() - started)
    cold, incremental = min(cold_times), min(incremental_times)
    return {
        "workload": "fila-certification-stream",
        "n_groups": n,
        "k": k,
        "epochs": epochs,
        "certifications": len(calls),
        "delta_entries": sum(len(delta) for delta in deltas),
        "repeats": repeats,
        "cold_seconds": cold,
        "incremental_seconds": incremental,
        "cold_per_sec": len(calls) / cold if cold else 0.0,
        "incremental_per_sec": (len(calls) / incremental
                                if incremental else 0.0),
        "speedup": cold / incremental if incremental else 0.0,
    }


def columnar_fleet(n: int, seed: int = 11):
    """The columnar microbench deployment: a square grid of ``side²``
    motes (``side = ⌊√n⌋``) split into 16 rooms over one shared
    :class:`~repro.sensing.generators.ZipfEventField`, monitored by a
    single FILA MAX top-25 session.

    The Zipf field is the workload the columnar kernel was built for —
    every room samples the same batch-capable field, so one
    ``batch_values`` call covers the whole fleet. ``margin=8.0 ≥
    jitter`` keeps the skewed room levels off the ``[lo, hi]`` rails:
    with saturation, large node populations clamp to exactly ``lo`` or
    ``hi``, flooding FILA with ``known == value`` coincidences that
    dominate both paths with view churn and hide the sensing kernel
    this microbench prices.

    Returns ``(session, network)``.
    """
    from .core.aggregates import make_aggregate
    from .core.fila import Fila
    from .network.topology import grid_topology
    from .sensing.generators import ZipfEventField

    side = max(2, math.isqrt(n))
    topology = grid_topology(side, spacing=10.0, radio_range=15.0)
    block = max(1, side // 4)
    room_of: dict[int, Hashable] = {}
    for node_id in range(1, side * side + 1):
        row, col = divmod(node_id - 1, side)
        room_of[node_id] = (f"R{min(row // block, 3)}"
                            f"{min(col // block, 3)}")
    zipf = ZipfEventField(room_of, lo=0.0, hi=100.0, skew=2.0,
                          jitter=6.0, seed=seed, margin=8.0)
    boards = {i: SensorBoard({"sound": zipf}) for i in room_of}
    network = Network(topology, boards=boards, group_of=room_of)
    session = Fila(network, make_aggregate("MAX", 0.0, 100.0), 25,
                   attribute="sound")
    return session, network


def measure_columnar(n: int = 400, chunks: int = 20,
                     chunk_epochs: int = 10, seed: int = 11,
                     check_epochs: int = 30) -> dict:
    """Columnar epoch kernel vs the scalar hot path on the Zipf-FILA
    workload of :func:`columnar_fleet`.

    Equivalence first, timing second — the switch-and-prove
    discipline: both modes drive ``check_epochs`` epochs on fresh
    deployments and must produce byte-identical result streams
    (epoch, items, exact flag, all bounds), total energy-ledger joules
    and sample counts, or this raises instead of timing.

    Timing uses **chunked-min**: each mode runs ``chunks`` chunks of
    ``chunk_epochs`` epochs, modes interleaved chunk by chunk so load
    waves land on both equally, and the per-chunk minimum is the
    figure — a best-of estimator at chunk granularity, which on noisy
    shared hosts converges far faster than best-of over whole runs.
    ``bench_e16_columnar`` gates the resulting speedup absolutely and
    ``check_perf_regression.py`` tracks it against the committed
    trajectory.
    """
    from .network import columnar

    def stream(scalar: bool):
        session, network = columnar_fleet(n, seed=seed)
        results = []

        def drive():
            for _ in range(check_epochs):
                r = session.run_epoch()
                results.append((r.epoch, tuple(r.items), r.exact,
                                dict(r.all_bounds)))

        if scalar:
            with columnar.scalar_path():
                drive()
        else:
            drive()
        joules = sum(node.ledger.total
                     for node in network.nodes.values())
        samples = sum(node.samples_taken
                      for node in network.nodes.values())
        return results, joules, samples

    if stream(scalar=False) != stream(scalar=True):
        raise RuntimeError(
            "columnar path diverged from the scalar hot path")

    col_session, _ = columnar_fleet(n, seed=seed)
    ref_session, _ = columnar_fleet(n, seed=seed)
    col_session.run(WARMUP_EPOCHS)
    with columnar.scalar_path():
        ref_session.run(WARMUP_EPOCHS)
    col_chunks: list[float] = []
    ref_chunks: list[float] = []
    for _ in range(chunks):
        gc.collect()
        started = time.perf_counter()
        for _ in range(chunk_epochs):
            col_session.run_epoch()
        col_chunks.append(time.perf_counter() - started)
        with columnar.scalar_path():
            started = time.perf_counter()
            for _ in range(chunk_epochs):
                ref_session.run_epoch()
            ref_chunks.append(time.perf_counter() - started)
    col, ref = min(col_chunks), min(ref_chunks)
    return {
        "workload": "fila-zipf-columnar",
        "n_nodes": max(2, math.isqrt(n)) ** 2,
        "sessions": 1,
        "seed": seed,
        "chunks": chunks,
        "chunk_epochs": chunk_epochs,
        "check_epochs": check_epochs,
        "backend": "numpy" if columnar.numpy_module() is not None
                   else "python",
        "columnar_chunk_seconds": col,
        "scalar_chunk_seconds": ref,
        "epochs_per_sec_columnar": (chunk_epochs / col if col else 0.0),
        "epochs_per_sec_scalar": (chunk_epochs / ref if ref else 0.0),
        "speedup": ref / col if col else 0.0,
    }


@dataclass(frozen=True)
class _EventsimSpec:
    """One eventsim-microbench drive: the columnar-fleet workload on
    the event core, optionally subtree-partitioned. The worker must
    re-assert the eventsim switch itself — :class:`ShardPool` only
    re-asserts the hot-path switch in spawned interpreters."""

    n: int
    epochs: int
    seed: int
    partitioned: bool


def _eventsim_run(spec: _EventsimSpec) -> dict:
    """Drive one event-core deployment end to end (module-level: the
    spawn contract); returns the run's full observable signature
    (result stream, energy joules, sample count, message and event
    totals, partition roots) plus the in-worker epoch-loop wall clock
    — ``signature`` is what the cross-process determinism proof
    compares, ``seconds`` is what the throughput section prices."""
    from .network import eventsim

    session, network = columnar_fleet(spec.n, seed=spec.seed)
    with eventsim.event_core():
        if spec.partitioned:
            network.enable_subtree_partitioning()
        results = []
        gc.collect()
        started = time.perf_counter()
        for _ in range(spec.epochs):
            r = session.run_epoch()
            results.append((r.epoch,
                            tuple((item.key, item.score, item.lb, item.ub)
                                  for item in r.items),
                            r.exact))
        seconds = time.perf_counter() - started
    return {
        "signature": {
            "results": results,
            "joules": sum(node.ledger.total
                          for node in network.nodes.values()),
            "samples": sum(node.samples_taken
                           for node in network.nodes.values()),
            "messages": network.stats.messages,
            "events": network.events_processed,
            "partitions": sorted(network._partitions or ()),
        },
        "seconds": seconds,
    }


def measure_eventsim(n: int = 400, chunks: int = 20,
                     chunk_epochs: int = 10, seed: int = 11,
                     check_epochs: int = 30,
                     jobs: int | None = None) -> dict:
    """Event-queue shipping core vs the inline ship path on the
    Zipf-FILA workload of :func:`columnar_fleet`.

    Equivalence first, timing second — the switch-and-prove
    discipline, in two layers:

    * **Zero-delay byte-identity**: both modes drive ``check_epochs``
      epochs on fresh deployments and must produce byte-identical
      result streams, energy-ledger joules and sample counts, or this
      raises instead of timing. The interleaved chunked-min timing then
      prices the event core's queue overhead: ``speedup`` is the
      event-core over inline epochs/sec ratio (expected a little below
      1.0 — the number the regression gate watches for drops).
    * **Cross-process determinism**: the partitioned section first
      proves a spawned worker's subtree-partitioned run signature
      (results, joules, samples, messages, events, partition roots)
      equal to the same run executed in-process, then prices
      horizontal capacity — ``jobs`` workers each driving an
      independent partitioned replica (distinct derived seeds), total
      epochs/sec over the in-process serial figure
      (``partition_speedup``; build and spawn overhead included, the
      honest lower bound ``bench_e17_eventsim`` gates with
      CPU-count-aware tiers).
    """
    from .network import eventsim
    from .parallel import ShardPool, derive_seed, resolve_jobs

    def stream(event_core: bool):
        session, network = columnar_fleet(n, seed=seed)
        results = []

        def drive():
            for _ in range(check_epochs):
                r = session.run_epoch()
                results.append((r.epoch, tuple(r.items), r.exact,
                                dict(r.all_bounds)))

        if event_core:
            with eventsim.event_core():
                drive()
        else:
            with eventsim.inline_ship():
                drive()
        joules = sum(node.ledger.total
                     for node in network.nodes.values())
        samples = sum(node.samples_taken
                      for node in network.nodes.values())
        return results, joules, samples

    if stream(event_core=True) != stream(event_core=False):
        raise RuntimeError(
            "event core diverged from the inline ship path")

    ev_session, ev_network = columnar_fleet(n, seed=seed)
    ref_session, _ = columnar_fleet(n, seed=seed)
    with eventsim.event_core():
        ev_session.run(WARMUP_EPOCHS)
    with eventsim.inline_ship():
        ref_session.run(WARMUP_EPOCHS)
    ev_chunks: list[float] = []
    ref_chunks: list[float] = []
    for _ in range(chunks):
        gc.collect()
        with eventsim.event_core():
            started = time.perf_counter()
            for _ in range(chunk_epochs):
                ev_session.run_epoch()
            ev_chunks.append(time.perf_counter() - started)
        with eventsim.inline_ship():
            started = time.perf_counter()
            for _ in range(chunk_epochs):
                ref_session.run_epoch()
            ref_chunks.append(time.perf_counter() - started)
    ev, ref = min(ev_chunks), min(ref_chunks)
    epochs_driven = WARMUP_EPOCHS + chunks * chunk_epochs

    # --- partitioned per-subtree section -----------------------------
    workers = (jobs if jobs is not None and jobs > 1
               else min(4, resolve_jobs(None)))
    part_epochs = chunk_epochs * 2
    base_spec = _EventsimSpec(n=n, epochs=part_epochs, seed=seed,
                              partitioned=True)
    serial = _eventsim_run(base_spec)
    serial_eps = (part_epochs / serial["seconds"]
                  if serial["seconds"] else 0.0)
    with ShardPool(jobs=workers) as pool:
        workers = pool.jobs
        proof = pool.map_shards(_eventsim_run, [base_spec],
                                keys=["eventsim-proof"])[0]
        if not proof.ok:
            raise RuntimeError(
                f"partitioned worker shard failed:\n{proof.error}")
        if proof.payload["signature"] != serial["signature"]:
            raise RuntimeError(
                "partitioned worker run diverged from the in-process run")
        specs = [
            _EventsimSpec(n=n, epochs=part_epochs,
                          seed=derive_seed(seed, "eventsim", index),
                          partitioned=True)
            for index in range(workers)
        ]
        started = time.perf_counter()
        shard_results = pool.map_shards(
            _eventsim_run, specs,
            keys=[f"eventsim-{index}" for index in range(workers)])
        wall = time.perf_counter() - started
    failed = [result for result in shard_results if not result.ok]
    if failed:
        raise RuntimeError(
            f"partitioned throughput shard failed:\n{failed[0].error}")
    epochs_total = part_epochs * len(shard_results)
    aggregate_eps = epochs_total / wall if wall else 0.0
    return {
        "workload": "fila-zipf-eventsim",
        "n_nodes": max(2, math.isqrt(n)) ** 2,
        "sessions": 1,
        "seed": seed,
        "chunks": chunks,
        "chunk_epochs": chunk_epochs,
        "check_epochs": check_epochs,
        "event_chunk_seconds": ev,
        "inline_chunk_seconds": ref,
        "epochs_per_sec_event": chunk_epochs / ev if ev else 0.0,
        "epochs_per_sec_inline": chunk_epochs / ref if ref else 0.0,
        "events_per_epoch": ev_network.events_processed / epochs_driven,
        "speedup": ref / ev if ev else 0.0,
        "partitioned": {
            "jobs": workers,
            "cpus": os.cpu_count(),
            "partitions": len(serial["signature"]["partitions"]),
            "epochs_per_shard": part_epochs,
            "epochs_total": epochs_total,
            "wall_seconds": wall,
            "epochs_per_sec": aggregate_eps,
            "serial_epochs_per_sec": serial_eps,
            "partition_speedup": (aggregate_eps / serial_eps
                                  if serial_eps else 0.0),
            "events_per_epoch": (serial["signature"]["events"]
                                 / part_epochs),
        },
    }


def run_perf(sizes: Sequence[int] = FLEET_SIZES,
             repeats: int = 3, seed: int = 11,
             churn: str | None = None, churn_seed: int = 0,
             compare_reference: bool = False,
             quick: bool = False,
             epochs_for: dict[int, int] | None = None,
             progress=None, jobs: int = 1) -> PerfReport:
    """Measure the whole fleet-size ladder.

    ``quick`` trims the *default* ladder to N ∈ {25, 100, 400} with
    fewer repeats — the CI smoke configuration; an explicitly chosen
    ``sizes`` selection is honoured as given. ``progress`` is an
    optional callback invoked with each finished :class:`PerfSample`.
    ``jobs > 1`` shards the (size, repeat) grid across that many
    worker processes and appends the aggregate-throughput section.
    """
    from .parallel import ShardPool, shard_errors

    if quick:
        if tuple(sizes) == FLEET_SIZES:
            sizes = QUICK_SIZES
        repeats = min(repeats, 2)
    defaults = epochs_for or EPOCHS_FOR
    epochs_for = {
        n: defaults.get(n) or max(4, 24_000 // max(n, 1) // 4)
        for n in sizes
    }
    report = PerfReport(churn=churn, seed=seed, quick=quick)
    all_results = []
    with ShardPool(jobs=jobs) as pool:
        report.workers = pool.jobs
        # One batch per fleet size: within a size the repeats shard
        # across the workers, and each finished size streams to the
        # progress callback (as the serial harness always has).
        for n in sizes:
            specs = [
                _RepeatSpec(n=n, epochs=epochs_for[n], repeat=repeat,
                            seed=seed, churn=churn,
                            churn_seed=churn_seed,
                            compare_reference=compare_reference)
                for repeat in range(repeats)
            ]
            results = pool.map_shards(
                _measure_repeat, specs,
                keys=[f"N{n}-r{spec.repeat}" for spec in specs])
            all_results.extend(results)
            sample = _merge_size(results, n, epochs_for[n],
                                 compare_reference)
            if sample is not None:
                report.samples.append(sample)
                if progress is not None:
                    progress(sample)
        if pool.jobs > 1:
            # Price horizontal capacity at the largest interactive
            # size of this run (1000-node shards would dominate the
            # batch without adding information).
            eligible = [n for n in sizes if n <= 400] or list(sizes)
            agg_n = max(eligible)
            sample = report.sample_for(agg_n)
            report.aggregate, throughput_results = _measure_aggregate(
                pool, pool.jobs, agg_n, epochs_for[agg_n], seed, churn,
                churn_seed,
                sample.hot.epochs_per_sec if sample else None)
            all_results.extend(throughput_results)
        report.shard_errors = shard_errors(all_results)
    # The certifier microbench rides every ladder run (serial,
    # in-process): cold certify_top_k replay vs the incremental
    # TopKView on the recorded FILA stream at N=400, the size the CI
    # regression gate watches (a smaller ladder caps the stream at its
    # own largest size so unit-scale runs stay unit-fast).
    certifier_n = 400 if any(n >= 400 for n in sizes) else max(sizes)
    report.certifier = measure_certifier(
        n=certifier_n, epochs=12 if quick else 30, seed=seed,
        repeats=repeats)
    # The columnar microbench rides alongside at the same anchor size:
    # the vectorized sensing kernel vs the scalar hot path on the
    # Zipf-field FILA workload (equivalence asserted before timing).
    report.columnar = measure_columnar(
        n=certifier_n, chunks=6 if quick else 20, seed=seed)
    # The eventsim microbench completes the switch stack at the same
    # anchor: the event-queue shipping core vs the inline path
    # (zero-delay byte-identity asserted before timing), plus the
    # partitioned per-subtree throughput section, sharded across the
    # run's --jobs workers (capped default on serial runs).
    report.eventsim = measure_eventsim(
        n=certifier_n, chunks=6 if quick else 20, seed=seed,
        jobs=jobs if jobs > 1 else None)
    return report
