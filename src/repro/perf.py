"""``repro perf`` — the repo's performance harness.

Drives the standard multi-query workload (the e11 mix: four concurrent
MINT monitoring queries plus one historic TJA session) through the
layered :mod:`repro.api` facade at fleet sizes N ∈ {25, 100, 400,
1000}, measures wall-clock per epoch, epochs/sec, messages/sec and
resident memory, and writes a schema-versioned ``BENCH_perf.json`` —
the machine-readable perf trajectory every PR can be judged against.

Methodology (matching ``bench_e13_api_overhead``): each fleet size is
timed **best-of-R with interleaved repetitions**, so ambient drift (GC
pressure, CPU frequency excursions) lands on every configuration
equally; deterministic simulations have no other variance worth
averaging. With ``compare_reference=True`` every size also runs on the
unoptimized reference path (:mod:`repro.network.hotpath`), interleaved
hot/reference, yielding a machine-normalized speedup — the number the
CI regression gate watches, since absolute epochs/sec are incomparable
across runners.

Fleet layouts are near-square grids with exactly N sensors partitioned
into 16 rooms, built by :func:`fleet_scenario` (square sizes reproduce
``grid_rooms_scenario`` exactly).
"""

from __future__ import annotations

import gc
import json
import math
import os
import platform
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Hashable, Sequence

from . import __version__
from .network import hotpath
from .network.simulator import Network
from .network.topology import Topology
from .scenarios import Scenario, preset_churn
from .sensing.board import SensorBoard
from .sensing.generators import RoomField

#: Version tag written into every BENCH_perf.json (bump on any
#: backwards-incompatible change to the payload layout).
SCHEMA = "kspot-perf/1"

#: The e11 workload: four concurrent monitoring queries ranking rooms
#: by different aggregates plus one historic TJA pass.
WORKLOAD_QUERIES = (
    "SELECT TOP 2 roomid, AVG(sound) FROM sensors "
    "GROUP BY roomid EPOCH DURATION 1 min",
    "SELECT TOP 1 roomid, MAX(sound) FROM sensors "
    "GROUP BY roomid EPOCH DURATION 1 min",
    "SELECT TOP 3 roomid, SUM(sound) FROM sensors "
    "GROUP BY roomid EPOCH DURATION 1 min",
    "SELECT TOP 1 roomid, MIN(sound) FROM sensors "
    "GROUP BY roomid EPOCH DURATION 1 min",
    "SELECT TOP 3 epoch, AVG(sound) FROM sensors "
    "GROUP BY epoch WITH HISTORY 10 s EPOCH DURATION 1 s",
)

#: Default fleet sizes (the ISSUE's scaling ladder).
FLEET_SIZES = (25, 100, 400, 1000)

#: Measured epochs per fleet size: enough for a stable per-epoch
#: number, small enough that the full ladder stays interactive.
EPOCHS_FOR = {25: 60, 100: 40, 400: 16, 1000: 6}

#: Warm-up epochs excluded from timing (creation phase, cache priming).
WARMUP_EPOCHS = 2


def fleet_scenario(n: int, seed: int = 11,
                   rooms_per_axis: int = 4) -> Scenario:
    """A deployment of exactly ``n`` sensors on a near-square grid.

    Square ``n`` uses the canonical ``side × side`` layout of
    :func:`repro.scenarios.grid_rooms_scenario`; other sizes extend it
    to ``rows × cols`` (rows = ⌊√n⌋) with the trailing row truncated,
    so N = 1000 is a 31 × 33 grid missing 23 corner motes.
    """
    spacing = 10.0
    rows = max(1, math.isqrt(n))
    cols = math.ceil(n / rows)
    positions: dict[int, tuple[float, float]] = {0: (0.0, 0.0)}
    room_of: dict[int, Hashable] = {}
    row_block = max(1, rows // rooms_per_axis)
    col_block = max(1, cols // rooms_per_axis)
    node_id = 1
    for row in range(rows):
        for col in range(cols):
            if node_id > n:
                break
            positions[node_id] = (col * spacing, row * spacing)
            room = (min(row // row_block, rooms_per_axis - 1),
                    min(col // col_block, rooms_per_axis - 1))
            room_of[node_id] = f"R{room[0]}{room[1]}"
            node_id += 1
    topology = Topology(positions=positions, radio_range=spacing * 1.5)
    sound = RoomField(room_of, lo=0.0, hi=100.0, room_step=4.0,
                      sensor_sigma=1.5, seed=seed)
    boards = {i: SensorBoard({"sound": sound}) for i in room_of}
    network = Network(topology, boards=boards, group_of=room_of)
    return Scenario(network=network, group_of=room_of,
                    attribute="sound", field=sound)


def rss_bytes() -> int:
    """Current resident set size (no psutil; /proc on Linux, peak
    rusage elsewhere)."""
    try:
        with open("/proc/self/statm") as statm:
            pages = int(statm.read().split()[1])
        return pages * os.sysconf("SC_PAGESIZE")
    except (OSError, ValueError, IndexError):
        import resource

        rusage = resource.getrusage(resource.RUSAGE_SELF)
        scale = 1 if sys.platform == "darwin" else 1024
        return rusage.ru_maxrss * scale


@dataclass(frozen=True)
class PathTiming:
    """One driving mode's best-of-R timing at one fleet size."""

    wall_seconds: float
    epochs: int
    messages: int

    @property
    def epochs_per_sec(self) -> float:
        return self.epochs / self.wall_seconds if self.wall_seconds else 0.0

    @property
    def messages_per_sec(self) -> float:
        return self.messages / self.wall_seconds if self.wall_seconds else 0.0


@dataclass(frozen=True)
class PerfSample:
    """Everything measured at one fleet size."""

    n_nodes: int
    sessions: int
    repeats: int
    hot: PathTiming
    reference: PathTiming | None
    peak_rss_bytes: int

    @property
    def speedup(self) -> float | None:
        """Hot-path epochs/sec over reference epochs/sec (same host)."""
        if self.reference is None:
            return None
        return self.hot.epochs_per_sec / self.reference.epochs_per_sec

    def as_dict(self) -> dict:
        data = {
            "n_nodes": self.n_nodes,
            "sessions": self.sessions,
            "repeats": self.repeats,
            "epochs": self.hot.epochs,
            "wall_seconds": self.hot.wall_seconds,
            "epochs_per_sec": self.hot.epochs_per_sec,
            "messages": self.hot.messages,
            "messages_per_sec": self.hot.messages_per_sec,
            "peak_rss_bytes": self.peak_rss_bytes,
        }
        if self.reference is not None:
            data["reference"] = {
                "wall_seconds": self.reference.wall_seconds,
                "epochs_per_sec": self.reference.epochs_per_sec,
                "messages_per_sec": self.reference.messages_per_sec,
            }
            data["speedup_vs_reference"] = self.speedup
        return data


@dataclass
class PerfReport:
    """The whole ladder, ready to serialize."""

    samples: list[PerfSample] = field(default_factory=list)
    churn: str | None = None
    seed: int = 11
    quick: bool = False

    def sample_for(self, n_nodes: int) -> PerfSample | None:
        for sample in self.samples:
            if sample.n_nodes == n_nodes:
                return sample
        return None

    def as_dict(self) -> dict:
        return {
            "schema": SCHEMA,
            "version": __version__,
            "workload": "e11-multiquery",
            "queries": list(WORKLOAD_QUERIES),
            "methodology": (
                "best-of-R interleaved repetitions; "
                f"{WARMUP_EPOCHS} warm-up epochs excluded"
            ),
            "churn": self.churn,
            "seed": self.seed,
            "quick": self.quick,
            "platform": {
                "python": platform.python_version(),
                "implementation": platform.python_implementation(),
                "machine": platform.machine(),
                "system": platform.system(),
            },
            "results": [sample.as_dict() for sample in self.samples],
        }

    def write(self, path: str | Path) -> Path:
        path = Path(path)
        path.write_text(json.dumps(self.as_dict(), indent=2,
                                   sort_keys=True) + "\n",
                        encoding="utf-8")
        return path


def _drive_once(n: int, epochs: int, seed: int,
                churn: str | None, churn_seed: int,
                hot: bool) -> tuple[float, int, int]:
    """One timed run; returns (wall seconds, messages timed, RSS
    sampled with the run's deployment still live)."""
    from .api import ChurnIntervention, Deployment, EpochDriver

    previous = hotpath.enabled()
    hotpath.set_enabled(hot)
    try:
        scenario = fleet_scenario(n, seed=seed)
        deployment = Deployment.from_scenario(scenario)
        interventions = []
        if churn is not None:
            schedule = preset_churn(
                scenario.network.topology, WARMUP_EPOCHS + epochs,
                preset=churn, seed=churn_seed,
                group_for=scenario.churn_group_for, field=scenario.field)
            interventions.append(
                ChurnIntervention(schedule, board_for=scenario.board_for))
        driver = EpochDriver(deployment, interventions=interventions)
        for query in WORKLOAD_QUERIES:
            deployment.submit(query)
        driver.run(WARMUP_EPOCHS)
        stats = scenario.network.stats
        messages_before = stats.messages
        gc.collect()
        started = time.perf_counter()
        driver.run(epochs)
        elapsed = time.perf_counter() - started
        return elapsed, stats.messages - messages_before, rss_bytes()
    finally:
        hotpath.set_enabled(previous)


def measure_fleet(n: int, epochs: int, repeats: int = 3, seed: int = 11,
                  churn: str | None = None, churn_seed: int = 0,
                  compare_reference: bool = False) -> PerfSample:
    """Best-of-``repeats`` timings for one fleet size (interleaving the
    hot and reference paths when comparing)."""
    best_hot = best_ref = float("inf")
    msgs_hot = msgs_ref = 0
    peak_rss = 0
    for _ in range(repeats):
        elapsed, messages, rss = _drive_once(n, epochs, seed, churn,
                                             churn_seed, hot=True)
        # RSS is sampled inside each hot-path run (deployment still
        # live) and maxed over repeats, so reference runs and other
        # ladder sizes do not pollute the figure. Memory freed between
        # sizes keeps the numbers per-size meaningful, though CPython
        # may retain allocator arenas from earlier (smaller) sizes.
        peak_rss = max(peak_rss, rss)
        if elapsed < best_hot:
            best_hot, msgs_hot = elapsed, messages
        if compare_reference:
            elapsed, messages, _ = _drive_once(n, epochs, seed, churn,
                                               churn_seed, hot=False)
            if elapsed < best_ref:
                best_ref, msgs_ref = elapsed, messages
    reference = (PathTiming(best_ref, epochs, msgs_ref)
                 if compare_reference else None)
    return PerfSample(
        n_nodes=n,
        sessions=len(WORKLOAD_QUERIES),
        repeats=repeats,
        hot=PathTiming(best_hot, epochs, msgs_hot),
        reference=reference,
        peak_rss_bytes=peak_rss,
    )


def run_perf(sizes: Sequence[int] = FLEET_SIZES,
             repeats: int = 3, seed: int = 11,
             churn: str | None = None, churn_seed: int = 0,
             compare_reference: bool = False,
             quick: bool = False,
             epochs_for: dict[int, int] | None = None,
             progress=None) -> PerfReport:
    """Measure the whole fleet-size ladder.

    ``quick`` trims the *default* ladder to N ∈ {25, 100} with fewer
    repeats — the CI smoke configuration; an explicitly chosen ``sizes``
    selection is honoured as given. ``progress`` is an optional
    callback invoked with each finished :class:`PerfSample`.
    """
    if quick:
        if tuple(sizes) == FLEET_SIZES:
            sizes = (25, 100)
        repeats = min(repeats, 2)
    epochs_for = epochs_for or EPOCHS_FOR
    report = PerfReport(churn=churn, seed=seed, quick=quick)
    for n in sizes:
        epochs = epochs_for.get(n) or max(4, 24_000 // max(n, 1) // 4)
        sample = measure_fleet(
            n, epochs, repeats=repeats, seed=seed, churn=churn,
            churn_seed=churn_seed, compare_reference=compare_reference)
        report.samples.append(sample)
        if progress is not None:
            progress(sample)
    return report
