"""ASCII rendering of the Display and System panels.

The Swing GUI draws a JPG floor plan with draggable sensors, black
cluster links and red KSpot bullets. The terminal renderer draws the
same model on a character grid: sensors as ``s<n>``, the sink as
``S0``, bullet ranks as ``(1) (2) …`` at cluster centroids, plus a
legend listing the K highest-ranked clusters with their scores.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..errors import ValidationError
from .panels import DisplayPanel
from .stats import SavingsSample


def _blank_canvas(columns: int, rows: int) -> list[list[str]]:
    return [[" "] * columns for _ in range(rows)]


def _stamp(canvas: list[list[str]], column: int, row: int, text: str) -> None:
    if not 0 <= row < len(canvas):
        return
    for offset, char in enumerate(text):
        if 0 <= column + offset < len(canvas[row]):
            canvas[row][column + offset] = char


def render_display(panel: DisplayPanel, columns: int = 72,
                   rows: int = 20) -> str:
    """Draw the display panel onto a character grid.

    Scale is derived from the panel's map dimensions; the output ends
    with the bullet legend (rank, cluster, score).
    """
    if columns < 10 or rows < 5:
        raise ValidationError("canvas too small to render")
    canvas = _blank_canvas(columns, rows)

    def to_cell(x: float, y: float) -> tuple[int, int]:
        column = int(x / max(panel.width, 1e-9) * (columns - 6))
        row = int(y / max(panel.height, 1e-9) * (rows - 2))
        return column, row

    for node_id, (x, y) in sorted(panel.positions.items()):
        column, row = to_cell(x, y)
        label = "S0" if node_id == 0 else f"s{node_id}"
        _stamp(canvas, column, row, label)

    for bullet in panel.bullets:
        try:
            cx, cy = panel.cluster_centroid(bullet.cluster)
        except ValidationError:
            continue
        column, row = to_cell(cx, cy)
        _stamp(canvas, column, row, bullet.label)

    border = "+" + "-" * columns + "+"
    lines = [f"[{panel.floor_plan_caption}]", border]
    lines.extend("|" + "".join(row) + "|" for row in canvas)
    lines.append(border)
    if panel.bullets:
        lines.append("KSpot bullets:")
        for bullet in panel.bullets:
            lines.append(
                f"  ({bullet.rank}) {bullet.cluster}: {bullet.score:.2f}"
            )
    return "\n".join(lines)


def render_savings(samples: Sequence[SavingsSample], width: int = 60,
                   metric: str = "bytes") -> str:
    """A sparkline-style bar chart of per-epoch savings percentages."""
    if metric == "bytes":
        series = [s.byte_saving_pct for s in samples]
    elif metric == "messages":
        series = [s.message_saving_pct for s in samples]
    elif metric == "energy":
        series = [s.energy_saving_pct for s in samples]
    else:
        raise ValidationError(f"unknown savings metric {metric!r}")
    if not series:
        return "(no samples)"
    recent = series[-width:]
    blocks = " ▁▂▃▄▅▆▇█"
    chart = "".join(
        blocks[min(len(blocks) - 1,
                   max(0, int(value / 100.0 * (len(blocks) - 1))))]
        for value in recent
    )
    average = sum(series) / len(series)
    return (f"{metric} saving per epoch "
            f"(avg {average:.1f}%, last {recent[-1]:.1f}%)\n{chart}")


def render_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 float_format: str = "{:.2f}") -> str:
    """A plain fixed-width table (benchmark output uses this)."""
    rendered_rows = [
        [float_format.format(cell) if isinstance(cell, float) else str(cell)
         for cell in row]
        for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        if len(row) != len(headers):
            raise ValidationError("row width does not match headers")
        widths = [max(w, len(cell)) for w, cell in zip(widths, row)]
    def fmt(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(width)
                         for cell, width in zip(cells, widths))
    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in rendered_rows)
    return "\n".join(lines)
