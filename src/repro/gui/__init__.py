"""The KSpot GUI, substituted (§II).

The demo's second tier is a Java Swing GUI with three panels —
Configuration, Query and Display — plus a System Panel of live network
statistics. A Swing event loop is I/O, not logic; what the paper's GUI
*shows* is state this package models faithfully:

* :mod:`repro.gui.panels` — the three panel models: cluster
  configuration, query construction/echo, and the display model with
  the ranked **KSpot bullets**;
* :mod:`repro.gui.render` — an ASCII renderer that draws the floor
  plan, sensors, cluster links and bullets (proof the display model is
  complete, and genuinely usable in a terminal);
* :mod:`repro.gui.stats` — the System Panel feed: per-epoch savings in
  messages/bytes/energy versus a baseline;
* :mod:`repro.gui.scenario` — JSON scenario files the Configuration
  Panel loads and stores.
"""

from .panels import ConfigurationPanel, DisplayPanel, KSpotBullet, QueryPanel
from .render import render_display, render_savings, render_table
from .scenario import ScenarioConfig, load_scenario, save_scenario
from .stats import SavingsSample, SystemPanel

__all__ = [
    "ConfigurationPanel",
    "QueryPanel",
    "DisplayPanel",
    "KSpotBullet",
    "render_display",
    "render_savings",
    "render_table",
    "SystemPanel",
    "SavingsSample",
    "ScenarioConfig",
    "load_scenario",
    "save_scenario",
]
