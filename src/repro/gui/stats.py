"""The System Panel: live savings statistics (§I, §IV-B).

"KSpot's system panel … continuously displays the savings in energy
and messages that our system yields." The panel compares the running
algorithm's cumulative cost against a baseline's (TAG by default) and
keeps a time series of per-epoch savings for plotting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from ..errors import ValidationError
from ..network.stats import NetworkStats


@dataclass(frozen=True)
class SavingsSample:
    """Savings observed over one epoch (deltas, not cumulative)."""

    epoch: int
    messages: int
    baseline_messages: int
    payload_bytes: int
    baseline_payload_bytes: int
    radio_joules: float
    baseline_radio_joules: float

    @staticmethod
    def _saving(cost: float, baseline: float) -> float:
        if baseline <= 0:
            return 0.0
        return 100.0 * (1.0 - cost / baseline)

    @property
    def message_saving_pct(self) -> float:
        """Per-epoch message saving vs the baseline, in percent."""
        return self._saving(self.messages, self.baseline_messages)

    @property
    def byte_saving_pct(self) -> float:
        """Per-epoch payload-byte saving vs the baseline, in percent."""
        return self._saving(self.payload_bytes, self.baseline_payload_bytes)

    @property
    def energy_saving_pct(self) -> float:
        """Per-epoch radio-energy saving vs the baseline, in percent."""
        return self._saving(self.radio_joules, self.baseline_radio_joules)

    def plus(self, other: "SavingsSample", epoch: int) -> "SavingsSample":
        """Component-wise total of two samples, stamped ``epoch`` —
        the incremental step the panels' running totals accumulate by."""
        return SavingsSample(
            epoch=epoch,
            messages=self.messages + other.messages,
            baseline_messages=(self.baseline_messages
                               + other.baseline_messages),
            payload_bytes=self.payload_bytes + other.payload_bytes,
            baseline_payload_bytes=(self.baseline_payload_bytes
                                    + other.baseline_payload_bytes),
            radio_joules=self.radio_joules + other.radio_joules,
            baseline_radio_joules=(self.baseline_radio_joules
                                   + other.baseline_radio_joules),
        )

    def as_dict(self) -> dict:
        """Raw costs plus derived savings, JSON-ready (the CLI's
        ``--format json`` serialisation of a panel sample)."""
        return {
            "epoch": self.epoch,
            "messages": self.messages,
            "baseline_messages": self.baseline_messages,
            "payload_bytes": self.payload_bytes,
            "baseline_payload_bytes": self.baseline_payload_bytes,
            "radio_joules": self.radio_joules,
            "baseline_radio_joules": self.baseline_radio_joules,
            "message_saving_pct": self.message_saving_pct,
            "byte_saving_pct": self.byte_saving_pct,
            "energy_saving_pct": self.energy_saving_pct,
        }


@dataclass(frozen=True)
class RecoveryRecord:
    """One session-level recovery pass after a churn event batch.

    Attributes:
        epoch: Shared-clock epoch the recovery ran at.
        failed: Node ids whose failure this pass absorbed.
        joined: Node ids whose join this pass absorbed.
        reprimed: Node states the engine invalidated (they re-ship full
            views on the next epoch — the session's recovery traffic).
        repair_edges: Tree edges the network's incremental repair
            created for these events (attach handshakes on the air).
    """

    epoch: int
    failed: tuple[int, ...]
    joined: tuple[int, ...]
    reprimed: int
    repair_edges: int


@dataclass
class RecoveryLog:
    """Per-session churn-recovery accounting (shown on the panel)."""

    records: list[RecoveryRecord] = field(default_factory=list)

    def record(self, entry: RecoveryRecord) -> None:
        """Append one recovery pass."""
        self.records.append(entry)

    @property
    def events(self) -> int:
        """Total churn events this session recovered from."""
        return sum(len(r.failed) + len(r.joined) for r in self.records)

    @property
    def failures(self) -> int:
        """Node failures absorbed."""
        return sum(len(r.failed) for r in self.records)

    @property
    def joins(self) -> int:
        """Node joins absorbed."""
        return sum(len(r.joined) for r in self.records)

    @property
    def reprimed(self) -> int:
        """Total node states invalidated and re-primed."""
        return sum(r.reprimed for r in self.records)

    @property
    def repair_edges(self) -> int:
        """Total repair edges (attach handshakes) absorbed."""
        return sum(r.repair_edges for r in self.records)

    def summary(self) -> dict[str, int]:
        """Headline recovery counters (for printing / JSON)."""
        return {
            "events": self.events,
            "failures": self.failures,
            "joins": self.joins,
            "reprimed": self.reprimed,
            "repair_edges": self.repair_edges,
        }


class RecordedPanel:
    """A panel-shaped view over already-recorded savings samples.

    Live :class:`SystemPanel` instances observe two stat ledgers and
    cannot leave their process; shard workers therefore serialize the
    *samples* (plain frozen dataclasses) into their result envelope,
    and the merging side rebuilds this read-only stand-in — exposing
    the same ``samples`` / ``cumulative`` surface — so
    :meth:`SystemPanel.aggregate` can fold fleet-wide savings across
    process boundaries exactly as it does across live sessions.
    """

    def __init__(self, samples: Iterable[SavingsSample]):
        self.samples: list[SavingsSample] = list(samples)
        self._totals: SavingsSample | None = None
        for sample in self.samples:
            self._totals = (sample if self._totals is None
                            else self._totals.plus(
                                sample,
                                epoch=max(self._totals.epoch, sample.epoch)))

    @classmethod
    def from_dicts(cls, dicts: "Iterable[dict]") -> "RecordedPanel":
        """Rebuild from :meth:`SavingsSample.as_dict` payloads (the
        derived ``*_pct`` keys are recomputed, not trusted)."""
        fields_wanted = ("epoch", "messages", "baseline_messages",
                        "payload_bytes", "baseline_payload_bytes",
                        "radio_joules", "baseline_radio_joules")
        return cls(SavingsSample(**{name: entry[name]
                                    for name in fields_wanted})
                   for entry in dicts)

    @property
    def cumulative(self) -> SavingsSample:
        """Totals over the recorded series (mirrors
        :attr:`SystemPanel.cumulative`) — pre-folded at construction,
        O(1) per read."""
        if self._totals is None:
            raise ValidationError("no epochs sampled yet")
        return self._totals


class SystemPanel:
    """Tracks two stat ledgers and derives the savings series.

    The panel observes the stats of the network running the KSpot
    algorithm and the stats of an identical shadow network running the
    baseline, sampling both once per epoch. When the session hands the
    panel its :class:`RecoveryLog`, the wall display can show how much
    churn the session has survived next to the savings series.
    """

    def __init__(self, system: NetworkStats, baseline: NetworkStats,
                 baseline_name: str = "tag",
                 recovery: RecoveryLog | None = None):
        self._system = system
        self._baseline = baseline
        self.baseline_name = baseline_name
        self.recovery = recovery
        self._last_system = system.snapshot()
        self._last_baseline = baseline.snapshot()
        self.samples: list[SavingsSample] = []
        self._epoch = 0
        #: Running component-wise total, accumulated per sample so
        #: :attr:`cumulative` is O(1) instead of re-summing the series.
        self._totals: SavingsSample | None = None

    def sample(self) -> SavingsSample:
        """Close the current epoch and record its savings."""
        system_now = self._system.snapshot()
        baseline_now = self._baseline.snapshot()
        system_delta = system_now.minus(self._last_system)
        baseline_delta = baseline_now.minus(self._last_baseline)
        entry = SavingsSample(
            epoch=self._epoch,
            messages=system_delta.messages,
            baseline_messages=baseline_delta.messages,
            payload_bytes=system_delta.payload_bytes,
            baseline_payload_bytes=baseline_delta.payload_bytes,
            radio_joules=system_delta.tx_joules + system_delta.rx_joules,
            baseline_radio_joules=(baseline_delta.tx_joules
                                   + baseline_delta.rx_joules),
        )
        self.samples.append(entry)
        self._totals = (entry if self._totals is None
                        else self._totals.plus(entry, epoch=entry.epoch))
        self._last_system = system_now
        self._last_baseline = baseline_now
        self._epoch += 1
        return entry

    @staticmethod
    def _summed(samples: "Iterable[SavingsSample]",
                epoch: int) -> SavingsSample:
        """One sample holding the component-wise totals of many."""
        samples = tuple(samples)
        return SavingsSample(
            epoch=epoch,
            messages=sum(s.messages for s in samples),
            baseline_messages=sum(s.baseline_messages for s in samples),
            payload_bytes=sum(s.payload_bytes for s in samples),
            baseline_payload_bytes=sum(
                s.baseline_payload_bytes for s in samples),
            radio_joules=sum(s.radio_joules for s in samples),
            baseline_radio_joules=sum(
                s.baseline_radio_joules for s in samples),
        )

    @property
    def cumulative(self) -> SavingsSample:
        """Totals since the panel started observing (the running
        accumulation — O(1), not a re-sum of the series)."""
        if self._totals is None:
            raise ValidationError("no epochs sampled yet")
        return self._totals

    @staticmethod
    def aggregate(panels: "Iterable[SystemPanel]") -> SavingsSample:
        """Fleet-wide savings across many sessions' panels.

        The multi-query server keeps one panel per session; the wall
        display wants a single number for the whole deployment. Sums
        every panel's cumulative costs (panels that have not sampled an
        epoch yet contribute zero) and reports them as one sample whose
        ``epoch`` is the deepest epoch any panel has closed.
        """
        panels = tuple(panels)
        if not panels:
            raise ValidationError("no panels to aggregate")
        totals = [panel.cumulative for panel in panels if panel.samples]
        if not totals:
            raise ValidationError("no epochs sampled yet")
        return SystemPanel._summed(totals,
                                   epoch=max(s.epoch for s in totals))
