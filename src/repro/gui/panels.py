"""Panel models of the KSpot GUI (§II, Figure 3).

Each class holds exactly the state the corresponding Swing panel
displays. They are plain models: the ASCII renderer (or any other
front-end) consumes them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Iterable

from ..errors import ConfigurationError, ValidationError
from ..query.ast_nodes import Query
from ..query.parser import parse
from ..core.results import EpochResult


@dataclass
class ConfigurationPanel:
    """Cluster configuration: which nodes belong to which region.

    "Through this panel the user can specify which nodes belong to (are
    clustered in) the same physical region (e.g., Auditorium,
    Conference Rooms, Coffee Stations, etc.)"
    """

    cluster_of: dict[int, Hashable] = field(default_factory=dict)

    def assign(self, node_id: int, cluster: Hashable) -> None:
        """Put a node into a cluster (drag it onto a region)."""
        self.cluster_of[node_id] = cluster

    def remove(self, node_id: int) -> None:
        """Remove a node from its cluster."""
        self.cluster_of.pop(node_id, None)

    def clusters(self) -> dict[Hashable, tuple[int, ...]]:
        """Cluster → sorted member node ids."""
        members: dict[Hashable, list[int]] = {}
        for node_id, cluster in self.cluster_of.items():
            members.setdefault(cluster, []).append(node_id)
        return {cluster: tuple(sorted(nodes))
                for cluster, nodes in sorted(members.items(), key=lambda i: str(i[0]))}

    def validate_against(self, node_ids: Iterable[int]) -> None:
        """Every configured node must exist in the deployment."""
        known = set(node_ids)
        unknown = sorted(set(self.cluster_of) - known)
        if unknown:
            raise ConfigurationError(
                f"configuration references unknown sensors: {unknown}"
            )


@dataclass
class QueryPanel:
    """Query construction: builds or accepts SQL-like query text.

    The panel supports both paths of the paper — graphical construction
    (:meth:`build`) and manual entry (:meth:`set_text`) — and echoes
    the canonical query back.
    """

    text: str = ""
    query: Query | None = None

    def set_text(self, text: str) -> Query:
        """Manual entry: parse and echo."""
        self.query = parse(text)
        self.text = self.query.unparse()
        return self.query

    def build(self, k: int | None, aggregate: str, attribute: str,
              group_by: str | None = "roomid",
              epoch_duration: str | None = None,
              history: str | None = None) -> Query:
        """Graphical construction: assemble the query from widget state."""
        parts = ["SELECT"]
        if k is not None:
            parts.append(f"TOP {k}")
        select = []
        if group_by:
            select.append(group_by)
        select.append(f"{aggregate.upper()}({attribute})")
        parts.append(", ".join(select))
        parts.append("FROM sensors")
        if group_by:
            parts.append(f"GROUP BY {group_by}")
        if epoch_duration:
            parts.append(f"EPOCH DURATION {epoch_duration}")
        if history:
            parts.append(f"WITH HISTORY {history}")
        return self.set_text(" ".join(parts))


@dataclass(frozen=True)
class KSpotBullet:
    """One red ranking bullet on the map: a cluster and its rank.

    "the panel highlights the K-highest ranked clusters by utilizing a
    red bullet, coined the KSpot Bullet, which projects the rank of the
    given cluster at any given time instance."
    """

    rank: int
    cluster: Hashable
    score: float

    @property
    def label(self) -> str:
        """The rank digit drawn inside the bullet."""
        return f"({self.rank})"


@dataclass
class DisplayPanel:
    """The map display: floor plan, sensor positions, cluster links,
    and the continuously re-ranked KSpot bullets."""

    width: float
    height: float
    positions: dict[int, tuple[float, float]] = field(default_factory=dict)
    cluster_of: dict[int, Hashable] = field(default_factory=dict)
    bullets: tuple[KSpotBullet, ...] = ()
    #: Stand-in for the JPG floor plan: a caption drawn as the header.
    floor_plan_caption: str = "floor plan"

    def place(self, node_id: int, x: float, y: float) -> None:
        """Drag-and-drop a sensor onto the map."""
        if not (0 <= x <= self.width and 0 <= y <= self.height):
            raise ValidationError(
                f"({x}, {y}) is outside the {self.width}x{self.height} map"
            )
        self.positions[node_id] = (x, y)

    def cluster_members(self, cluster: Hashable) -> tuple[int, ...]:
        """Sorted sensors of one cluster (joined by black lines)."""
        return tuple(sorted(
            node_id for node_id, c in self.cluster_of.items() if c == cluster
        ))

    def cluster_centroid(self, cluster: Hashable) -> tuple[float, float]:
        """Where the cluster's bullet is drawn."""
        members = [self.positions[n] for n in self.cluster_members(cluster)
                   if n in self.positions]
        if not members:
            raise ValidationError(f"cluster {cluster!r} has no placed sensors")
        return (sum(p[0] for p in members) / len(members),
                sum(p[1] for p in members) / len(members))

    def update_ranking(self, result: EpochResult) -> tuple[KSpotBullet, ...]:
        """Re-rank the bullets from a fresh epoch result."""
        self.bullets = tuple(
            KSpotBullet(rank=rank, cluster=item.key, score=item.score)
            for rank, item in enumerate(result.items, start=1)
        )
        return self.bullets
