"""Scenario configuration files (Configuration Panel load/store).

"The Configuration Panel … enables the user to load a new scenario
from a configuration file or to create a new scenario that can be
stored in a configuration file." The format here is JSON: sensor
positions, cluster membership, map dimensions, the sensed attribute
and the radio range — everything needed to re-deploy the network.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from ..errors import ScenarioError
from ..network.simulator import Network
from ..network.topology import Topology
from ..sensing.board import SensorBoard
from ..sensing.generators import FieldGenerator
from .panels import ConfigurationPanel, DisplayPanel

FORMAT_VERSION = 1


@dataclass
class ScenarioConfig:
    """A serializable deployment description."""

    name: str
    map_width: float
    map_height: float
    radio_range: float
    attribute: str = "sound"
    sink_position: tuple[float, float] = (0.0, 0.0)
    positions: dict[int, tuple[float, float]] = field(default_factory=dict)
    cluster_of: dict[int, str] = field(default_factory=dict)
    floor_plan_caption: str = "floor plan"

    def validate(self) -> None:
        """Structural checks before deployment or saving."""
        if not self.positions:
            raise ScenarioError("scenario has no sensors")
        if self.radio_range <= 0:
            raise ScenarioError("radio range must be positive")
        for node_id, (x, y) in self.positions.items():
            if node_id == 0:
                raise ScenarioError("node id 0 is reserved for the sink")
            if not (0 <= x <= self.map_width and 0 <= y <= self.map_height):
                raise ScenarioError(
                    f"sensor {node_id} at ({x}, {y}) lies outside the map"
                )
        stray = sorted(set(self.cluster_of) - set(self.positions))
        if stray:
            raise ScenarioError(
                f"clustered sensors without positions: {stray}"
            )

    # ------------------------------------------------------------------
    # Deployment
    # ------------------------------------------------------------------

    def to_topology(self) -> Topology:
        """Physical layout for the simulator."""
        self.validate()
        positions: dict[int, tuple[float, float]] = {0: self.sink_position}
        positions.update(self.positions)
        return Topology(positions=positions, radio_range=self.radio_range)

    def deploy(self, field_generator: FieldGenerator,
               quantize: bool = True) -> Network:
        """Instantiate the network with boards sensing the given field."""
        boards = {
            node_id: SensorBoard({self.attribute: field_generator},
                                 quantize=quantize)
            for node_id in self.positions
        }
        return Network(self.to_topology(), boards=boards,
                       group_of=dict(self.cluster_of))

    def panels(self) -> tuple[ConfigurationPanel, DisplayPanel]:
        """The GUI panels pre-populated from this scenario."""
        configuration = ConfigurationPanel(
            cluster_of=dict(self.cluster_of))
        display = DisplayPanel(
            width=self.map_width,
            height=self.map_height,
            positions={0: self.sink_position, **self.positions},
            cluster_of=dict(self.cluster_of),
            floor_plan_caption=self.floor_plan_caption,
        )
        return configuration, display


def save_scenario(config: ScenarioConfig, path: str | Path) -> None:
    """Write a scenario to a JSON configuration file."""
    config.validate()
    payload = {
        "version": FORMAT_VERSION,
        "name": config.name,
        "map": {"width": config.map_width, "height": config.map_height},
        "radio_range": config.radio_range,
        "attribute": config.attribute,
        "sink": list(config.sink_position),
        "floor_plan_caption": config.floor_plan_caption,
        "sensors": [
            {
                "id": node_id,
                "x": x,
                "y": y,
                "cluster": config.cluster_of.get(node_id),
            }
            for node_id, (x, y) in sorted(config.positions.items())
        ],
    }
    Path(path).write_text(json.dumps(payload, indent=2))


def load_scenario(path: str | Path) -> ScenarioConfig:
    """Read a scenario from a JSON configuration file."""
    try:
        payload = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as error:
        raise ScenarioError(f"cannot load scenario: {error}") from error
    if payload.get("version") != FORMAT_VERSION:
        raise ScenarioError(
            f"unsupported scenario version {payload.get('version')!r}"
        )
    try:
        positions = {
            int(sensor["id"]): (float(sensor["x"]), float(sensor["y"]))
            for sensor in payload["sensors"]
        }
        cluster_of = {
            int(sensor["id"]): sensor["cluster"]
            for sensor in payload["sensors"]
            if sensor.get("cluster") is not None
        }
        config = ScenarioConfig(
            name=payload["name"],
            map_width=float(payload["map"]["width"]),
            map_height=float(payload["map"]["height"]),
            radio_range=float(payload["radio_range"]),
            attribute=payload.get("attribute", "sound"),
            sink_position=tuple(payload.get("sink", (0.0, 0.0))),
            positions=positions,
            cluster_of=cluster_of,
            floor_plan_caption=payload.get("floor_plan_caption",
                                           "floor plan"),
        )
    except (KeyError, TypeError, ValueError) as error:
        raise ScenarioError(f"malformed scenario file: {error}") from error
    config.validate()
    return config
