"""Exception hierarchy for the KSpot reproduction.

Every error raised by the library derives from :class:`KSpotError`, so
applications can catch a single base class. Subsystems raise the most
specific subclass that applies.
"""

from __future__ import annotations


class KSpotError(Exception):
    """Base class for every error raised by this library."""


class ConfigurationError(KSpotError):
    """A scenario, topology, or component was configured inconsistently."""


class QueryError(KSpotError):
    """Base class for errors in the SQL-like query pipeline."""


class LexError(QueryError):
    """The query text contains a character sequence that is not a token."""

    def __init__(self, message: str, position: int, line: int, column: int):
        super().__init__(f"{message} (line {line}, column {column})")
        self.position = position
        self.line = line
        self.column = column


class ParseError(QueryError):
    """The token stream does not form a valid query."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        if line or column:
            super().__init__(f"{message} (line {line}, column {column})")
        else:
            super().__init__(message)
        self.line = line
        self.column = column


class ValidationError(QueryError):
    """The query parsed but is semantically invalid for the schema."""


class PlanError(QueryError):
    """No execution plan could be produced for a valid query."""


class SessionError(PlanError):
    """Base class of the session-lifecycle taxonomy (``repro.api``).

    Subclasses :class:`PlanError` because the pre-facade server raised
    ``PlanError`` for every session mishap — existing ``except
    PlanError`` handlers keep working while new code catches precisely.
    """


class UnknownSessionError(SessionError):
    """A session id does not name any registered session."""


class SubmissionError(SessionError):
    """A submission was rejected before a session could open (e.g. the
    deployment's admission limit reached) — the query itself may be
    perfectly valid. Note it still inherits :class:`QueryError` through
    the compatibility chain, so catch ``SubmissionError`` *before* a
    broad ``except QueryError`` to tell admission rejections apart from
    malformed queries."""


class TopologyError(ConfigurationError):
    """The network topology is unusable (e.g. disconnected from the sink)."""


class RoutingError(KSpotError):
    """A message could not be routed (dead parent, unknown destination)."""


class StorageError(KSpotError):
    """Base class for local-storage failures on a node."""


class StorageFullError(StorageError):
    """The flash device or window buffer has no free space left."""


class ProtocolError(KSpotError):
    """An algorithm received a message that violates its protocol phase."""


class CertificationError(KSpotError):
    """A result was requested before its top-k certification completed."""


class ScenarioError(ConfigurationError):
    """A scenario configuration file is malformed."""
