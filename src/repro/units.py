"""Physical and temporal units used throughout the simulator.

The query language expresses epoch durations and history intervals in
human units (``1 min``, ``3 months``); the simulator works in integer
epochs and seconds. This module centralises the conversions so every
subsystem agrees on them.
"""

from __future__ import annotations

from dataclasses import dataclass

from .errors import ValidationError

#: Seconds per supported time unit. Months follow the 30-day convention
#: common in sliding-window stream systems.
_SECONDS_PER_UNIT = {
    "ms": 0.001,
    "millisecond": 0.001,
    "milliseconds": 0.001,
    "s": 1.0,
    "sec": 1.0,
    "secs": 1.0,
    "second": 1.0,
    "seconds": 1.0,
    "min": 60.0,
    "mins": 60.0,
    "minute": 60.0,
    "minutes": 60.0,
    "h": 3600.0,
    "hour": 3600.0,
    "hours": 3600.0,
    "day": 86400.0,
    "days": 86400.0,
    "week": 604800.0,
    "weeks": 604800.0,
    "month": 2592000.0,
    "months": 2592000.0,
}


@dataclass(frozen=True)
class Duration:
    """An exact duration expressed as ``amount`` of ``unit``.

    >>> Duration(1, "min").seconds
    60.0
    >>> Duration(3, "months").epochs(epoch_seconds=86400.0)
    90
    """

    amount: float
    unit: str

    def __post_init__(self) -> None:
        if self.unit.lower() not in _SECONDS_PER_UNIT:
            raise ValidationError(f"unknown time unit: {self.unit!r}")
        if self.amount < 0:
            raise ValidationError("durations must be non-negative")

    @property
    def seconds(self) -> float:
        """The duration in seconds."""
        return self.amount * _SECONDS_PER_UNIT[self.unit.lower()]

    def epochs(self, epoch_seconds: float) -> int:
        """Number of whole epochs this duration spans (at least 1).

        The paper's queries buffer history "in a sliding window fashion";
        a window shorter than one epoch still holds the current epoch.
        """
        if epoch_seconds <= 0:
            raise ValidationError("epoch duration must be positive")
        return max(1, round(self.seconds / epoch_seconds))

    def __str__(self) -> str:
        amount = int(self.amount) if self.amount == int(self.amount) else self.amount
        return f"{amount} {self.unit}"


def known_units() -> tuple[str, ...]:
    """All accepted unit spellings (lower-case)."""
    return tuple(sorted(_SECONDS_PER_UNIT))


#: Convenience aliases for energy arithmetic (joules).
MILLIJOULE = 1e-3
MICROJOULE = 1e-6


def joules_from_current(current_amps: float, volts: float, seconds: float) -> float:
    """Energy drawn by a component pulling ``current_amps`` for ``seconds``.

    MICA2 components are specified by current draw at 3 V in their
    datasheets, which is how the energy model is calibrated.
    """
    if current_amps < 0 or volts < 0 or seconds < 0:
        raise ValidationError("current, voltage and time must be non-negative")
    return current_amps * volts * seconds
