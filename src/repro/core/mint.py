"""MINT: Materialized In-Network Top-k views (§III-A).

The algorithm runs in the paper's three phases every epoch, plus the
probe fallback that makes answers provably exact:

1. **Creation** (first epoch): full TAG-style views converge-cast to
   the sink. Ancestors cache the views — the "superset view of their
   descendants" — and the sink learns every group's sensor cardinality
   per child subtree (group membership is static).
2. **Pruning**: each node merges its reading with its children's
   cached reports into V_i, keeps the top-(k + slack) groups as V'_i,
   and computes the γ descriptor bounding everything pruned in its
   subtree.
3. **Update**: the node ships only the *delta* between V'_i and what
   its parent caches — changed partials, retractions of groups that
   fell out of V'_i, and γ when the cached one would no longer bound.

The sink then derives a certified interval per group (per-child γ and
per-child missing-mass accounting) and, when the intervals do not
certify the top-k, runs a **probe** round that fetches the withheld
partials of precisely the ambiguous groups — after which the answer is
exact. This is how the Figure-1 trap resolves: room D's pruned
``(D, 39)`` partial makes D's interval wide, D is probed, and the
correct answer ``(C, 75)`` emerges.

An optional adaptive controller grows ``slack`` after epochs that
probed and shrinks it after quiet ones, trading view size against
probe traffic (ablated in experiment E10).

Switch-and-prove: the fused single-pass update phase and the
incremental ``TopKView`` certification run only while
``hotpath.enabled()``; under ``hotpath.reference_path()`` the
first-principles branches and the cold ``certify_top_k`` oracle take
over. ``tests/test_hotpath_equivalence.py`` and
``tests/test_delta_equivalence.py`` prove both paths byte-identical
(answers, certifications, stats, ledgers, RNG draws).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Mapping

from ..errors import ProtocolError, ValidationError
from ..network import eventsim, hotpath
from ..network.messages import (
    ProbeReplyMessage,
    ProbeRequestMessage,
    QueryMessage,
    ViewEntry,
    ViewUpdateMessage,
)
from ..network.simulator import Network
from .aggregates import Aggregate, Bounds, Partial, SortKeys
from .certify import certify_top_k
from .delta import TopKView
from .descriptors import should_reship_gamma, subtree_gamma
from .results import EpochResult, rank_key
from .views import MintNodeState, max_gamma

GroupKey = Hashable


@dataclass
class MintConfig:
    """Tunables of the pruning framework.

    Attributes:
        slack: Extra groups kept beyond k (keep-count = k + slack).
            Slack 0 prunes hardest but probes most; the paper's γ
            framework keeps answers exact either way.
        adaptive: Grow slack after a probing epoch, shrink it after
            ``quiet_epochs`` consecutive probe-free epochs.
        max_slack: Ceiling for the adaptive controller.
        quiet_epochs: Probe-free epochs before slack shrinks.
        gamma_hysteresis: Tightening margin below which a smaller γ is
            not worth a message.
    """

    slack: int | None = None
    adaptive: bool = False
    max_slack: int = 16
    quiet_epochs: int = 8
    gamma_hysteresis: float = 1.0


class Mint:
    """One MINT execution over a deployed network."""

    name = "mint"

    def __init__(self, network: Network, aggregate: Aggregate, k: int,
                 group_of: Mapping[int, GroupKey],
                 attribute: str = "sound",
                 config: MintConfig | None = None,
                 window_epochs: int | None = None):
        """Args:
            network: The deployed simulator.
            aggregate: Ranking aggregate with attribute bounds.
            k: Ranking depth.
            group_of: Sensor id → group key. Sensors absent from the
                mapping do not participate (static WHERE pre-filter).
            attribute: Sensed attribute to acquire.
            window_epochs: When set, rank windowed aggregates of the
                last ``window_epochs`` readings instead of snapshots
                (the historic-horizontal mode of §III-B).
        """
        if k < 1:
            raise ValidationError("k must be >= 1")
        self.network = network
        self.aggregate = aggregate
        self.k = k
        self.attribute = attribute
        self.group_of = dict(group_of)
        self.config = config or MintConfig()
        self.window_epochs = window_epochs
        self.slack = self.config.slack if self.config.slack is not None else k
        self.states: dict[int, MintNodeState] = {
            node_id: MintNodeState() for node_id in network.tree.sensor_ids
        }
        self.created = False
        #: Sink knowledge: group → total count, and per sink-child counts.
        self.group_totals: dict[GroupKey, int] = {}
        self.child_group_totals: dict[int, dict[GroupKey, int]] = {}
        self._quiet_streak = 0
        self.probes_run = 0
        self._totals_stale = False
        #: Hot-path memo of per-group string sort keys.
        self._gstr = SortKeys()
        #: Hot-path memo of lifted reading partials (value → Partial;
        #: readings are ADC-quantized, so the domain is small).
        self._lift_memo: dict[float, Partial] = {}
        #: Hot-path memo of the participant tuple (see _participants).
        self._participants_cache: tuple | None = None
        #: Hot path: the sink's maintained certification view plus the
        #: bounds cache it mirrors. The update phase marks the groups
        #: whose sink-child reports moved; only those re-derive bounds
        #: and re-enter the view (O(|dirty| · log N) per epoch instead
        #: of a full _sink_bounds + certify_top_k re-rank).
        self._sink_view = TopKView(k)
        self._sink_cache: dict[GroupKey, Bounds] | None = None
        self._sink_dirty: set[GroupKey] = set()
        #: Groups the last probe collapsed to points in the view; their
        #: pristine cached intervals are restored next epoch before the
        #: dirty recompute.
        self._probe_restore: tuple[GroupKey, ...] = ()

    # ------------------------------------------------------------------
    # Acquisition
    # ------------------------------------------------------------------

    def _participants(self) -> tuple[int, ...]:
        if hotpath.enabled():
            # Keyed by identity of the (cached) alive tuple and the
            # membership dict: the network rebuilds the former only on
            # topology change, the engine rebinds the latter only on
            # newborn adoption.
            alive = self.network.alive_sensor_ids()
            group_of = self.group_of
            cache = self._participants_cache
            if (cache is not None and cache[0] is alive
                    and cache[1] is group_of):
                return cache[2]
            result = tuple(n for n in alive if n in group_of)
            self._participants_cache = (alive, group_of, result)
            return result
        return tuple(
            node_id for node_id in self.network.alive_sensor_ids()
            if node_id in self.group_of
        )

    def _acquire(self) -> dict[int, Partial]:
        """Sample every participant and lift readings into partials.

        In windowed mode the node first reduces its local history
        window (the "local search and filtering" of §III-B) and the
        window aggregate becomes its contribution.
        """
        contributions: dict[int, Partial] = {}
        nodes = self.network.nodes
        epoch = self.network.epoch
        attribute = self.attribute
        from_value = self.aggregate.from_value
        if self.window_epochs is None:
            if hotpath.enabled():
                # Readings are quantized to the modality's ADC, so the
                # same few hundred values recur; lifted partials are
                # immutable and safe to share across nodes and epochs.
                # Acquisition goes through the columnar batch read —
                # one batch_values call per board channel, shared with
                # any concurrent session over the same participants.
                memo = self._lift_memo
                if len(memo) > 4096:
                    memo.clear()
                readings = self.network.read_many(
                    self._participants(), attribute)
                for node_id, value in readings.items():
                    partial = memo.get(value)
                    if partial is None:
                        partial = memo[value] = from_value(value)
                    contributions[node_id] = partial
            else:
                for node_id in self._participants():
                    contributions[node_id] = from_value(
                        nodes[node_id].read(attribute, epoch))
            return contributions
        window_func = (self.aggregate.func.lower()
                       if self.aggregate.func != "COUNT" else "avg")
        for node_id in self._participants():
            node = nodes[node_id]
            node.read(attribute, epoch)
            value = node.window_for(attribute).aggregate(
                window_func, last_n=self.window_epochs)
            contributions[node_id] = from_value(value)
        return contributions

    # ------------------------------------------------------------------
    # Phases
    # ------------------------------------------------------------------

    def _rebuild_view(self, node_id: int,
                      contribution: Partial | None) -> dict[GroupKey, Partial]:
        """V_i: own contribution merged with children's cached reports."""
        view: dict[GroupKey, Partial] = {}
        if contribution is not None:
            view[self.group_of[node_id]] = contribution
        nodes = self.network.nodes
        states = self.states
        merge = self.aggregate.merge
        get = view.get
        for child in self.network.tree.children(node_id):
            if not nodes[child].alive:
                continue
            for group, partial in states[child].reported.items():
                existing = get(group)
                view[group] = (partial if existing is None
                               else merge(existing, partial))
        return view

    def _prune(self, view: dict[GroupKey, Partial]
               ) -> tuple[dict[GroupKey, Partial], dict[GroupKey, Partial]]:
        """Split V_i into (kept V'_i, withheld) by local rank.

        Reference-path implementation; the hot path runs the fused
        :meth:`_run_update_phase` instead.
        """
        keep_count = self.k + self.slack
        ranked = sorted(
            view.items(),
            key=lambda item: rank_key(item[0],
                                      self.aggregate.finalize(item[1])),
        )
        kept = dict(ranked[:keep_count])
        withheld = dict(ranked[keep_count:])
        return kept, withheld

    def _update_message(self, state: MintNodeState,
                        kept: Mapping[GroupKey, Partial],
                        gamma: float | None,
                        epoch: int) -> ViewUpdateMessage | None:
        """Delta between V'_i and the parent's cache (None = silence).

        Reference-path implementation; the hot path runs the fused
        :meth:`_run_update_phase` instead.
        """
        changed = tuple(
            ViewEntry(group, partial.value, partial.count)
            for group, partial in sorted(kept.items(),
                                         key=lambda i: str(i[0]))
            if state.reported.get(group) != partial
        )
        retractions = tuple(
            group for group in sorted(state.reported, key=str)
            if group not in kept
        )
        ship_gamma = should_reship_gamma(
            gamma, state.gamma_reported,
            hysteresis=self.config.gamma_hysteresis)
        if not changed and not retractions and not ship_gamma:
            return None
        return ViewUpdateMessage(
            epoch=epoch,
            entries=changed,
            gamma=gamma if ship_gamma else None,
            retractions=retractions,
        )

    def _apply_report(self, state: MintNodeState,
                      kept: Mapping[GroupKey, Partial],
                      message: ViewUpdateMessage | None) -> None:
        """Commit what the parent now caches about this subtree."""
        if message is None:
            return
        reported = state.reported
        for group in message.retractions:
            reported.pop(group, None)
        for entry in message.entries:
            # The shipped entry was built from kept[group]; caching the
            # kept partial itself is value-identical and skips the
            # reconstruction.
            reported[entry.group] = kept[entry.group]
        if message.gamma is not None:
            state.gamma_reported = message.gamma

    def _creation_phase(self) -> None:
        """First acquisition: full views up, cardinalities learned."""
        contributions = self._acquire()
        with self.network.stats.phase("creation"):
            self.network.flood_down(
                lambda node_id: QueryMessage(query_id=1))
            for node_id in self.network.converge_cast_order():
                state = self.states[node_id]
                state.view = self._rebuild_view(
                    node_id, contributions.get(node_id))
                state.withheld = {}
                message = ViewUpdateMessage(
                    epoch=self.network.epoch,
                    entries=tuple(
                        ViewEntry(group, partial.value, partial.count)
                        for group, partial in sorted(state.view.items(),
                                                     key=lambda i: str(i[0]))
                    ),
                )
                self.network.send_up(node_id, message)
                state.reported = dict(state.view)
                state.gamma_reported = None
        self.group_totals = {}
        self.child_group_totals = {}
        for child in self.network.tree.children(self.network.sink_id):
            if not self.network.node(child).alive:
                continue
            counts = {
                group: partial.count
                for group, partial in self.states[child].reported.items()
            }
            self.child_group_totals[child] = counts
            for group, count in counts.items():
                self.group_totals[group] = (
                    self.group_totals.get(group, 0) + count)
        self.created = True
        self._totals_stale = False

    def _live_sink_children(self) -> list[int]:
        return [
            child for child in self.network.tree.children(self.network.sink_id)
            if self.network.node(child).alive
        ]

    def _bounds_for_group(self, group: GroupKey, total: int,
                          sink_children: list[int]) -> Bounds:
        """One group's certified interval from the sink's child caches."""
        seen: Partial | None = None
        gamma: float | None = None
        for child in sink_children:
            partial = self.states[child].reported.get(group)
            expected = self.child_group_totals.get(child, {}).get(group, 0)
            seen_count = partial.count if partial is not None else 0
            if partial is not None:
                seen = (partial if seen is None
                        else self.aggregate.merge(seen, partial))
            if seen_count < expected:
                child_gamma = self.states[child].gamma_reported
                if child_gamma is None:
                    raise ProtocolError(
                        f"child {child} withholds mass for group "
                        f"{group!r} without a γ descriptor"
                    )
                gamma = max_gamma(gamma, child_gamma)
        unseen = total - (seen.count if seen is not None else 0)
        return self.aggregate.bounds(seen, unseen, gamma)

    def _sink_bounds(self) -> dict[GroupKey, Bounds]:
        """Certified interval per group from the sink's child caches."""
        sink_children = self._live_sink_children()
        return {
            group: self._bounds_for_group(group, total, sink_children)
            for group, total in self.group_totals.items()
        }

    def _rebuild_sink_state(self) -> dict[GroupKey, Bounds]:
        """Cold start of the incremental sink state: derive every
        group's bounds and reconcile the view (births and deaths of
        groups fall out of the reconcile — churn recovery lands here
        via the cache invalidation in the topology handlers)."""
        cache = self._sink_bounds()
        self._sink_cache = cache
        self._sink_dirty.clear()
        self._probe_restore = ()
        self._sink_view.reconcile(cache)
        return cache

    def _refresh_sink_state(self) -> dict[GroupKey, Bounds]:
        """Re-derive bounds for the dirty groups only, feed the deltas
        into the maintained view, and return the full (cached) mapping
        — the hot-path replacement for a cold :meth:`_sink_bounds`."""
        cache = self._sink_cache
        if cache is None:
            return self._rebuild_sink_state()
        dirty = self._sink_dirty
        if dirty:
            sink_children = self._live_sink_children()
            totals = self.group_totals
            for group in dirty:
                total = totals.get(group)
                if total is None:
                    continue
                cache[group] = self._bounds_for_group(
                    group, total, sink_children)
        view_set = self._sink_view.set
        for group in self._probe_restore:
            # Undo last epoch's probe collapse unless the group is
            # dirty anyway (then the loop below re-asserts it).
            if group not in dirty and group in cache:
                view_set(group, cache[group])
        self._probe_restore = ()
        for group in dirty:
            interval = cache.get(group)
            if interval is not None:
                view_set(group, interval)
        dirty.clear()
        return cache

    def _probe(self, groups: tuple[GroupKey, ...]) -> dict[GroupKey, Partial]:
        """Fetch the withheld partials of the ambiguous groups.

        The request floods down; replies converge-cast back up, merging
        withheld partials per group. Only nodes with content (their own
        withheld tuples or a descendant's reply) transmit.
        """
        probe_set = set(groups)
        network = self.network
        states = self.states
        merge = self.aggregate.merge
        epoch = network.epoch
        sink_id = network.sink_id
        children_of = network.tree.children
        hot = hotpath.enabled()
        with network.stats.phase("probe"):
            # The request is identical at every forwarding hop: build
            # it once (its payload size memoizes on first ship).
            request = ProbeRequestMessage(
                epoch=epoch,
                groups=tuple(sorted(probe_set, key=str)))
            network.flood_down(lambda node_id: request)
            replies: dict[int, dict[GroupKey, Partial]] = {}
            collected: dict[GroupKey, Partial] = {}
            for node_id in network.converge_cast_order():
                payload: dict[GroupKey, Partial] = {}
                state = states[node_id]
                for group, partial in state.withheld.items():
                    if group in probe_set:
                        existing = payload.get(group)
                        payload[group] = (
                            partial if existing is None
                            else merge(existing, partial))
                for child in children_of(node_id):
                    reply = replies.get(child)
                    if not reply:
                        continue
                    for group, partial in reply.items():
                        existing = payload.get(group)
                        payload[group] = (
                            partial if existing is None
                            else merge(existing, partial))
                if not payload:
                    continue
                message = ProbeReplyMessage(
                    epoch=epoch,
                    entries=tuple(
                        ViewEntry(group, partial.value, partial.count)
                        for group, partial in sorted(payload.items(),
                                                     key=lambda i: str(i[0]))
                    ),
                )
                if hot:
                    parent = network.tree._parents[node_id]
                    network._ship_unicast(node_id, parent, message)
                else:
                    parent = network.send_up(node_id, message)
                if parent == sink_id:
                    for group, partial in payload.items():
                        existing = collected.get(group)
                        collected[group] = (
                            partial if existing is None
                            else merge(existing, partial))
                else:
                    replies[node_id] = payload
        self.probes_run += 1
        return collected

    # ------------------------------------------------------------------
    # Epoch driver
    # ------------------------------------------------------------------

    def run_epoch(self) -> EpochResult:
        """Execute one acquisition round and return the certified top-k."""
        if not self.created:
            self._creation_phase()
            if hotpath.enabled():
                bounds = self._rebuild_sink_state()
                outcome = self._sink_view.outcome()
            else:
                self._sink_cache = None
                bounds = self._sink_bounds()
                outcome = certify_top_k(bounds, self.k)
            result = EpochResult(
                epoch=self.network.epoch,
                items=outcome.items,
                exact=True,
                algorithm=self.name,
                probed=0,
                all_bounds={g: (b.lb, b.ub) for g, b in bounds.items()},
                certification=outcome,
            )
            self.network.advance_epoch()
            return result

        hot = hotpath.enabled()
        if self._totals_stale:
            self._recount_totals()
            self._totals_stale = False
        contributions = self._acquire()
        if hot:
            self._run_update_phase(contributions)
        else:
            self._sink_cache = None
            network = self.network
            states = self.states
            nodes = network.nodes
            tree = network.tree
            epoch = network.epoch
            aggregate = self.aggregate
            contributions_get = contributions.get
            with network.stats.phase("update"):
                for node_id in network.converge_cast_order():
                    state = states[node_id]
                    state.view = self._rebuild_view(
                        node_id, contributions_get(node_id))
                    kept, withheld = self._prune(state.view)
                    state.withheld = withheld
                    child_gammas = [
                        states[child].gamma_reported
                        for child in tree.children(node_id)
                        if nodes[child].alive
                    ]
                    gamma = subtree_gamma(aggregate, withheld, child_gammas)
                    message = self._update_message(state, kept, gamma, epoch)
                    if message is not None:
                        network.send_up(node_id, message)
                        self._apply_report(state, kept, message)

        if hot:
            bounds = self._refresh_sink_state()
            outcome = self._sink_view.outcome()
        else:
            bounds = self._sink_bounds()
            outcome = certify_top_k(bounds, self.k)
        probed = 0
        if outcome.needs_probe:
            collected = self._probe(outcome.ambiguous)
            probed = 1
            if hot:
                # Copy-on-probe: the cache keeps the pristine intervals
                # (next epoch's dirty recompute diffs against them);
                # only the result's all_bounds and the view see points.
                bounds = dict(bounds)
            restore = []
            for group, extra in collected.items():
                # Merge the probe mass with the already-seen partial
                # (recomputed from the sink's child caches).
                seen = self._seen_partial(group)
                merged = (extra if seen is None
                          else self.aggregate.merge(seen, extra))
                exact = self.aggregate.finalize(merged)
                if merged.count != self.group_totals[group]:
                    raise ProtocolError(
                        f"probe for {group!r} returned {merged.count} of "
                        f"{self.group_totals[group]} readings"
                    )
                point = Bounds(exact, exact)
                bounds[group] = point
                if hot:
                    self._sink_view.set(group, point)
                    restore.append(group)
            if hot:
                self._probe_restore = tuple(restore)
                outcome = self._sink_view.outcome()
            else:
                outcome = certify_top_k(bounds, self.k)
            if outcome.needs_probe:
                raise ProtocolError("probe did not certify the result")

        self._adapt_slack(probed)
        result = EpochResult(
            epoch=self.network.epoch,
            items=outcome.items,
            exact=True,
            algorithm=self.name,
            probed=probed,
            all_bounds={g: (b.lb, b.ub) for g, b in bounds.items()},
            certification=outcome,
        )
        self.network.advance_epoch()
        return result

    def _run_update_phase(self, contributions: dict[int, Partial]) -> None:
        """The pruning + update phases, fused into one converge-cast
        pass (hot path).

        Semantically identical to calling :meth:`_rebuild_view`,
        :meth:`_prune`, :func:`~repro.core.descriptors.subtree_gamma`,
        :meth:`_update_message` and :meth:`_apply_report` per node —
        the reference branch in :meth:`run_epoch` still does exactly
        that, and the equivalence property test holds the two paths to
        identical messages, stats and answers. Fusing the pass removes
        five method calls and several intermediate containers per node
        per epoch, which dominates the epoch loop at fleet scale.

        Under the event core the parent-side commit (cache updates,
        sink dirty-marking) becomes an explicit receive handler passed
        to :meth:`~repro.network.simulator.Network.post_unicast`; in
        zero-delay mode the handler fires synchronously at the post
        site, so the commit order — and every byte — matches the
        inline branch below.
        """
        network = self.network
        states = self.states
        nodes = network.nodes
        epoch = network.epoch
        aggregate = self.aggregate
        merge = aggregate.merge
        finalize = aggregate.finalize
        gstr = self._gstr
        group_of = self.group_of
        keep_count = self.k + self.slack
        hysteresis = self.config.gamma_hysteresis
        contributions_get = contributions.get
        children_of = network.tree.children
        parents = network.tree._parents
        ship_unicast = network._ship_unicast
        post_unicast = network.post_unicast if eventsim.enabled() else None
        sink_id = network.sink_id
        sink_dirty = self._sink_dirty
        sort_key = lambda item: (-finalize(item[1]), gstr[item[0]])  # noqa: E731
        wire_key = lambda item: gstr[item[0]]  # noqa: E731  entry order
        with network.stats.phase("update"):
            for node_id in network.converge_cast_order():
                state = states[node_id]
                contribution = contributions_get(node_id)
                children = children_of(node_id)
                # -- leaf fast path ---------------------------------
                # A leaf's view is just its own contribution: no merge,
                # no pruning, no γ, and the delta is one comparison.
                if not children:
                    reported = state.reported
                    if contribution is None:
                        state.view = {}
                        state.withheld = {}
                        if not reported:
                            continue
                        kept: dict[GroupKey, Partial] = {}
                        changed = []
                    else:
                        group = group_of[node_id]
                        state.view = kept = {group: contribution}
                        state.withheld = {}
                        if (len(reported) == 1
                                and reported.get(group) == contribution):
                            continue
                        changed = ([(group, contribution)]
                                   if reported.get(group) != contribution
                                   else [])
                    if reported.keys() <= kept.keys():
                        retractions: tuple = ()
                    else:
                        retractions = tuple(
                            g for g in sorted(reported,
                                              key=gstr.__getitem__)
                            if g not in kept)
                    if not changed and not retractions:
                        continue
                    message = ViewUpdateMessage(
                        epoch=epoch,
                        entries=tuple([ViewEntry(g, p[0], p[1])
                                       for g, p in changed]),
                        retractions=retractions,
                    )
                    parent = parents[node_id]
                    if post_unicast is not None:
                        def commit(parent=parent, reported=reported,
                                   changed=changed,
                                   retractions=retractions):
                            if parent == sink_id:
                                sink_dirty.update(retractions)
                                sink_dirty.update(g for g, _ in changed)
                            for g in retractions:
                                reported.pop(g, None)
                            for g, p in changed:
                                reported[g] = p

                        post_unicast(node_id, parent, message, commit)
                        continue
                    ship_unicast(node_id, parent, message)
                    if parent == sink_id:
                        sink_dirty.update(retractions)
                        sink_dirty.update(g for g, _ in changed)
                    for g in retractions:
                        reported.pop(g, None)
                    for g, p in changed:
                        reported[g] = p
                    continue
                # -- rebuild V_i ------------------------------------
                view: dict[GroupKey, Partial] = {}
                if contribution is not None:
                    view[group_of[node_id]] = contribution
                view_get = view.get
                live_children = []
                for child in children:
                    if not nodes[child].alive:
                        continue
                    live_children.append(child)
                    for group, partial in states[child].reported.items():
                        existing = view_get(group)
                        view[group] = (partial if existing is None
                                       else merge(existing, partial))
                state.view = view
                # -- prune into V'_i + withheld ---------------------
                if len(view) <= keep_count:
                    kept = view
                    withheld: dict[GroupKey, Partial] = {}
                else:
                    ranked = sorted(view.items(), key=sort_key)
                    kept = dict(ranked[:keep_count])
                    withheld = dict(ranked[keep_count:])
                state.withheld = withheld
                # -- γ descriptor -----------------------------------
                gamma = (max(map(finalize, withheld.values()))
                         if withheld else None)
                for child in live_children:
                    child_gamma = states[child].gamma_reported
                    if child_gamma is not None and (
                            gamma is None or child_gamma > gamma):
                        gamma = child_gamma
                # -- delta vs the parent's cache --------------------
                # Only the delta is sorted (into the same wire order
                # the reference path produces by sorting all of kept);
                # steady-state deltas are tiny next to the full view.
                reported = state.reported
                reported_get = reported.get
                changed = [
                    (group, partial)
                    for group, partial in kept.items()
                    if reported_get(group) != partial
                ]
                if len(changed) > 1:
                    changed.sort(key=wire_key)
                if reported.keys() <= kept.keys():
                    retractions = ()
                else:
                    retractions = tuple(
                        group
                        for group in sorted(reported, key=gstr.__getitem__)
                        if group not in kept
                    )
                # Inlined should_reship_gamma (one call per node saved).
                reported_gamma = state.gamma_reported
                if gamma is None:
                    ship_gamma = False
                elif reported_gamma is None or gamma > reported_gamma:
                    ship_gamma = True
                else:
                    ship_gamma = reported_gamma - gamma > hysteresis
                if not changed and not retractions and not ship_gamma:
                    continue
                message = ViewUpdateMessage(
                    epoch=epoch,
                    entries=tuple([ViewEntry(group, partial[0], partial[1])
                                   for group, partial in changed]),
                    gamma=gamma if ship_gamma else None,
                    retractions=retractions,
                )
                # Every node in the converge-cast order is alive and
                # non-root, so the send_up guards are vacuous here.
                parent = parents[node_id]
                if post_unicast is not None:
                    def commit(node_id=node_id, parent=parent, state=state,
                               reported=reported, changed=changed,
                               retractions=retractions, gamma=gamma,
                               ship_gamma=ship_gamma):
                        if parent == sink_id:
                            sink_dirty.update(retractions)
                            sink_dirty.update(g for g, _ in changed)
                            if ship_gamma:
                                sink_dirty.update(
                                    self.child_group_totals.get(node_id, ()))
                        for group in retractions:
                            reported.pop(group, None)
                        for group, partial in changed:
                            reported[group] = partial
                        if ship_gamma:
                            state.gamma_reported = gamma

                    post_unicast(node_id, parent, message, commit)
                    continue
                ship_unicast(node_id, parent, message)
                if parent == sink_id:
                    sink_dirty.update(retractions)
                    sink_dirty.update(group for group, _ in changed)
                    if ship_gamma:
                        # A new γ can move the bound of every group with
                        # unseen mass under this child; the child's
                        # subtree census is the conservative superset.
                        sink_dirty.update(
                            self.child_group_totals.get(node_id, ()))
                # -- commit the parent-side cache -------------------
                for group in retractions:
                    reported.pop(group, None)
                for group, partial in changed:
                    reported[group] = partial
                if ship_gamma:
                    state.gamma_reported = gamma

    def _seen_partial(self, group: GroupKey) -> Partial | None:
        seen: Partial | None = None
        for child in self.network.tree.children(self.network.sink_id):
            if not self.network.node(child).alive:
                continue
            partial = self.states[child].reported.get(group)
            if partial is not None:
                seen = (partial if seen is None
                        else self.aggregate.merge(seen, partial))
        return seen

    def _adapt_slack(self, probed: int) -> None:
        if not self.config.adaptive:
            return
        if probed:
            self.slack = min(self.config.max_slack, self.slack + 1)
            self._quiet_streak = 0
            return
        self._quiet_streak += 1
        if self._quiet_streak >= self.config.quiet_epochs and self.slack > 0:
            self.slack -= 1
            self._quiet_streak = 0

    def handle_topology_change(self) -> None:
        """Nodes died / tree repaired: views must be re-created.

        The blunt fallback — full reset, full re-creation converge-cast
        next epoch. Subscribed sessions use the surgical
        :meth:`handle_topology_event` instead.
        """
        for state in self.states.values():
            state.reset()
        self.created = False
        self._sink_cache = None

    def handle_topology_event(self, event) -> int:
        """Invalidate and re-prime only the subtree state churn touched.

        The event's ``dirty`` set is upward-closed (every dirty node's
        ancestors are dirty too), so resetting exactly those states
        keeps the per-edge cache invariant: a clean node's parent still
        caches its last report, while every dirty node re-ships its
        full pruned view (its empty ``reported`` makes the next delta
        the whole of V'), re-priming the caches along both the old and
        the new attachment paths. The sink's per-subtree cardinalities
        are recounted lazily (once per batch, at the next epoch) from
        the static group membership of the repaired tree. Returns the
        number of node states re-primed.

        Args:
            event: A :class:`~repro.network.events.TopologyEvent`.
        """
        if event.failed:
            self.states.pop(event.node_id, None)
        elif event.joined:
            self.states[event.node_id] = MintNodeState()
        self._sink_cache = None
        if not self.created:
            # Creation has not run yet; the first epoch will learn the
            # repaired topology from scratch anyway.
            return 0
        reprimed = 0
        for node_id in event.dirty:
            state = self.states.get(node_id)
            if state is not None:
                state.reset()
                reprimed += 1
        self._totals_stale = True
        return reprimed

    def _recount_totals(self) -> None:
        """Re-learn group cardinalities from the repaired tree.

        Group membership is static knowledge (the Configuration Panel's
        clusters), so the sink can recount each sink-child subtree's
        per-group totals without any radio traffic.
        """
        self._sink_cache = None
        self.group_totals = {}
        self.child_group_totals = {}
        for child in self.network.tree.children(self.network.sink_id):
            if not self.network.node(child).alive:
                continue
            counts: dict[GroupKey, int] = {}
            for node_id in self.network.tree.subtree(child):
                if (node_id in self.group_of
                        and self.network.node(node_id).alive):
                    group = self.group_of[node_id]
                    counts[group] = counts.get(group, 0) + 1
            self.child_group_totals[child] = counts
            for group, count in counts.items():
                self.group_totals[group] = (
                    self.group_totals.get(group, 0) + count)

    def run(self, epochs: int) -> list[EpochResult]:
        """Convenience driver: ``epochs`` consecutive rounds."""
        return [self.run_epoch() for _ in range(epochs)]
