"""MINT: Materialized In-Network Top-k views (§III-A).

The algorithm runs in the paper's three phases every epoch, plus the
probe fallback that makes answers provably exact:

1. **Creation** (first epoch): full TAG-style views converge-cast to
   the sink. Ancestors cache the views — the "superset view of their
   descendants" — and the sink learns every group's sensor cardinality
   per child subtree (group membership is static).
2. **Pruning**: each node merges its reading with its children's
   cached reports into V_i, keeps the top-(k + slack) groups as V'_i,
   and computes the γ descriptor bounding everything pruned in its
   subtree.
3. **Update**: the node ships only the *delta* between V'_i and what
   its parent caches — changed partials, retractions of groups that
   fell out of V'_i, and γ when the cached one would no longer bound.

The sink then derives a certified interval per group (per-child γ and
per-child missing-mass accounting) and, when the intervals do not
certify the top-k, runs a **probe** round that fetches the withheld
partials of precisely the ambiguous groups — after which the answer is
exact. This is how the Figure-1 trap resolves: room D's pruned
``(D, 39)`` partial makes D's interval wide, D is probed, and the
correct answer ``(C, 75)`` emerges.

An optional adaptive controller grows ``slack`` after epochs that
probed and shrinks it after quiet ones, trading view size against
probe traffic (ablated in experiment E10).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Mapping

from ..errors import ProtocolError, ValidationError
from ..network.messages import (
    ProbeReplyMessage,
    ProbeRequestMessage,
    QueryMessage,
    ViewEntry,
    ViewUpdateMessage,
)
from ..network.simulator import Network
from .aggregates import Aggregate, Bounds, Partial
from .certify import certify_top_k
from .descriptors import should_reship_gamma, subtree_gamma
from .results import EpochResult, rank_key
from .views import MintNodeState, max_gamma

GroupKey = Hashable


@dataclass
class MintConfig:
    """Tunables of the pruning framework.

    Attributes:
        slack: Extra groups kept beyond k (keep-count = k + slack).
            Slack 0 prunes hardest but probes most; the paper's γ
            framework keeps answers exact either way.
        adaptive: Grow slack after a probing epoch, shrink it after
            ``quiet_epochs`` consecutive probe-free epochs.
        max_slack: Ceiling for the adaptive controller.
        quiet_epochs: Probe-free epochs before slack shrinks.
        gamma_hysteresis: Tightening margin below which a smaller γ is
            not worth a message.
    """

    slack: int | None = None
    adaptive: bool = False
    max_slack: int = 16
    quiet_epochs: int = 8
    gamma_hysteresis: float = 1.0


class Mint:
    """One MINT execution over a deployed network."""

    name = "mint"

    def __init__(self, network: Network, aggregate: Aggregate, k: int,
                 group_of: Mapping[int, GroupKey],
                 attribute: str = "sound",
                 config: MintConfig | None = None,
                 window_epochs: int | None = None):
        """Args:
            network: The deployed simulator.
            aggregate: Ranking aggregate with attribute bounds.
            k: Ranking depth.
            group_of: Sensor id → group key. Sensors absent from the
                mapping do not participate (static WHERE pre-filter).
            attribute: Sensed attribute to acquire.
            window_epochs: When set, rank windowed aggregates of the
                last ``window_epochs`` readings instead of snapshots
                (the historic-horizontal mode of §III-B).
        """
        if k < 1:
            raise ValidationError("k must be >= 1")
        self.network = network
        self.aggregate = aggregate
        self.k = k
        self.attribute = attribute
        self.group_of = dict(group_of)
        self.config = config or MintConfig()
        self.window_epochs = window_epochs
        self.slack = self.config.slack if self.config.slack is not None else k
        self.states: dict[int, MintNodeState] = {
            node_id: MintNodeState() for node_id in network.tree.sensor_ids
        }
        self.created = False
        #: Sink knowledge: group → total count, and per sink-child counts.
        self.group_totals: dict[GroupKey, int] = {}
        self.child_group_totals: dict[int, dict[GroupKey, int]] = {}
        self._quiet_streak = 0
        self.probes_run = 0
        self._totals_stale = False

    # ------------------------------------------------------------------
    # Acquisition
    # ------------------------------------------------------------------

    def _participants(self) -> tuple[int, ...]:
        return tuple(
            node_id for node_id in self.network.alive_sensor_ids()
            if node_id in self.group_of
        )

    def _acquire(self) -> dict[int, Partial]:
        """Sample every participant and lift readings into partials.

        In windowed mode the node first reduces its local history
        window (the "local search and filtering" of §III-B) and the
        window aggregate becomes its contribution.
        """
        contributions: dict[int, Partial] = {}
        for node_id in self._participants():
            node = self.network.node(node_id)
            value = node.read(self.attribute, self.network.epoch)
            if self.window_epochs is not None:
                value = node.window_for(self.attribute).aggregate(
                    self.aggregate.func.lower()
                    if self.aggregate.func != "COUNT" else "avg",
                    last_n=self.window_epochs)
            contributions[node_id] = self.aggregate.from_value(value)
        return contributions

    # ------------------------------------------------------------------
    # Phases
    # ------------------------------------------------------------------

    def _rebuild_view(self, node_id: int,
                      contribution: Partial | None) -> dict[GroupKey, Partial]:
        """V_i: own contribution merged with children's cached reports."""
        view: dict[GroupKey, Partial] = {}
        if contribution is not None:
            view[self.group_of[node_id]] = contribution
        for child in self.network.tree.children(node_id):
            if not self.network.node(child).alive:
                continue
            for group, partial in self.states[child].reported.items():
                existing = view.get(group)
                view[group] = (partial if existing is None
                               else self.aggregate.merge(existing, partial))
        return view

    def _prune(self, view: dict[GroupKey, Partial]
               ) -> tuple[dict[GroupKey, Partial], dict[GroupKey, Partial]]:
        """Split V_i into (kept V'_i, withheld) by local rank."""
        keep_count = self.k + self.slack
        ranked = sorted(
            view.items(),
            key=lambda item: rank_key(item[0],
                                      self.aggregate.finalize(item[1])),
        )
        kept = dict(ranked[:keep_count])
        withheld = dict(ranked[keep_count:])
        return kept, withheld

    def _update_message(self, state: MintNodeState,
                        kept: Mapping[GroupKey, Partial],
                        gamma: float | None,
                        epoch: int) -> ViewUpdateMessage | None:
        """Delta between V'_i and the parent's cache (None = silence)."""
        changed = tuple(
            ViewEntry(group, partial.value, partial.count)
            for group, partial in sorted(kept.items(), key=lambda i: str(i[0]))
            if state.reported.get(group) != partial
        )
        retractions = tuple(
            group for group in sorted(state.reported, key=str)
            if group not in kept
        )
        ship_gamma = should_reship_gamma(
            gamma, state.gamma_reported,
            hysteresis=self.config.gamma_hysteresis)
        if not changed and not retractions and not ship_gamma:
            return None
        return ViewUpdateMessage(
            epoch=epoch,
            entries=changed,
            gamma=gamma if ship_gamma else None,
            retractions=retractions,
        )

    def _apply_report(self, state: MintNodeState,
                      kept: Mapping[GroupKey, Partial],
                      message: ViewUpdateMessage | None) -> None:
        """Commit what the parent now caches about this subtree."""
        if message is None:
            return
        for group in message.retractions:
            state.reported.pop(group, None)
        for entry in message.entries:
            state.reported[entry.group] = Partial(entry.value, entry.count)
        if message.gamma is not None:
            state.gamma_reported = message.gamma

    def _creation_phase(self) -> None:
        """First acquisition: full views up, cardinalities learned."""
        contributions = self._acquire()
        with self.network.stats.phase("creation"):
            self.network.flood_down(
                lambda node_id: QueryMessage(query_id=1))
            for node_id in self.network.converge_cast_order():
                state = self.states[node_id]
                state.view = self._rebuild_view(
                    node_id, contributions.get(node_id))
                state.withheld = {}
                state.gamma_current = None
                message = ViewUpdateMessage(
                    epoch=self.network.epoch,
                    entries=tuple(
                        ViewEntry(group, partial.value, partial.count)
                        for group, partial in sorted(state.view.items(),
                                                     key=lambda i: str(i[0]))
                    ),
                )
                self.network.send_up(node_id, message)
                state.reported = dict(state.view)
                state.gamma_reported = None
        self.group_totals = {}
        self.child_group_totals = {}
        for child in self.network.tree.children(self.network.sink_id):
            if not self.network.node(child).alive:
                continue
            counts = {
                group: partial.count
                for group, partial in self.states[child].reported.items()
            }
            self.child_group_totals[child] = counts
            for group, count in counts.items():
                self.group_totals[group] = (
                    self.group_totals.get(group, 0) + count)
        self.created = True
        self._totals_stale = False

    def _sink_bounds(self) -> dict[GroupKey, Bounds]:
        """Certified interval per group from the sink's child caches."""
        bounds: dict[GroupKey, Bounds] = {}
        sink_children = [
            child for child in self.network.tree.children(self.network.sink_id)
            if self.network.node(child).alive
        ]
        for group, total in self.group_totals.items():
            seen: Partial | None = None
            gamma: float | None = None
            for child in sink_children:
                partial = self.states[child].reported.get(group)
                expected = self.child_group_totals.get(child, {}).get(group, 0)
                seen_count = partial.count if partial is not None else 0
                if partial is not None:
                    seen = (partial if seen is None
                            else self.aggregate.merge(seen, partial))
                if seen_count < expected:
                    child_gamma = self.states[child].gamma_reported
                    if child_gamma is None:
                        raise ProtocolError(
                            f"child {child} withholds mass for group "
                            f"{group!r} without a γ descriptor"
                        )
                    gamma = max_gamma(gamma, child_gamma)
            unseen = total - (seen.count if seen is not None else 0)
            bounds[group] = self.aggregate.bounds(seen, unseen, gamma)
        return bounds

    def _probe(self, groups: tuple[GroupKey, ...]) -> dict[GroupKey, Partial]:
        """Fetch the withheld partials of the ambiguous groups.

        The request floods down; replies converge-cast back up, merging
        withheld partials per group. Only nodes with content (their own
        withheld tuples or a descendant's reply) transmit.
        """
        probe_set = set(groups)
        with self.network.stats.phase("probe"):
            self.network.flood_down(
                lambda node_id: ProbeRequestMessage(
                    epoch=self.network.epoch, groups=tuple(sorted(
                        probe_set, key=str))))
            replies: dict[int, dict[GroupKey, Partial]] = {}
            collected: dict[GroupKey, Partial] = {}
            for node_id in self.network.converge_cast_order():
                payload: dict[GroupKey, Partial] = {}
                state = self.states[node_id]
                for group, partial in state.withheld.items():
                    if group in probe_set:
                        existing = payload.get(group)
                        payload[group] = (
                            partial if existing is None
                            else self.aggregate.merge(existing, partial))
                for child in self.network.tree.children(node_id):
                    for group, partial in replies.get(child, {}).items():
                        existing = payload.get(group)
                        payload[group] = (
                            partial if existing is None
                            else self.aggregate.merge(existing, partial))
                if not payload:
                    continue
                message = ProbeReplyMessage(
                    epoch=self.network.epoch,
                    entries=tuple(
                        ViewEntry(group, partial.value, partial.count)
                        for group, partial in sorted(payload.items(),
                                                     key=lambda i: str(i[0]))
                    ),
                )
                parent = self.network.send_up(node_id, message)
                if parent == self.network.sink_id:
                    for group, partial in payload.items():
                        existing = collected.get(group)
                        collected[group] = (
                            partial if existing is None
                            else self.aggregate.merge(existing, partial))
                else:
                    replies[node_id] = payload
        self.probes_run += 1
        return collected

    # ------------------------------------------------------------------
    # Epoch driver
    # ------------------------------------------------------------------

    def run_epoch(self) -> EpochResult:
        """Execute one acquisition round and return the certified top-k."""
        if not self.created:
            self._creation_phase()
            bounds = self._sink_bounds()
            outcome = certify_top_k(bounds, self.k)
            result = EpochResult(
                epoch=self.network.epoch,
                items=outcome.items,
                exact=True,
                algorithm=self.name,
                probed=0,
                all_bounds={g: (b.lb, b.ub) for g, b in bounds.items()},
            )
            self.network.advance_epoch()
            return result

        if self._totals_stale:
            self._recount_totals()
            self._totals_stale = False
        contributions = self._acquire()
        with self.network.stats.phase("update"):
            for node_id in self.network.converge_cast_order():
                state = self.states[node_id]
                state.view = self._rebuild_view(
                    node_id, contributions.get(node_id))
                kept, withheld = self._prune(state.view)
                state.withheld = withheld
                child_gammas = [
                    self.states[child].gamma_reported
                    for child in self.network.tree.children(node_id)
                    if self.network.node(child).alive
                ]
                gamma = subtree_gamma(self.aggregate, withheld, child_gammas)
                state.gamma_current = gamma
                message = self._update_message(
                    state, kept, gamma, self.network.epoch)
                if message is not None:
                    self.network.send_up(node_id, message)
                    self._apply_report(state, kept, message)

        bounds = self._sink_bounds()
        outcome = certify_top_k(bounds, self.k)
        probed = 0
        if outcome.needs_probe:
            collected = self._probe(outcome.ambiguous)
            probed = 1
            for group, extra in collected.items():
                # Merge the probe mass with the already-seen partial
                # (recomputed from the sink's child caches).
                seen = self._seen_partial(group)
                merged = (extra if seen is None
                          else self.aggregate.merge(seen, extra))
                exact = self.aggregate.finalize(merged)
                if merged.count != self.group_totals[group]:
                    raise ProtocolError(
                        f"probe for {group!r} returned {merged.count} of "
                        f"{self.group_totals[group]} readings"
                    )
                bounds[group] = Bounds(exact, exact)
            outcome = certify_top_k(bounds, self.k)
            if outcome.needs_probe:
                raise ProtocolError("probe did not certify the result")

        self._adapt_slack(probed)
        result = EpochResult(
            epoch=self.network.epoch,
            items=outcome.items,
            exact=True,
            algorithm=self.name,
            probed=probed,
            all_bounds={g: (b.lb, b.ub) for g, b in bounds.items()},
        )
        self.network.advance_epoch()
        return result

    def _seen_partial(self, group: GroupKey) -> Partial | None:
        seen: Partial | None = None
        for child in self.network.tree.children(self.network.sink_id):
            if not self.network.node(child).alive:
                continue
            partial = self.states[child].reported.get(group)
            if partial is not None:
                seen = (partial if seen is None
                        else self.aggregate.merge(seen, partial))
        return seen

    def _adapt_slack(self, probed: int) -> None:
        if not self.config.adaptive:
            return
        if probed:
            self.slack = min(self.config.max_slack, self.slack + 1)
            self._quiet_streak = 0
            return
        self._quiet_streak += 1
        if self._quiet_streak >= self.config.quiet_epochs and self.slack > 0:
            self.slack -= 1
            self._quiet_streak = 0

    def handle_topology_change(self) -> None:
        """Nodes died / tree repaired: views must be re-created.

        The blunt fallback — full reset, full re-creation converge-cast
        next epoch. Subscribed sessions use the surgical
        :meth:`handle_topology_event` instead.
        """
        for state in self.states.values():
            state.reset()
        self.created = False

    def handle_topology_event(self, event) -> int:
        """Invalidate and re-prime only the subtree state churn touched.

        The event's ``dirty`` set is upward-closed (every dirty node's
        ancestors are dirty too), so resetting exactly those states
        keeps the per-edge cache invariant: a clean node's parent still
        caches its last report, while every dirty node re-ships its
        full pruned view (its empty ``reported`` makes the next delta
        the whole of V'), re-priming the caches along both the old and
        the new attachment paths. The sink's per-subtree cardinalities
        are recounted lazily (once per batch, at the next epoch) from
        the static group membership of the repaired tree. Returns the
        number of node states re-primed.

        Args:
            event: A :class:`~repro.network.events.TopologyEvent`.
        """
        if event.failed:
            self.states.pop(event.node_id, None)
        elif event.joined:
            self.states[event.node_id] = MintNodeState()
        if not self.created:
            # Creation has not run yet; the first epoch will learn the
            # repaired topology from scratch anyway.
            return 0
        reprimed = 0
        for node_id in event.dirty:
            state = self.states.get(node_id)
            if state is not None:
                state.reset()
                reprimed += 1
        self._totals_stale = True
        return reprimed

    def _recount_totals(self) -> None:
        """Re-learn group cardinalities from the repaired tree.

        Group membership is static knowledge (the Configuration Panel's
        clusters), so the sink can recount each sink-child subtree's
        per-group totals without any radio traffic.
        """
        self.group_totals = {}
        self.child_group_totals = {}
        for child in self.network.tree.children(self.network.sink_id):
            if not self.network.node(child).alive:
                continue
            counts: dict[GroupKey, int] = {}
            for node_id in self.network.tree.subtree(child):
                if (node_id in self.group_of
                        and self.network.node(node_id).alive):
                    group = self.group_of[node_id]
                    counts[group] = counts.get(group, 0) + 1
            self.child_group_totals[child] = counts
            for group, count in counts.items():
                self.group_totals[group] = (
                    self.group_totals.get(group, 0) + count)

    def run(self, epochs: int) -> list[EpochResult]:
        """Convenience driver: ``epochs`` consecutive rounds."""
        return [self.run_epoch() for _ in range(epochs)]
