"""The *wrongful* naive local pruning strategy of §III-A.

"A naive local greedy pruning strategy may easily discard tuples that
will finally be among the k highest-ranked answers. … assume that each
node naively eliminates any tuple below its local top-1 result.
Obviously, such a strategy will lead to the erroneous answer
(D, 76.5), while the correct answer is (C, 75)."

The strategy is kept in the library deliberately: experiment E10
quantifies how often it is wrong, which is the paper's motivation for
MINT's γ-descriptor framework.
"""

from __future__ import annotations

from typing import Hashable, Mapping

from ..errors import ValidationError
from ..network.messages import QueryMessage, ViewEntry, ViewUpdateMessage
from ..network.simulator import Network
from .aggregates import Aggregate, Partial
from .results import EpochResult, RankedItem, rank_key

GroupKey = Hashable


class NaiveTopK:
    """Greedy local top-k elimination — cheap, and not exact."""

    name = "naive"

    def __init__(self, network: Network, aggregate: Aggregate, k: int,
                 group_of: Mapping[int, GroupKey],
                 attribute: str = "sound",
                 window_epochs: int | None = None):
        if k < 1:
            raise ValidationError("k must be >= 1")
        self.network = network
        self.aggregate = aggregate
        self.k = k
        self.attribute = attribute
        self.group_of = dict(group_of)
        self.window_epochs = window_epochs
        self._disseminated = False

    def run_epoch(self) -> EpochResult:
        """One round of greedy pruning; the answer may be wrong."""
        if not self._disseminated:
            with self.network.stats.phase("dissemination"):
                self.network.flood_down(lambda _: QueryMessage(query_id=1))
            self._disseminated = True
        partial_views: dict[int, dict[GroupKey, Partial]] = {}
        sink_view: dict[GroupKey, Partial] = {}
        with self.network.stats.phase("aggregation"):
            for node_id in self.network.converge_cast_order():
                view: dict[GroupKey, Partial] = {}
                if node_id in self.group_of:
                    node = self.network.node(node_id)
                    value = node.read(self.attribute, self.network.epoch)
                    if self.window_epochs is not None:
                        value = node.window_for(self.attribute).aggregate(
                            self.aggregate.func.lower(),
                            last_n=self.window_epochs)
                    view[self.group_of[node_id]] = (
                        self.aggregate.from_value(value))
                for child in self.network.tree.children(node_id):
                    for group, partial in partial_views.get(child, {}).items():
                        existing = view.get(group)
                        view[group] = (partial if existing is None
                                       else self.aggregate.merge(existing,
                                                                 partial))
                # The greedy elimination: keep exactly the local top-k,
                # discard the rest with no descriptor left behind.
                ranked = sorted(
                    view.items(),
                    key=lambda item: rank_key(
                        item[0], self.aggregate.finalize(item[1])),
                )
                kept = dict(ranked[:self.k])
                message = ViewUpdateMessage(
                    epoch=self.network.epoch,
                    entries=tuple(
                        ViewEntry(group, partial.value, partial.count)
                        for group, partial in sorted(kept.items(),
                                                     key=lambda i: str(i[0]))
                    ),
                )
                parent = self.network.send_up(node_id, message)
                if parent == self.network.sink_id:
                    for group, partial in kept.items():
                        existing = sink_view.get(group)
                        sink_view[group] = (
                            partial if existing is None
                            else self.aggregate.merge(existing, partial))
                else:
                    partial_views[node_id] = kept

        scored = sorted(
            ((group, self.aggregate.finalize(partial))
             for group, partial in sink_view.items()),
            key=lambda pair: rank_key(pair[0], pair[1]),
        )
        items = tuple(
            RankedItem(key=group, score=score, lb=score, ub=score)
            for group, score in scored[:self.k]
        )
        result = EpochResult(
            epoch=self.network.epoch,
            items=items,
            exact=False,  # greedy pruning cannot certify anything
            algorithm=self.name,
        )
        self.network.advance_epoch()
        return result

    def run(self, epochs: int) -> list[EpochResult]:
        """``epochs`` consecutive greedy rounds."""
        return [self.run_epoch() for _ in range(epochs)]
