"""TJA: the Threshold Join Algorithm for historic top-k queries (§III-B).

TJA answers queries over *vertically fragmented* historic data — "Find
the K time instances with the highest average temperature during the
last 3 months" — where an object's (time instant's) score needs a
contribution from every sensor, so no node can prune alone. The three
phases, as the paper sketches them:

1. **Lower Bound (LB)**: the sink collects the hierarchical *union* of
   every node's local top-k object ids (``L_sink``, o ≥ K ids).
2. **Hierarchical Joining (HJ)**: ``L_sink`` floods down; each node
   ships its exact partial score for every candidate, merged (joined)
   in-network, together with its local k-th value — the threshold that
   upper-bounds every object it did *not* nominate.
3. **Clean-Up (CL)**: candidates now have exact scores; any non-
   candidate is bounded by the combined thresholds. If that bound
   clears the k-th candidate the answer is certified; otherwise one
   expansion round nominates every local value above the k-th
   candidate score — after which nothing outside the expanded
   candidate set can beat it — and the join repeats.

Object scores combine across nodes with the same partial-aggregate
algebra MINT uses, so TJA here supports AVG / SUM / MIN / MAX ranking.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from ..errors import ProtocolError, ValidationError
from ..network.messages import (
    CandidateSetMessage,
    ControlMessage,
    JoinReplyMessage,
    LBReplyMessage,
    ObjectScore,
    QueryMessage,
)
from ..network.simulator import Network
from .aggregates import Aggregate, Partial
from .results import RankedItem, rank_key


@dataclass(frozen=True)
class TjaResult:
    """Outcome of one TJA execution.

    Attributes:
        items: The exact top-k (object id = epoch), best first.
        candidates: Size of the final candidate set |L|.
        cleanup_rounds: Expansion rounds the CL phase needed (0 or 1).
        per_phase_bytes: Payload bytes attributed to each phase.
    """

    items: tuple[RankedItem, ...]
    candidates: int
    cleanup_rounds: int
    per_phase_bytes: Mapping[str, int] = field(default_factory=dict)


class Tja:
    """One-shot execution over each node's buffered history window."""

    name = "tja"

    def __init__(self, network: Network, aggregate: Aggregate, k: int,
                 series: Mapping[int, Mapping[int, float]]):
        """Args:
            network: Deployed simulator (routing tree + cost models).
            aggregate: Score combiner across nodes (AVG in the paper's
                example).
            k: Ranking depth.
            series: node id → {object id (epoch) → local value}. Every
                participating node must cover the same object ids (the
                dense sliding window of §III-B).
        """
        if k < 1:
            raise ValidationError("k must be >= 1")
        self.network = network
        self.aggregate = aggregate
        self.k = k
        self.series = {node: dict(column) for node, column in series.items()}
        participants = [n for n in self.series if self.series[n]]
        if not participants:
            raise ValidationError("TJA needs at least one non-empty series")
        universe = set(self.series[participants[0]])
        for node in participants[1:]:
            if set(self.series[node]) != universe:
                raise ValidationError(
                    "TJA requires aligned history windows "
                    "(same object ids on every node)"
                )
        self.universe = universe

    # ------------------------------------------------------------------
    # Local computations
    # ------------------------------------------------------------------

    def _local_top_k(self, node_id: int) -> list[int]:
        column = self.series.get(node_id, {})
        ranked = sorted(column.items(),
                        key=lambda item: rank_key(item[0], item[1]))
        return [object_id for object_id, _ in ranked[:self.k]]

    def _local_threshold(self, node_id: int) -> float | None:
        """The node's k-th highest local value (bounds non-nominees)."""
        column = self.series.get(node_id, {})
        if not column:
            return None
        ranked = sorted(column.values(), reverse=True)
        return ranked[min(self.k, len(ranked)) - 1]

    # ------------------------------------------------------------------
    # Phases
    # ------------------------------------------------------------------

    def _lower_bound_phase(self) -> set[int]:
        """Hierarchical union of local top-k ids."""
        unions: dict[int, set[int]] = {}
        l_sink: set[int] = set()
        with self.network.stats.phase("LB"):
            self.network.flood_down(lambda _: QueryMessage(query_id=2))
            for node_id in self.network.converge_cast_order():
                nominated = set(self._local_top_k(node_id))
                for child in self.network.tree.children(node_id):
                    nominated |= unions.get(child, set())
                message = LBReplyMessage(object_ids=tuple(sorted(nominated)))
                parent = self.network.send_up(node_id, message)
                if parent == self.network.sink_id:
                    l_sink |= nominated
                else:
                    unions[node_id] = nominated
        return l_sink

    def _join_phase(self, candidates: set[int], phase_name: str = "HJ",
                    include_threshold: bool = True,
                    ) -> tuple[dict[int, Partial], Partial | None]:
        """Flood the candidate set, join exact partials hierarchically.

        Returns the joined partial per candidate and the combined
        threshold partial (each node's k-th local value folded with the
        aggregate algebra — the upper bound for unseen objects).
        """
        ordered = tuple(sorted(candidates))
        joined: dict[int, Partial] = {}
        threshold: Partial | None = None
        partials: dict[int, dict[int, Partial]] = {}
        thresholds: dict[int, Partial] = {}
        with self.network.stats.phase(phase_name):
            self.network.flood_down(
                lambda _: CandidateSetMessage(object_ids=ordered))
            for node_id in self.network.converge_cast_order():
                local: dict[int, Partial] = {}
                column = self.series.get(node_id, {})
                for object_id in ordered:
                    if object_id in column:
                        local[object_id] = self.aggregate.from_value(
                            column[object_id])
                local_threshold = self._local_threshold(node_id)
                combined_threshold = (
                    self.aggregate.from_value(local_threshold)
                    if local_threshold is not None else None)
                for child in self.network.tree.children(node_id):
                    for object_id, partial in partials.get(child, {}).items():
                        existing = local.get(object_id)
                        local[object_id] = (
                            partial if existing is None
                            else self.aggregate.merge(existing, partial))
                    child_threshold = thresholds.get(child)
                    if child_threshold is not None:
                        combined_threshold = (
                            child_threshold if combined_threshold is None
                            else self.aggregate.merge(combined_threshold,
                                                      child_threshold))
                items = tuple(
                    ObjectScore(object_id, partial.value, partial.count)
                    for object_id, partial in sorted(local.items())
                )
                message = JoinReplyMessage(
                    items=items,
                    threshold_value=(combined_threshold.value
                                     if combined_threshold else 0.0),
                    threshold_count=(combined_threshold.count
                                     if combined_threshold else 0),
                )
                parent = self.network.send_up(node_id, message)
                if parent == self.network.sink_id:
                    for object_id, partial in local.items():
                        existing = joined.get(object_id)
                        joined[object_id] = (
                            partial if existing is None
                            else self.aggregate.merge(existing, partial))
                    if combined_threshold is not None:
                        threshold = (
                            combined_threshold if threshold is None
                            else self.aggregate.merge(threshold,
                                                      combined_threshold))
                else:
                    partials[node_id] = local
                    if combined_threshold is not None:
                        thresholds[node_id] = combined_threshold
        if not include_threshold:
            threshold = None
        return joined, threshold

    def _expansion_tau(self, tau: float) -> float:
        """Per-node nomination threshold that certifies the expansion.

        For AVG/MIN/MAX, an object with every local value ≤ τ scores
        ≤ τ. For SUM the per-node threshold must be τ/n (the TPUT
        argument): n values each ≤ τ/n sum to ≤ τ.
        """
        if self.aggregate.func == "SUM":
            participants = max(1, sum(1 for s in self.series.values() if s))
            return tau / participants
        return tau

    def _expansion_phase(self, tau: float, known: set[int]) -> set[int]:
        """CL expansion: nominate every local value above the threshold."""
        tau = self._expansion_tau(tau)
        unions: dict[int, set[int]] = {}
        extra: set[int] = set()
        with self.network.stats.phase("CL"):
            self.network.flood_down(
                lambda _: ControlMessage(label="cl_threshold", size=8))
            for node_id in self.network.converge_cast_order():
                nominated = {
                    object_id
                    for object_id, value in self.series.get(node_id, {}).items()
                    if value > tau and object_id not in known
                }
                for child in self.network.tree.children(node_id):
                    nominated |= unions.get(child, set())
                message = LBReplyMessage(object_ids=tuple(sorted(nominated)))
                parent = self.network.send_up(node_id, message)
                if parent == self.network.sink_id:
                    extra |= nominated
                else:
                    unions[node_id] = nominated
        return extra

    # ------------------------------------------------------------------
    # Driver
    # ------------------------------------------------------------------

    def execute(self) -> TjaResult:
        """Run LB → HJ → CL and return the certified exact top-k."""
        before = dict(self.network.stats.by_phase)
        candidates = self._lower_bound_phase()
        if not candidates:
            raise ProtocolError("LB phase produced no candidates")

        joined, threshold = self._join_phase(candidates)
        exact = {
            object_id: self.aggregate.finalize(partial)
            for object_id, partial in joined.items()
        }
        ranked = sorted(exact.items(),
                        key=lambda item: rank_key(item[0], item[1]))
        effective_k = min(self.k, len(self.universe))
        tau = ranked[min(effective_k, len(ranked)) - 1][1]

        unseen_bound = (self.aggregate.finalize(threshold)
                        if threshold is not None else float("-inf"))
        cleanup_rounds = 0
        if len(exact) < len(self.universe) and unseen_bound > tau:
            cleanup_rounds = 1
            extra = self._expansion_phase(tau, set(exact))
            if extra:
                joined_extra, _ = self._join_phase(
                    extra, phase_name="CL", include_threshold=False)
                for object_id, partial in joined_extra.items():
                    exact[object_id] = self.aggregate.finalize(partial)
                ranked = sorted(exact.items(),
                                key=lambda item: rank_key(item[0], item[1]))

        items = tuple(
            RankedItem(key=object_id, score=score, lb=score, ub=score)
            for object_id, score in ranked[:effective_k]
        )
        after = self.network.stats.by_phase
        per_phase = {
            phase: after[phase].payload_bytes - (
                before[phase].payload_bytes if phase in before else 0)
            for phase in ("LB", "HJ", "CL") if phase in after
        }
        return TjaResult(
            items=items,
            candidates=len(exact),
            cleanup_rounds=cleanup_rounds,
            per_phase_bytes=per_phase,
        )
