"""Incremental top-k view maintenance: weighted deltas over a sink view.

A typical epoch perturbs only a handful of group bounds — a couple of
FILA violations, one MINT sink-child delta — yet the sink used to
re-run :func:`~repro.core.certify.certify_top_k` from scratch: an
O(N log N) re-rank of every group per certification call. This module
is the DBSP/Z-set treatment of that cost: the per-epoch bound changes
form a :class:`BoundsDelta` (a batch of per-group retract/assert pairs,
group birth and death included), and a :class:`TopKView` *maintains*
everything the certifier derives —

* the ranked-by-lower-bound order (the ``rank_key`` order),
* the k-boundary threshold τ (the k-th largest lower bound),
* the ambiguous set (every group whose ub reaches τ − tolerance), and
* the per-group interval partials themselves —

applying a delta in O(|delta| · log N) bisect updates instead of
re-ranking all N groups, and answering :meth:`TopKView.outcome` in
O(k + |ambiguous| + log N).

The stateless :func:`~repro.core.certify.certify_top_k` stays as the
**reference oracle**: for any view content, ``view.outcome()`` equals
``certify_top_k(dict(view.bounds), k, tolerance, require_exact_scores)``
byte for byte — certified flag, items, ambiguous tuple, threshold.
The engines feed their per-session views only on the optimized path
(:mod:`repro.network.hotpath`); the reference path still calls the
oracle cold, and ``tests/test_delta_equivalence.py`` proves the two
paths identical across random scenarios, engines and churn.

One deliberate limit: groups whose *stringified* keys collide (e.g.
the int ``1`` and the str ``"1"`` in one query) tie-break by the
oracle's dict insertion order, which a maintained sorted structure
cannot observe. Group key spaces are homogeneous in every query the
planner produces, so the equivalence holds everywhere reachable.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from typing import Hashable, Iterator, Mapping

from ..errors import ValidationError
from .aggregates import Bounds, SortKeys
from .certify import CertificationOutcome
from .results import RankedItem

GroupKey = Hashable


def _order_key(entry: tuple) -> tuple:
    """Sort key for rebuilding the maintained orders: (sort value,
    stringified group). The raw group key is never compared — mixed
    int/str key spaces must not raise where the oracle's ``rank_key``
    does not. Bisect probes use the same discipline without a Python
    callback: a 2-tuple ``(sort value, gstr)`` compares against the
    stored 3-tuples entirely in C, and an equal prefix makes the longer
    stored tuple sort *after* the probe — so ``bisect_left`` always
    lands before every entry sharing the prefix, never touching the
    group slot."""
    return (entry[0], entry[1])


def _insert(order: list, entry: tuple) -> None:
    """Insert a ``(sort value, gstr, group)`` entry at its C-bisected
    position (before any entries sharing the (value, gstr) prefix)."""
    order.insert(bisect_left(order, entry[:2]), entry)


@dataclass(frozen=True)
class DeltaEntry:
    """One group's change: retract ``old``, assert ``new``.

    ``old is None`` is a group **birth** (churn created the group or it
    entered the query's scope), ``new is None`` a group **death**.
    """

    group: GroupKey
    old: Bounds | None
    new: Bounds | None

    @property
    def born(self) -> bool:
        """True when this entry creates the group in the view."""
        return self.old is None

    @property
    def died(self) -> bool:
        """True when this entry removes the group from the view."""
        return self.new is None


@dataclass(frozen=True)
class BoundsDelta:
    """A batch of per-group interval changes for one maintenance step.

    The weighted-delta batch of the DBSP framing: each entry carries
    the retracted old interval and the asserted new one, so applying a
    delta to a view whose content does not match the retractions is an
    error (:class:`~repro.errors.ValidationError`), not a silent
    divergence.
    """

    entries: tuple[DeltaEntry, ...] = ()

    def __len__(self) -> int:
        return len(self.entries)

    def __bool__(self) -> bool:
        return bool(self.entries)

    def __iter__(self) -> Iterator[DeltaEntry]:
        return iter(self.entries)

    @property
    def births(self) -> int:
        """Entries creating a group."""
        return sum(1 for entry in self.entries if entry.born)

    @property
    def deaths(self) -> int:
        """Entries removing a group."""
        return sum(1 for entry in self.entries if entry.died)

    @classmethod
    def diff(cls, old: Mapping[GroupKey, Bounds],
             new: Mapping[GroupKey, Bounds]) -> "BoundsDelta":
        """The delta turning mapping ``old`` into mapping ``new``."""
        entries = []
        births = 0
        old_get = old.get
        append = entries.append
        for group, interval in new.items():
            before = old_get(group)
            if before is interval:
                continue
            if before is None:
                births += 1
            elif before.lb == interval.lb and before.ub == interval.ub:
                continue
            append(DeltaEntry(group, before, interval))
        if len(old) > len(new) - births:
            entries.extend(DeltaEntry(group, interval, None)
                           for group, interval in old.items()
                           if group not in new)
        return cls(tuple(entries))


class TopKView:
    """A maintained top-k certification view over group bounds.

    Holds the same ``{group: Bounds}`` mapping the cold certifier is
    handed (exposed read-only as :attr:`bounds`) plus two bisect-
    maintained orders — by ``(-lb, str(group))`` (the oracle's
    ``rank_key`` ranking) and by ``(ub, str(group))`` (the ambiguous
    cut) — so a delta of d groups costs O(d · log N) and a
    certification outcome O(k + |ambiguous| + log N).

    ``k=None`` builds a *ranking-only* view (TAG's full per-epoch
    ranking): :meth:`ranking` works, :meth:`outcome` is refused.

    The mutation surface mirrors how the engines produce deltas:
    :meth:`ensure` for per-node hot loops (no allocation when the bound
    is unchanged), :meth:`set`/:meth:`delete` for probe collapses and
    churn, :meth:`apply`/:meth:`reconcile` for whole-batch maintenance.
    """

    def __init__(self, k: int | None, *, tolerance: float = 1e-9,
                 require_exact_scores: bool = True):
        if k is not None and k < 1:
            raise ValidationError("k must be >= 1")
        self.k = k
        self.tolerance = tolerance
        self.require_exact_scores = require_exact_scores
        self._bounds: dict[GroupKey, Bounds] = {}
        #: Ranked by (-lb, str(group), ·): the oracle's rank_key order.
        self._by_lb: list[tuple[float, str, GroupKey]] = []
        #: Ascending (ub, str(group), ·): the ambiguous-cut order.
        self._by_ub: list[tuple[float, str, GroupKey]] = []
        self._gstr = SortKeys()
        #: Last outcome, valid until the next mutation — the view is
        #: the only state between certifications, so an unchanged epoch
        #: answers in O(1) (outcomes are frozen, sharing is safe).
        self._cached_outcome: CertificationOutcome | None = None
        #: Last plain-tuple bounds snapshot (``EpochResult.all_bounds``
        #: shape), same validity rule as the outcome cache.
        self._cached_snapshot: dict | None = None

    # -- mapping surface ------------------------------------------------

    @property
    def bounds(self) -> Mapping[GroupKey, Bounds]:
        """The maintained per-group intervals (do not mutate: every
        write must go through the delta surface to keep the orders)."""
        return self._bounds

    def bounds_snapshot(self) -> dict:
        """``{group: (lb, ub)}`` over the whole view — the
        ``EpochResult.all_bounds`` payload — memoized until the next
        mutation, so an epoch that changed nothing reuses the dict
        instead of re-walking N groups. Treat as read-only (shared
        across results, like the frozen outcome)."""
        snapshot = self._cached_snapshot
        if snapshot is None:
            snapshot = self._cached_snapshot = {
                group: (interval.lb, interval.ub)
                for group, interval in self._bounds.items()}
        return snapshot

    def __len__(self) -> int:
        return len(self._bounds)

    def __contains__(self, group: GroupKey) -> bool:
        return group in self._bounds

    # -- single-group deltas --------------------------------------------

    def set(self, group: GroupKey, new: Bounds) -> None:
        """Assert ``group``'s interval (group birth when absent)."""
        old = self._bounds.get(group)
        gstr = self._gstr[group]
        if old is not None:
            if old.lb == new.lb and old.ub == new.ub:
                return
            self._pop(self._by_lb, (-old.lb, gstr), group)
            self._pop(self._by_ub, (old.ub, gstr), group)
        self._bounds[group] = new
        _insert(self._by_lb, (-new.lb, gstr, group))
        _insert(self._by_ub, (new.ub, gstr, group))
        self._cached_outcome = None
        self._cached_snapshot = None

    # repro: hot
    def ensure(self, group: GroupKey, lb: float, ub: float) -> bool:
        """Converge one group to ``[lb, ub]``; True when it changed.

        The engines' per-node hot loops call this with raw floats so an
        unchanged bound costs two comparisons and zero allocations.
        """
        old = self._bounds.get(group)
        if old is not None and old.lb == lb and old.ub == ub:
            return False
        self.set(group, Bounds(lb, ub))
        return True

    def delete(self, group: GroupKey) -> bool:
        """Retract ``group`` entirely (group death); True if present."""
        old = self._bounds.pop(group, None)
        if old is None:
            return False
        gstr = self._gstr[group]
        self._pop(self._by_lb, (-old.lb, gstr), group)
        self._pop(self._by_ub, (old.ub, gstr), group)
        self._cached_outcome = None
        self._cached_snapshot = None
        return True

    @staticmethod
    def _pop(order: list, key: tuple, group: GroupKey) -> None:
        index = bisect_left(order, key)
        for probe in range(index, len(order)):
            entry = order[probe]
            if (entry[0], entry[1]) != key:
                break
            if entry[2] == group:
                del order[probe]
                return
        raise ValidationError(
            f"view order lost group {group!r} at key {key!r}")

    # -- batch deltas ---------------------------------------------------

    # repro: hot
    def apply(self, delta: BoundsDelta) -> None:
        """Apply one delta batch, validating its retractions.

        Every entry's ``old`` must match what the view holds — the
        Z-set discipline that turns an engine bug (a stale or doubly-
        applied delta) into an immediate error instead of a silently
        wrong answer.
        """
        bounds = self._bounds
        # A delta touching a large fraction of the view re-sorts from
        # scratch (one C sort per order) instead of paying O(d · log N)
        # bisected inserts — the same trade a B-tree bulk load makes.
        bulk = 4 * len(delta.entries) >= len(bounds)
        for entry in delta.entries:
            current = bounds.get(entry.group)
            old = entry.old
            if ((current is None) != (old is None)
                    or (current is not None
                        and (current.lb != old.lb
                             or current.ub != old.ub))):
                raise ValidationError(
                    f"stale delta for group {entry.group!r}: view holds "
                    f"{current}, delta retracts {old}")
            if bulk:
                if entry.new is None:
                    del bounds[entry.group]
                else:
                    bounds[entry.group] = entry.new
            elif entry.new is None:
                self.delete(entry.group)
            else:
                self.set(entry.group, entry.new)
        if bulk:
            self._rebuild()

    def _apply_diffed(self, delta: BoundsDelta) -> None:
        """Apply a delta this view just diffed against itself.

        The retractions are tautologically current, so the Z-set
        staleness check of :meth:`apply` would re-prove what the diff
        loop established — :meth:`reconcile` skips straight to the
        order maintenance.
        """
        bounds = self._bounds
        if 4 * len(delta.entries) >= len(bounds):
            for entry in delta.entries:
                if entry.new is None:
                    del bounds[entry.group]
                else:
                    bounds[entry.group] = entry.new
            self._rebuild()
            return
        for entry in delta.entries:
            if entry.new is None:
                self.delete(entry.group)
            else:
                self.set(entry.group, entry.new)

    def _rebuild(self) -> None:
        """Re-derive both orders from the bounds mapping wholesale."""
        gstr = self._gstr
        items = self._bounds.items()
        self._by_lb = sorted(
            ((-interval.lb, gstr[group], group)
             for group, interval in items), key=_order_key)
        self._by_ub = sorted(
            ((interval.ub, gstr[group], group)
             for group, interval in items), key=_order_key)
        self._cached_outcome = None
        self._cached_snapshot = None

    def reconcile(self, new_bounds: Mapping[GroupKey, Bounds]
                  ) -> BoundsDelta:
        """Diff the view against a full mapping and apply the delta.

        The O(N) compare loop allocates nothing for unchanged groups;
        only the changed entries pay the O(log N) order updates. Births
        and deaths (churn) fall out of the diff. Returns the applied
        delta (empty when the epoch changed nothing).
        """
        delta = BoundsDelta.diff(self._bounds, new_bounds)
        if delta:
            self._apply_diffed(delta)
        return delta

    def reconcile_scores(self, scores: Mapping[GroupKey, float]
                         ) -> BoundsDelta:
        """Point-valued :meth:`reconcile` (TAG's per-epoch ranking):
        allocates a Bounds only for groups that actually moved."""
        entries = []
        bounds = self._bounds
        births = 0
        for group, score in scores.items():
            old = bounds.get(group)
            if old is None:
                births += 1
            elif old.lb == score and old.ub == score:
                continue
            entries.append(DeltaEntry(group, old, Bounds(score, score)))
        if len(bounds) > len(scores) - births:
            entries.extend(DeltaEntry(group, old, None)
                           for group, old in bounds.items()
                           if group not in scores)
        delta = BoundsDelta(tuple(entries))
        if delta:
            self._apply_diffed(delta)
        return delta

    # -- derived state --------------------------------------------------

    def ranking(self) -> list[tuple[GroupKey, Bounds]]:
        """Every group with its interval, in certified rank order
        (``rank_key`` on the lower bound — TAG's full ranking)."""
        bounds = self._bounds
        return [(entry[2], bounds[entry[2]]) for entry in self._by_lb]

    def outcome(self) -> CertificationOutcome:
        """The certification outcome of the current view content.

        Byte-identical to ``certify_top_k(dict(self.bounds), self.k,
        self.tolerance, self.require_exact_scores)`` — the equivalence
        the hypothesis suite proves — at O(k + |ambiguous| + log N)
        instead of the oracle's O(N log N).
        """
        if self.k is None:
            raise ValidationError(
                "a ranking-only view (k=None) has no certification")
        cached = self._cached_outcome
        if cached is not None:
            return cached
        bounds = self._bounds
        if not bounds:
            raise ValidationError("cannot certify an empty group set")
        tolerance = self.tolerance
        effective_k = min(self.k, len(bounds))
        by_lb = self._by_lb
        # τ: the lb of the k-th entry in rank order (the float itself,
        # not a re-negation — bit-equality with the oracle matters).
        threshold = bounds[by_lb[effective_k - 1][2]].lb

        by_ub = self._by_ub
        first = bisect_left(by_ub, (threshold - tolerance,))
        flagged = [(entry[1], position, entry[2])
                   for position, entry in enumerate(by_ub[first:])]
        flagged.sort()
        ambiguous = tuple(entry[2] for entry in flagged)

        chosen = by_lb[:effective_k]
        chosen_exact = True
        if self.require_exact_scores:
            for _, _, group in chosen:
                interval = bounds[group]
                if interval.ub - interval.lb > tolerance:
                    chosen_exact = False
                    break
        others_below = True
        if len(bounds) > effective_k:
            ceiling = threshold + tolerance
            chosen_groups = {group for _, _, group in chosen}
            # The max non-chosen ub decides; walk down from the top of
            # the ub order past at most k chosen entries.
            for position in range(len(by_ub) - 1, -1, -1):
                entry = by_ub[position]
                if entry[2] in chosen_groups:
                    continue
                others_below = entry[0] <= ceiling
                break

        items = []
        for _, _, group in chosen:
            interval = bounds[group]
            items.append(RankedItem(key=group, score=interval.midpoint,
                                    lb=interval.lb, ub=interval.ub))
        outcome = CertificationOutcome(
            certified=chosen_exact and others_below,
            items=tuple(items),
            ambiguous=ambiguous,
            threshold=threshold,
        )
        self._cached_outcome = outcome
        return outcome

    def __repr__(self) -> str:
        return (f"TopKView(k={self.k}, groups={len(self._bounds)}, "
                f"require_exact_scores={self.require_exact_scores})")
