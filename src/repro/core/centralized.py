"""Centralized baseline: every raw reading travels to the sink.

The "not cost effective" strawman of §I: no in-network aggregation at
all — each node forwards its own reading plus every reading received
from its children, so a reading pays one message-slot per hop between
its origin and the sink. The sink evaluates the query with complete
information (this doubles as the oracle the exactness tests use).
"""

from __future__ import annotations

from typing import Hashable, Mapping

from ..errors import ValidationError
from ..network.messages import QueryMessage, RawReadingsMessage, Reading
from ..network.simulator import Network
from .aggregates import Aggregate
from .results import EpochResult, oracle_top_k

GroupKey = Hashable


class Centralized:
    """Raw-forwarding collection with sink-side evaluation."""

    name = "centralized"

    def __init__(self, network: Network, aggregate: Aggregate,
                 k: int | None,
                 group_of: Mapping[int, GroupKey],
                 attribute: str = "sound",
                 window_epochs: int | None = None,
                 where_fn=None):
        if k is not None and k < 1:
            raise ValidationError("k must be >= 1 (or None for all groups)")
        self.where_fn = where_fn
        self.network = network
        self.aggregate = aggregate
        self.k = k
        self.attribute = attribute
        self.group_of = dict(group_of)
        self.window_epochs = window_epochs
        self._disseminated = False

    def run_epoch(self) -> EpochResult:
        """Collect every reading, evaluate at the sink."""
        if not self._disseminated:
            with self.network.stats.phase("dissemination"):
                self.network.flood_down(lambda _: QueryMessage(query_id=1))
            self._disseminated = True
        readings: dict[int, float] = {}
        for node_id in self.network.alive_sensor_ids():
            if node_id not in self.group_of:
                continue
            node = self.network.node(node_id)
            value = node.read(self.attribute, self.network.epoch)
            if self.window_epochs is not None:
                value = node.window_for(self.attribute).aggregate(
                    self.aggregate.func.lower(), last_n=self.window_epochs)
            if self.where_fn is not None and not self.where_fn(
                    node_id, self.group_of[node_id], value):
                continue
            readings[node_id] = value

        buffers: dict[int, list[Reading]] = {}
        with self.network.stats.phase("collection"):
            for node_id in self.network.converge_cast_order():
                batch: list[Reading] = []
                if node_id in readings:
                    batch.append(Reading(node_id, readings[node_id]))
                for child in self.network.tree.children(node_id):
                    batch.extend(buffers.get(child, ()))
                message = RawReadingsMessage(
                    epoch=self.network.epoch, readings=tuple(batch))
                parent = self.network.send_up(node_id, message)
                if parent != self.network.sink_id:
                    buffers[node_id] = batch

        k = self.k if self.k is not None else max(1, len(
            {self.group_of[n] for n in readings} or {0}))
        items = (oracle_top_k(readings, self.group_of, self.aggregate, k)
                 if readings else ())
        result = EpochResult(
            epoch=self.network.epoch,
            items=items,
            exact=True,
            algorithm=self.name,
        )
        self.network.advance_epoch()
        return result

    def run(self, epochs: int) -> list[EpochResult]:
        """``epochs`` consecutive collection rounds."""
        return [self.run_epoch() for _ in range(epochs)]
