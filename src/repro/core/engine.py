"""The KSpot execution engine: logical plan → running algorithm.

This is the software seam the paper describes between the KSpot client's
query router and the specialised top-k operator: the engine inspects
the plan's query class, instantiates the routed algorithm over the
deployed network, applies static WHERE pre-filters, and drives epochs.

Historic-vertical queries run in two stages, as on real motes: an
*acquisition* stage in which every node samples and buffers its window
locally (radio silent — that is the point of local buffering), followed
by the one-shot distributed TJA/TPUT execution over the buffered
columns.
"""

from __future__ import annotations

from typing import Hashable, Mapping

from ..errors import PlanError
from ..network.simulator import Network
from ..query.ast_nodes import Predicate
from ..query.eval import evaluate, references
from ..query.plan import Algorithm, LogicalPlan, QueryClass
from ..sensing.modalities import get_modality
from .aggregates import Aggregate, make_aggregate
from .centralized import Centralized
from .fila import Fila
from .mint import Mint, MintConfig
from .naive import NaiveTopK
from .results import EpochResult, RankedItem, rank_key
from .tag import Tag
from .tja import Tja, TjaResult
from .tput import Tput, TputResult

GroupKey = Hashable


class KSpotEngine:
    """Runs one logical plan on one deployed network."""

    def __init__(self, network: Network, plan: LogicalPlan,
                 group_of: Mapping[int, GroupKey] | None = None,
                 mint_config: MintConfig | None = None):
        """Args:
            network: Deployed simulator with boards attached.
            plan: Output of :func:`repro.query.plan.make_plan`.
            group_of: Node → cluster mapping for cluster group keys
                (``roomid``). Defaults to the node groups configured on
                the network. Ignored for ``nodeid``/``epoch`` keys.
            mint_config: Tunables forwarded to MINT when routed there.
        """
        self.network = network
        self.plan = plan
        self.mint_config = mint_config
        self.group_of = self._resolve_groups(group_of)
        self.aggregate = self._build_aggregate()
        self._check_where(plan.where)
        self.participants = self._static_filter(plan.where)
        self._algorithm = None

    # ------------------------------------------------------------------
    # Setup helpers
    # ------------------------------------------------------------------

    def _resolve_groups(self, group_of: Mapping[int, GroupKey] | None
                        ) -> dict[int, GroupKey]:
        key = self.plan.group_key
        sensor_ids = self.network.tree.sensor_ids
        if key == "nodeid" or key == "epoch":
            return {node_id: node_id for node_id in sensor_ids}
        if group_of is not None:
            mapping = dict(group_of)
        else:
            mapping = {
                node_id: self.network.node(node_id).group
                for node_id in sensor_ids
                if self.network.node(node_id).group is not None
            }
        if not mapping:
            raise PlanError(
                f"the query groups by {key!r} but no cluster mapping is "
                f"configured (Configuration Panel step missing)"
            )
        return mapping

    def _build_aggregate(self) -> Aggregate:
        modality = get_modality(self.plan.attribute)
        lo, hi = modality.lo, modality.hi
        if (self.plan.window_epochs is not None
                and self.plan.agg_func == "SUM"):
            # A windowed SUM contribution spans W readings.
            hi = hi * self.plan.window_epochs
            lo = min(lo * self.plan.window_epochs, lo)
        if self.plan.agg_func == "COUNT" and self.plan.window_epochs:
            raise PlanError("windowed COUNT is not supported")
        return make_aggregate(self.plan.agg_func, lo, hi)

    def _check_where(self, where: Predicate | None) -> None:
        self._dynamic_where = False
        if where is None:
            return
        dynamic = references(where) - {"nodeid", self.plan.group_key}
        dynamic -= {"epoch"}
        if dynamic and self.plan.algorithm in (Algorithm.MINT, Algorithm.FILA,
                                               Algorithm.NAIVE):
            raise PlanError(
                f"{self.plan.algorithm.value} needs static group "
                f"cardinalities, but the WHERE clause filters on sensed "
                f"attributes {sorted(dynamic)}; route the query to TAG or "
                f"CENTRALIZED instead"
            )
        self._dynamic_where = bool(dynamic)

    def _static_filter(self, where: Predicate | None) -> dict[int, GroupKey]:
        """Participants after static WHERE resolution."""
        participants: dict[int, GroupKey] = {}
        static_names = {"nodeid", self.plan.group_key}
        for node_id, group in self.group_of.items():
            if where is not None and not references(where) - static_names:
                context = {"nodeid": node_id, self.plan.group_key: group}
                if not evaluate(where, context):
                    continue
            participants[node_id] = group
        if not participants:
            raise PlanError("the WHERE clause excludes every sensor")
        return participants

    # ------------------------------------------------------------------
    # Snapshot / horizontal execution
    # ------------------------------------------------------------------

    def _where_fn(self):
        """Dynamic acquisition predicate for TAG/CENTRALIZED, or None."""
        if not self._dynamic_where:
            return None
        plan = self.plan

        def predicate(node_id: int, group: GroupKey, value: float) -> bool:
            context = {
                "nodeid": node_id,
                plan.group_key: group,
                plan.attribute: value,
                "epoch": self.network.epoch,
            }
            return evaluate(plan.where, context)

        return predicate

    def _make_algorithm(self):
        plan = self.plan
        common = dict(
            network=self.network,
            aggregate=self.aggregate,
            k=plan.k,
            group_of=self.participants,
            attribute=plan.attribute,
            window_epochs=plan.window_epochs,
        )
        if plan.algorithm is Algorithm.MINT:
            return Mint(self.network, self.aggregate, plan.k,
                        self.participants, attribute=plan.attribute,
                        config=self.mint_config,
                        window_epochs=plan.window_epochs)
        if plan.algorithm is Algorithm.TAG:
            return Tag(**common, where_fn=self._where_fn())
        if plan.algorithm is Algorithm.CENTRALIZED:
            return Centralized(**common, where_fn=self._where_fn())
        if plan.algorithm is Algorithm.NAIVE:
            return NaiveTopK(**common)
        if plan.algorithm is Algorithm.FILA:
            if plan.group_key != "nodeid":
                raise PlanError(
                    "the FILA build monitors top-k nodes; use MINT for "
                    "cluster ranking"
                )
            return Fila(self.network, self.aggregate, plan.k,
                        attribute=plan.attribute)
        raise PlanError(
            f"{plan.algorithm.value} does not run in epoch mode"
        )

    @property
    def algorithm(self):
        """The instantiated algorithm (lazily created)."""
        if self._algorithm is None:
            self._algorithm = self._make_algorithm()
        return self._algorithm

    # ------------------------------------------------------------------
    # Churn handling
    # ------------------------------------------------------------------

    def handle_topology_event(self, event) -> int:
        """React to a node failure / join on the deployed network.

        Joins extend the participant set (newborns enter the query when
        they carry a board, pass the static WHERE pre-filter, and —
        for cluster rankings — arrive with a cluster assignment);
        historic-vertical plans never adopt newborns, whose buffers
        cannot cover the already-elapsed window. Failures keep the
        static membership maps (alive-ness is filtered at acquisition)
        but are forwarded to the routed algorithm so it can invalidate
        exactly the affected subtree state. Returns the number of node
        states the algorithm re-primed.
        """
        if event.joined:
            self._adopt_participant(event.node_id)
        algorithm = self._algorithm
        if algorithm is None:
            return 0
        if event.joined and hasattr(algorithm, "group_of"):
            algorithm.group_of = dict(self.participants)
        handler = getattr(algorithm, "handle_topology_event", None)
        if handler is None:
            return 0
        return handler(event)

    def _adopt_participant(self, node_id: int) -> None:
        """Admit a newborn node into the query, mirroring the static
        filtering done at compile time."""
        if self.plan.query_class is QueryClass.HISTORIC_VERTICAL:
            return
        node = self.network.node(node_id)
        if node.board is None:
            return
        key = self.plan.group_key
        if key == "nodeid" or key == "epoch":
            group: GroupKey = node_id
        elif node.group is not None:
            group = node.group
        else:
            return
        where = self.plan.where
        static_names = {"nodeid", key}
        if where is not None and not references(where) - static_names:
            context = {"nodeid": node_id, key: group}
            if not evaluate(where, context):
                return
        self.group_of[node_id] = group
        self.participants[node_id] = group

    def run_epoch(self) -> EpochResult:
        """Drive one epoch of a snapshot / horizontal / aggregate query."""
        if self.plan.query_class is QueryClass.HISTORIC_VERTICAL:
            raise PlanError(
                "historic-vertical queries run via execute_historic()"
            )
        if self.plan.k is None:
            # Non-ranking queries run full TAG with no cut.
            return self.algorithm.run_epoch()
        return self.algorithm.run_epoch()

    def run(self, epochs: int | None = None) -> list[EpochResult]:
        """Run a continuous query for ``epochs`` (or the plan's lifetime)."""
        total = epochs if epochs is not None else self.plan.lifetime_epochs
        if total is None:
            raise PlanError(
                "specify epochs (the query has no LIFETIME clause)"
            )
        return [self.run_epoch() for _ in range(total)]

    # ------------------------------------------------------------------
    # Historic-vertical execution
    # ------------------------------------------------------------------

    def sample_participants(self) -> None:
        """One radio-silent acquisition: every live participant samples
        (and locally buffers) the plan's attribute for the current
        epoch. Reads go through the node-level per-epoch cache, so on a
        shared deployment boards that already fired this epoch are not
        re-sampled."""
        nodes = self.network.nodes
        attribute = self.plan.attribute
        self.network.read_many(
            [node_id for node_id in self.participants
             if nodes[node_id].alive],
            attribute)

    def fill_windows(self, epochs: int | None = None) -> None:
        """Acquisition stage: sample & buffer locally, radio silent."""
        total = epochs if epochs is not None else self.plan.window_epochs
        if total is None:
            raise PlanError("no window length to fill")
        for _ in range(total):
            self.sample_participants()
            self.network.advance_epoch()

    def _series(self) -> dict[int, dict[int, float]]:
        window = self.plan.window_epochs
        if window is None:
            raise PlanError("historic execution requires WITH HISTORY")
        series: dict[int, dict[int, float]] = {}
        for node_id in self.participants:
            node = self.network.node(node_id)
            if not node.alive:
                continue
            entries = node.history(window, attribute=self.plan.attribute)
            series[node_id] = {entry.epoch: entry.value for entry in entries}
        return series

    def execute_historic(self) -> "TjaResult | TputResult":
        """Run the one-shot distributed query over the buffered windows."""
        if self.plan.query_class is not QueryClass.HISTORIC_VERTICAL:
            raise PlanError("execute_historic() is for GROUP BY epoch plans")
        series = self._series()
        if self.plan.algorithm is Algorithm.TJA:
            return Tja(self.network, self.aggregate, self.plan.k,
                       series).execute()
        if self.plan.algorithm is Algorithm.TPUT:
            return Tput(self.network, self.aggregate, self.plan.k,
                        series).execute()
        if self.plan.algorithm is Algorithm.CENTRALIZED:
            return self._centralized_historic(series)
        raise PlanError(
            f"{self.plan.algorithm.value} cannot run historic-vertical "
            f"queries"
        )

    def _centralized_historic(self, series: Mapping[int, Mapping[int, float]]
                              ) -> TjaResult:
        """Ship every buffered column to the sink, evaluate there."""
        from ..network.messages import ObjectScore, ScoreListMessage

        totals: dict[int, "list[float]"] = {}
        with self.network.stats.phase("centralized_history"):
            for node_id, column in sorted(series.items()):
                message = ScoreListMessage(items=tuple(
                    ObjectScore(object_id, value)
                    for object_id, value in sorted(column.items())
                ))
                self.network.unicast_to_sink(node_id, message)
                for object_id, value in column.items():
                    totals.setdefault(object_id, []).append(value)
        scored = []
        for object_id, values in totals.items():
            partial = None
            for value in values:
                lifted = self.aggregate.from_value(value)
                partial = (lifted if partial is None
                           else self.aggregate.merge(partial, lifted))
            scored.append((object_id, self.aggregate.finalize(partial)))
        scored.sort(key=lambda pair: rank_key(pair[0], pair[1]))
        items = tuple(
            RankedItem(key=object_id, score=score, lb=score, ub=score)
            for object_id, score in scored[:self.plan.k]
        )
        return TjaResult(items=items, candidates=len(scored),
                         cleanup_rounds=0, per_phase_bytes={})
