"""FILA-style filter-based top-k monitoring (Wu et al., ICDE 2006).

The cited snapshot-class alternative to MINT (reference [17]): instead
of shipping pruned views every epoch, the sink installs a *filter
interval* on every node. A node stays silent while its reading remains
inside its filter; it reports only on a violation. The sink re-derives
the top-k from exact reports plus filter intervals, probing nodes whose
intervals straddle the ranking boundary, then reassigns filters around
the new boundary.

This implementation monitors the top-k *nodes* by their current reading
(FILA's core setting). Correctness is certification-based, reusing
:func:`repro.core.certify.certify_top_k`: silent nodes contribute their
filter interval as bounds — sound, because silence proves the reading
stayed inside. Answers are therefore exact every epoch, like MINT's.

Switch-and-prove: the fused monitor+bounds pass, the persistent
``TopKView`` and the columnar batch-sensing loop run only while
``hotpath.enabled()`` (and ``columnar.enabled()`` for the batch path);
``hotpath.reference_path()`` restores the first-principles branches
and the cold ``certify_top_k`` oracle, ``columnar.scalar_path()``
isolates the data-layout win. ``tests/test_hotpath_equivalence.py``
and ``tests/test_delta_equivalence.py`` prove every path
byte-identical.
"""

from __future__ import annotations

from typing import Mapping

from ..errors import ValidationError
from ..network import columnar, eventsim, hotpath
from ..network.messages import (
    FilterReportMessage,
    FilterUpdateMessage,
    ProbeRequestMessage,
    QueryMessage,
    ViewEntry,
)
from ..network.simulator import Network
from .aggregates import Aggregate, Bounds
from .certify import certify_top_k
from .delta import TopKView
from .results import EpochResult


class _FilaColumns:
    """One session's structure-of-arrays mirror of its filter state.

    Parallel columns aligned to the deployment's alive-id tuple: the
    installed filter interval per row (NaN = none), the last exactly-
    known value per row (NaN = none), and the ``synced`` mask — True
    iff the certification view's bound for that row *is* its filter
    interval, which is exactly the condition under which the scalar
    monitor / answer passes would re-``ensure`` a value the view
    already holds (a proven no-op). The mask helpers in
    :mod:`repro.network.columnar` turn those no-op visits into
    whole-column skips. Rebuilt (all-unsynced — always safe, the next
    pass just visits every row once) whenever the id tuple's identity,
    the backend, or out-of-band filter state changes.
    """

    __slots__ = ("ids", "index", "backend", "flt_lo", "flt_hi",
                 "synced", "known")

    def __init__(self, ids: tuple[int, ...],
                 filters: Mapping[int, tuple[float, float]],
                 known: Mapping[int, float]):
        self.ids = ids
        self.index = {node_id: row for row, node_id in enumerate(ids)}
        self.backend = columnar.backend()
        nan = columnar.nan()
        intervals = [filters.get(node_id) for node_id in ids]
        self.flt_lo = columnar.float_column(
            [f[0] if f is not None else nan for f in intervals])
        self.flt_hi = columnar.float_column(
            [f[1] if f is not None else nan for f in intervals])
        self.synced = columnar.bool_column(len(ids), False)
        self.known = columnar.float_column(
            [known.get(node_id, nan) for node_id in ids])


class Fila:
    """Filter-based continuous top-k node monitoring."""

    name = "fila"

    def __init__(self, network: Network, aggregate: Aggregate, k: int,
                 attribute: str = "sound"):
        """Filters partition the value space strictly at the ranking
        boundary: the top-k nodes' filters sit above it, everyone
        else's below. Overlapping (hysteresis) filters would leave the
        boundary permanently ambiguous and force a probe per epoch —
        the partition is what lets silence certify the set.
        """
        if k < 1:
            raise ValidationError("k must be >= 1")
        self.network = network
        self.aggregate = aggregate
        self.k = k
        self.attribute = attribute
        #: Installed filter per node (lo, hi); None until setup.
        self.filters: dict[int, tuple[float, float]] = {}
        #: The sink's last exactly-known value per node.
        self.known: dict[int, float] = {}
        #: The global ranking boundary the filters partition at.
        self.boundary = aggregate.lo
        self._setup_done = False
        #: Hot-path memo of the repartition's iteration order (the
        #: sorted filter ids); valid only while ``filters`` keeps its
        #: key set, which post-setup only churn can change.
        self._install_order: tuple[int, ...] | None = None
        #: Hot path: the sink's maintained certification view. FILA is
        #: the certifier's heaviest client (monitor + probe rounds +
        #: the answer pass certify every epoch over all N nodes); the
        #: view re-ranks only the nodes whose bound actually moved —
        #: violations, probes and filter reinstalls, typically a
        #: handful per epoch.
        self._view = TopKView(k, require_exact_scores=False)
        #: Columnar kernel state; None whenever the last epoch ran a
        #: scalar pass (columns are rebuilt unsynced on reactivation).
        self._cols: _FilaColumns | None = None

    # ------------------------------------------------------------------
    # Filter management
    # ------------------------------------------------------------------

    def _choose_boundary(self, chosen_floor: float, others_ceiling: float
                         ) -> float:
        """Pick the partition point between the top-k and the rest.

        Any value in ``[others_ceiling, chosen_floor]`` partitions
        correctly; keeping the previous boundary when it still fits
        avoids reinstalling every filter on small drifts."""
        if others_ceiling <= self.boundary <= chosen_floor:
            return self.boundary
        if others_ceiling > chosen_floor:
            # Exact tie straddling the cut: both sides sit at the value.
            return chosen_floor
        return (chosen_floor + others_ceiling) / 2.0

    def _install_filters(self, chosen: set[int], boundary: float,
                         exact_values: Mapping[int, float] | None = None,
                         ) -> int:
        """Repartition with minimal reinstalls.

        Certification needs every chosen filter to sit at or above the
        cut and every other filter at or below it. A node keeps its
        current filter whenever it already satisfies that (and still
        contains the node's value, where the sink knows it) — so a
        drift event only reinstalls the nodes actually involved.
        Assignment is by *rank*, not by value: a node tied exactly at
        the boundary stays silent on whichever side it was assigned."""
        exact_values = exact_values or {}
        installed = 0
        if hotpath.enabled() and self.filters:
            # Post-setup the filter key set only shrinks (churn pops,
            # which invalidates the memo); the per-epoch sort of every
            # node id is paid once per topology change instead.
            order = self._install_order
            if order is None:
                order = self._install_order = tuple(sorted(self.filters))
        else:
            order = sorted(self.filters or self.known)
        for node_id in order:
            node = self.network.nodes.get(node_id)
            if node is None or not node.alive:
                continue
            current = self.filters.get(node_id)
            if node_id in chosen:
                acceptable = (current is not None
                              and current[0] >= boundary
                              and current[1] == self.aggregate.hi)
                new_filter = (boundary, self.aggregate.hi)
            else:
                acceptable = (current is not None
                              and current[1] <= boundary
                              and current[0] == self.aggregate.lo)
                new_filter = (self.aggregate.lo, boundary)
            if acceptable and node_id in exact_values:
                lo, hi = current
                acceptable = lo <= exact_values[node_id] <= hi
            if acceptable:
                continue
            if current == new_filter:
                continue
            self.network.unicast_from_sink(
                node_id, FilterUpdateMessage(
                    intervals=((node_id, *new_filter),)))
            self.filters[node_id] = new_filter
            installed += 1
        return installed

    def _install_filters_columnar(self, chosen: set[int], boundary: float,
                                  exact_values: Mapping[int, float],
                                  cols: _FilaColumns) -> int:
        """The column-mask form of :meth:`_install_filters`.

        Whole-column acceptability (:func:`columnar.acceptable_filters`)
        plus a sparse exact-value containment fix-up replace the
        all-node scalar scan; only the rows
        :func:`columnar.pending_install_rows` singles out are visited,
        in ascending id order — the same nodes the scalar pass would
        reinstall, shipping the same messages in the same order (only
        alive nodes have rows, and the scalar pass skips dead ones).
        """
        ids = cols.ids
        index = cols.index
        agg_lo, agg_hi = self.aggregate.lo, self.aggregate.hi
        chosen_mask = columnar.bool_column(len(ids), False)
        for node_id in chosen:
            row = index.get(node_id)
            if row is not None:
                chosen_mask[row] = True
        acceptable = columnar.acceptable_filters(
            cols.flt_lo, cols.flt_hi, chosen_mask, boundary, agg_lo, agg_hi)
        filters = self.filters
        for node_id, value in exact_values.items():
            row = index.get(node_id)
            if row is None or not acceptable[row]:
                continue
            lo, hi = filters[node_id]
            if not (lo <= value <= hi):
                acceptable[row] = False
        installed = 0
        unicast_from_sink = self.network.unicast_from_sink
        flt_lo, flt_hi, synced = cols.flt_lo, cols.flt_hi, cols.synced
        for row in columnar.pending_install_rows(
                flt_lo, flt_hi, chosen_mask, acceptable,
                boundary, agg_lo, agg_hi):
            node_id = ids[row]
            new_filter = ((boundary, agg_hi) if chosen_mask[row]
                          else (agg_lo, boundary))
            unicast_from_sink(
                node_id, FilterUpdateMessage(
                    intervals=((node_id, *new_filter),)))
            filters[node_id] = new_filter
            flt_lo[row], flt_hi[row] = new_filter
            synced[row] = False
            installed += 1
        return installed

    # ------------------------------------------------------------------
    # Epoch driver
    # ------------------------------------------------------------------

    def _columns(self, ids: tuple[int, ...]) -> _FilaColumns:
        """This session's columns, rebuilt when stale (id tuple or
        backend changed, or a scalar pass ran in between)."""
        cols = self._cols
        if (cols is None or cols.ids is not ids
                or cols.backend != columnar.backend()):
            cols = self._cols = _FilaColumns(ids, self.filters, self.known)
        return cols

    def _setup(self, readings: Mapping[int, float]) -> None:
        with self.network.stats.phase("setup"):
            self.network.flood_down(lambda _: QueryMessage(query_id=4))
            for node_id, value in readings.items():
                self.network.unicast_to_sink(
                    node_id, FilterReportMessage(
                        epoch=self.network.epoch,
                        entries=(ViewEntry(node_id, value, 1),)))
                self.known[node_id] = value
            ranked = sorted(self.known.items(), key=lambda kv: (-kv[1], kv[0]))
            chosen = {node_id for node_id, _ in ranked[:self.k]}
            if len(ranked) > self.k:
                self.boundary = (ranked[self.k - 1][1]
                                 + ranked[self.k][1]) / 2.0
            self._install_filters(chosen, self.boundary)
        self._setup_done = True
        self._install_order = None

    def _run_monitor_phase(self, readings: Mapping[int, float]
                           ) -> Mapping[int, Bounds]:
        """The monitoring + interval-derivation pass, fused (hot path).

        Semantically identical to the reference branch in
        :meth:`run_epoch` — same reports in the same order, same bound
        per node — with the filter lookup shared between the violation
        check and the bound, the transport and ledgers resolved once,
        and the per-node bounds converged into the persistent
        :class:`~repro.core.delta.TopKView` (an unchanged bound costs
        two float compares, no allocation, no re-rank).

        Under the event core the sink-side report handling (known-value
        cache, void-filter bound) becomes an explicit receive handler
        passed to
        :meth:`~repro.network.simulator.Network.unicast_to_sink`; in
        zero-delay mode it fires synchronously after the last hop,
        byte-identical to the inline body.
        """
        network = self.network
        epoch = network.epoch
        filters_get = self.filters.get
        known = self.known
        unicast_to_sink = network.unicast_to_sink
        use_events = eventsim.enabled()
        view = self._view
        ensure = view.ensure
        with network.stats.phase("monitor"):
            for node_id, value in readings.items():
                current = filters_get(node_id)
                if (current is not None
                        and current[0] <= value <= current[1]):
                    ensure(node_id, current[0], current[1])
                    continue
                message = FilterReportMessage(
                    epoch=epoch,
                    entries=(ViewEntry(node_id, value, 1),))
                if use_events:
                    def receive(node_id=node_id, value=value):
                        known[node_id] = value
                        ensure(node_id, value, value)

                    unicast_to_sink(node_id, message, deliver=receive)
                    continue
                unicast_to_sink(node_id, message)
                known[node_id] = value
                # The violating node's filter is void until reset;
                # its value is exactly known this epoch.
                ensure(node_id, value, value)
        self._drop_stale_view_nodes(readings)
        return view.bounds

    def _run_monitor_columnar(self, readings: Mapping[int, float],
                              values, cols: _FilaColumns
                              ) -> Mapping[int, Bounds]:
        """The monitoring pass over columns (columnar kernel).

        :func:`columnar.pending_monitor_rows` picks out, in one
        whole-column operation, exactly the rows whose scalar visit
        would do real work — a violation report or a view bound that
        is not already the filter interval; every skipped row's visit
        is a proven no-op (see the helper's contract). Visited rows
        run the scalar body verbatim, so reports ship in the same
        ascending-id order with the same bytes. The event core hands
        the sink-side report handling to an explicit receive handler,
        exactly as :meth:`_run_monitor_phase` does.
        """
        network = self.network
        epoch = network.epoch
        ids = cols.ids
        filters_get = self.filters.get
        known = self.known
        known_col = cols.known
        synced = cols.synced
        unicast_to_sink = network.unicast_to_sink
        use_events = eventsim.enabled()
        view = self._view
        ensure = view.ensure
        with network.stats.phase("monitor"):
            for row in columnar.pending_monitor_rows(
                    values, cols.flt_lo, cols.flt_hi, synced):
                node_id = ids[row]
                value = readings[node_id]
                current = filters_get(node_id)
                if (current is not None
                        and current[0] <= value <= current[1]):
                    ensure(node_id, current[0], current[1])
                    synced[row] = True
                    continue
                message = FilterReportMessage(
                    epoch=epoch,
                    entries=(ViewEntry(node_id, value, 1),))
                if use_events:
                    def receive(node_id=node_id, value=value, row=row):
                        known[node_id] = value
                        known_col[row] = value
                        ensure(node_id, value, value)

                    unicast_to_sink(node_id, message, deliver=receive)
                else:
                    unicast_to_sink(node_id, message)
                    known[node_id] = value
                    known_col[row] = value
                    ensure(node_id, value, value)
                synced[row] = False
        self._drop_stale_view_nodes(readings)
        return view.bounds

    def _drop_stale_view_nodes(self, readings: Mapping[int, float]) -> None:
        """Retract view entries for nodes no longer read (deaths the
        session's topology handler did not see, e.g. engine-direct
        runs)."""
        view = self._view
        if len(view) != len(readings):
            for node_id in [n for n in view.bounds if n not in readings]:
                view.delete(node_id)

    def _certify(self, bounds: Mapping[int, Bounds], hot: bool):
        """Hot: the maintained view's O(k + |ambiguous| + log N)
        outcome. Reference: the cold O(N log N) oracle. Equal by the
        delta-equivalence suite."""
        if hot:
            return self._view.outcome()
        return certify_top_k(bounds, self.k, require_exact_scores=False)

    def run_epoch(self) -> EpochResult:
        """One monitoring round: violations, certification, probes."""
        network = self.network
        ids = network.alive_sensor_ids()
        readings = network.read_many(ids, self.attribute)
        probed = 0
        hot = hotpath.enabled()
        cols = values = None
        if hot and columnar._enabled and self._setup_done:
            cols = self._columns(ids)
            values = network.reading_column(ids, self.attribute)
            if values is None:
                values = columnar.float_column(
                    [readings[node_id] for node_id in ids])
        else:
            self._cols = None
        if not self._setup_done:
            self._setup(readings)
        else:
            if cols is not None:
                bounds = self._run_monitor_columnar(readings, values, cols)
            elif hot:
                bounds = self._run_monitor_phase(readings)
            else:
                with self.network.stats.phase("monitor"):
                    for node_id, value in readings.items():
                        # A node with no installed filter (it joined
                        # after setup) always reports: silence only
                        # certifies where a filter exists to stay
                        # inside.
                        current = self.filters.get(node_id)
                        if (current is not None
                                and current[0] <= value <= current[1]):
                            continue
                        self.network.unicast_to_sink(
                            node_id, FilterReportMessage(
                                epoch=self.network.epoch,
                                entries=(ViewEntry(node_id, value, 1),)))
                        self.known[node_id] = value
                        # The violating node's filter is void until
                        # reset; treat its value as exactly known this
                        # epoch.

                bounds = {}
                for node_id, value in readings.items():
                    current = self.filters.get(node_id)
                    if (current is not None
                            and current[0] <= value <= current[1]):
                        bounds[node_id] = Bounds(current[0], current[1])
                    else:
                        bounds[node_id] = Bounds(value, value)
            # FILA certifies set membership: silent nodes keep their
            # filter interval as the score estimate.
            outcome = self._certify(bounds, hot)
            while outcome.needs_probe:
                with self.network.stats.phase("probe"):
                    for node_id in outcome.ambiguous:
                        if bounds[node_id].exact:
                            continue
                        self.network.unicast_from_sink(
                            node_id, ProbeRequestMessage(
                                epoch=self.network.epoch, groups=(node_id,)))
                        self.network.unicast_to_sink(
                            node_id, FilterReportMessage(
                                epoch=self.network.epoch,
                                entries=(ViewEntry(
                                    node_id, readings[node_id], 1),)))
                        value = readings[node_id]
                        self.known[node_id] = value
                        if cols is not None:
                            row = cols.index.get(node_id)
                            if row is not None:
                                cols.known[row] = value
                                cols.synced[row] = False
                        if hot:
                            # Never item-assign into view.bounds — the
                            # collapse must go through the delta surface
                            # to keep the maintained orders in sync.
                            self._view.ensure(node_id, value, value)
                        else:
                            bounds[node_id] = Bounds(value, value)
                probed += 1
                outcome = self._certify(bounds, hot)

            # Re-partition the filters around the certified cut.
            chosen = {item.key for item in outcome.items}
            chosen_floor = min(bounds[n].lb for n in chosen)
            if cols is not None:
                # Post-monitor every row's upper bound is its filter
                # ceiling (synced) or its exact reading, so the
                # non-chosen maximum reduces over one column.
                others_ceiling = columnar.masked_ceiling(
                    values, cols.flt_hi, cols.synced,
                    [cols.index[n] for n in chosen if n in cols.index])
                boundary = (self._choose_boundary(chosen_floor,
                                                  others_ceiling)
                            if others_ceiling is not None
                            else self.boundary)
            else:
                others = [n for n in bounds if n not in chosen]
                if others:
                    others_ceiling = max(bounds[n].ub for n in others)
                    boundary = self._choose_boundary(chosen_floor,
                                                     others_ceiling)
                else:
                    boundary = self.boundary
            self.boundary = boundary
            if cols is not None and self.filters:
                known = self.known
                fresh = {}
                for row in columnar.exact_rows(cols.flt_lo, cols.flt_hi,
                                               cols.synced):
                    node_id = ids[row]
                    value = known.get(node_id)
                    if value is not None:
                        fresh[node_id] = value
                with self.network.stats.phase("filter_update"):
                    self._install_filters_columnar(chosen, boundary,
                                                   fresh, cols)
            else:
                if cols is not None:
                    # Filter table emptied out-of-band (churn swept
                    # every install): the scalar repartition rebuilds
                    # it from ``known``; columns are stale after.
                    cols = self._cols = None
                fresh = {n: self.known[n] for n in bounds
                         if bounds[n].exact and n in self.known}
                with self.network.stats.phase("filter_update"):
                    self._install_filters(chosen, boundary,
                                          exact_values=fresh)

        # Build the answer from current knowledge.
        known_get = self.known.get
        filters_get = self.filters.get
        if hot:
            # Converge the persistent view to answer-time knowledge:
            # only nodes whose filter was just reinstalled (or probed /
            # violated above) actually move.
            view = self._view
            ensure = view.ensure
            lo, hi = self.aggregate.lo, self.aggregate.hi
            if cols is not None:
                # Whole-column skip of the rows whose scalar visit
                # would re-ensure the filter interval the view already
                # holds (non-exact, synced, filter installed).
                ids_tuple = cols.ids
                synced = cols.synced
                for row in columnar.pending_answer_rows(
                        values, cols.known, cols.flt_lo, synced):
                    node_id = ids_tuple[row]
                    value = readings[node_id]
                    if known_get(node_id) == value:
                        ensure(node_id, value, value)
                        synced[row] = False
                    else:
                        current = filters_get(node_id)
                        if current is None:
                            ensure(node_id, lo, hi)
                            synced[row] = False
                        else:
                            ensure(node_id, current[0], current[1])
                            synced[row] = True
            else:
                for node_id, value in readings.items():
                    if known_get(node_id) == value:
                        ensure(node_id, value, value)
                    else:
                        current = filters_get(node_id)
                        if current is None:
                            ensure(node_id, lo, hi)
                        else:
                            ensure(node_id, current[0], current[1])
            self._drop_stale_view_nodes(readings)
            bounds = view.bounds
            outcome = view.outcome()
        else:
            unknown = Bounds(self.aggregate.lo, self.aggregate.hi)
            bounds = {}
            for node_id, value in readings.items():
                if known_get(node_id) == value:
                    bounds[node_id] = Bounds(value, value)
                else:
                    current = filters_get(node_id)
                    bounds[node_id] = (unknown if current is None
                                       else Bounds(current[0], current[1]))
            outcome = certify_top_k(bounds, self.k,
                                    require_exact_scores=False)
        result = EpochResult(
            epoch=self.network.epoch,
            items=outcome.items,
            exact=outcome.certified,
            algorithm=self.name,
            probed=probed,
            all_bounds=(self._view.bounds_snapshot() if hot else
                        {g: (b.lb, b.ub) for g, b in bounds.items()}),
            certification=outcome,
        )
        self.network.advance_epoch()
        return result

    def handle_topology_event(self, event) -> int:
        """Drop the dead node's filter, known value and view entry;
        newborns get a filter lazily (their first epoch reports, the
        repartition step then installs one). Returns the number of
        filters invalidated.
        """
        invalidated = 0
        if event.failed:
            if self.filters.pop(event.node_id, None) is not None:
                invalidated += 1
                self._install_order = None
            self.known.pop(event.node_id, None)
            self._view.delete(event.node_id)
            # Filter / known state changed out-of-band of the column
            # maintenance sites; rebuild on the next columnar epoch.
            self._cols = None
        return invalidated

    def run(self, epochs: int) -> list[EpochResult]:
        """``epochs`` consecutive monitoring rounds."""
        return [self.run_epoch() for _ in range(epochs)]
