"""TAG baseline: full in-network aggregation, sink-side top-k operator.

This is the "straightforward" technique of §I: following the TAG
approach used in TinyDB, every node forwards one ``(group, sum,
count)`` tuple *per group it knows about* to its parent each epoch, and
"one could then easily implement a new top-k operator at the sink …
in a centralized manner". Exact by construction; the cost KSpot's
pruning is measured against.

Like MINT, the per-epoch converge-cast runs on a fused hot path (see
:mod:`repro.network.hotpath`): acquisition shares lifted partials via
a memo, group sort keys are stringified once, leaves skip the merge
machinery, and messages ship straight over the cached tree edge. The
reference implementation remains in :meth:`Tag.run_epoch`'s reference
branch — the oracle ``hotpath.reference_path()`` restores — and
``tests/test_hotpath_equivalence.py`` holds both paths to identical
messages, stats and answers.
"""

from __future__ import annotations

from typing import Hashable, Mapping

from ..errors import ValidationError
from ..network import eventsim, hotpath
from ..network.messages import QueryMessage, ViewEntry, ViewUpdateMessage
from ..network.simulator import Network
from .aggregates import Aggregate, Partial, SortKeys
from .delta import TopKView
from .results import EpochResult, RankedItem, rank_key

GroupKey = Hashable


class Tag:
    """Per-epoch full converge-cast of group views."""

    name = "tag"

    def __init__(self, network: Network, aggregate: Aggregate, k: int | None,
                 group_of: Mapping[int, GroupKey],
                 attribute: str = "sound",
                 window_epochs: int | None = None,
                 where_fn=None):
        if k is not None and k < 1:
            raise ValidationError("k must be >= 1 (or None for all groups)")
        self.network = network
        self.aggregate = aggregate
        self.k = k
        self.attribute = attribute
        self.group_of = dict(group_of)
        self.window_epochs = window_epochs
        #: Optional dynamic acquisition predicate
        #: ``where_fn(node_id, group, value) -> bool``.
        self.where_fn = where_fn
        self._disseminated = False
        #: Hot-path memo of per-group string sort keys.
        self._gstr = SortKeys()
        #: Hot-path memo of lifted reading partials (see Mint._acquire).
        self._lift_memo: dict[float, Partial] = {}
        #: Hot-path memo of the participant tuple (see Mint._participants).
        self._participants_cache: tuple | None = None
        #: Hot path: a ranking-only maintained view (k=None ranks all
        #: groups). Group scores drift a little per epoch; reconciling
        #: point deltas into the kept order beats re-sorting every
        #: group from scratch each round.
        self._rank_view = TopKView(self.k)

    def _participants(self) -> tuple[int, ...]:
        alive = self.network.alive_sensor_ids()
        if hotpath.enabled():
            # Keyed like Mint's: identity of the (cached) alive tuple
            # and the membership dict the engine rebinds on adoption.
            group_of = self.group_of
            cache = self._participants_cache
            if (cache is not None and cache[0] is alive
                    and cache[1] is group_of):
                return cache[2]
            result = tuple(n for n in alive if n in group_of)
            self._participants_cache = (alive, group_of, result)
            return result
        return tuple(n for n in alive if n in self.group_of)

    def _acquire(self) -> dict[int, Partial]:
        contributions: dict[int, Partial] = {}
        nodes = self.network.nodes
        epoch = self.network.epoch
        attribute = self.attribute
        from_value = self.aggregate.from_value
        if (hotpath.enabled() and self.window_epochs is None
                and self.where_fn is None):
            # Readings are ADC-quantized: the same few hundred values
            # recur, and lifted partials are immutable and shareable.
            memo = self._lift_memo
            if len(memo) > 4096:
                memo.clear()
            readings = self.network.read_many(
                self._participants(), attribute)
            for node_id, value in readings.items():
                partial = memo.get(value)
                if partial is None:
                    partial = memo[value] = from_value(value)
                contributions[node_id] = partial
            return contributions
        for node_id in self._participants():
            node = nodes[node_id]
            value = node.read(attribute, epoch)
            if self.window_epochs is not None:
                value = node.window_for(attribute).aggregate(
                    self.aggregate.func.lower(), last_n=self.window_epochs)
            if self.where_fn is not None and not self.where_fn(
                    node_id, self.group_of[node_id], value):
                continue
            contributions[node_id] = from_value(value)
        return contributions

    def _run_aggregation_phase(
            self, contributions: dict[int, Partial]
    ) -> dict[GroupKey, Partial]:
        """The converge-cast, fused into one hot-path pass.

        Semantically identical to the reference branch in
        :meth:`run_epoch` — same views, same wire order, same messages
        — with the per-node containers, sort-key stringification and
        transport guards lifted out of the loop (the same fusion MINT's
        update phase applies; the equivalence property test covers it).

        Under the event core the parent-side deposit (merging into the
        sink view or parking the partial view for the parent's turn)
        becomes an explicit receive handler passed to
        :meth:`~repro.network.simulator.Network.post_unicast`; in
        zero-delay mode the handler fires synchronously at the post
        site, byte-identical to the inline deposit below.
        """
        network = self.network
        epoch = network.epoch
        merge = self.aggregate.merge
        gstr = self._gstr
        group_of = self.group_of
        contributions_get = contributions.get
        children_of = network.tree.children
        parents = network.tree._parents
        ship_unicast = network._ship_unicast
        post_unicast = network.post_unicast if eventsim.enabled() else None
        sink_id = network.sink_id
        wire_key = lambda item: gstr[item[0]]  # noqa: E731  entry order
        partial_views: dict[int, dict[GroupKey, Partial]] = {}
        sink_view: dict[GroupKey, Partial] = {}
        with network.stats.phase("aggregation"):
            for node_id in network.converge_cast_order():
                own = contributions_get(node_id)
                children = children_of(node_id)
                # -- leaf fast path: the view is the own contribution --
                if not children:
                    if own is None:
                        view: dict[GroupKey, Partial] = {}
                        entries: tuple = ()
                    else:
                        group = group_of[node_id]
                        view = {group: own}
                        entries = (ViewEntry(group, own[0], own[1]),)
                else:
                    view = {}
                    if own is not None:
                        view[group_of[node_id]] = own
                    view_get = view.get
                    for child in children:
                        child_view = partial_views.get(child)
                        if not child_view:
                            continue
                        for group, partial in child_view.items():
                            existing = view_get(group)
                            view[group] = (partial if existing is None
                                           else merge(existing, partial))
                    items = sorted(view.items(), key=wire_key) \
                        if len(view) > 1 else view.items()
                    entries = tuple([ViewEntry(group, partial[0], partial[1])
                                     for group, partial in items])
                message = ViewUpdateMessage(epoch=epoch, entries=entries)
                # Every node in the converge-cast order is alive and
                # non-root, so the send_up guards are vacuous here.
                parent = parents[node_id]
                if post_unicast is not None:
                    def deposit(node_id=node_id, parent=parent, view=view):
                        if parent == sink_id:
                            sink_get = sink_view.get
                            for group, partial in view.items():
                                existing = sink_get(group)
                                sink_view[group] = (
                                    partial if existing is None
                                    else merge(existing, partial))
                        else:
                            partial_views[node_id] = view

                    post_unicast(node_id, parent, message, deposit)
                    continue
                ship_unicast(node_id, parent, message)
                if parent == sink_id:
                    sink_get = sink_view.get
                    for group, partial in view.items():
                        existing = sink_get(group)
                        sink_view[group] = (partial if existing is None
                                            else merge(existing, partial))
                else:
                    partial_views[node_id] = view
        return sink_view

    def run_epoch(self) -> EpochResult:
        """One full aggregation round; returns the exact top-k."""
        if not self._disseminated:
            with self.network.stats.phase("dissemination"):
                self.network.flood_down(lambda _: QueryMessage(query_id=1))
            self._disseminated = True
        contributions = self._acquire()
        hot = hotpath.enabled()
        if hot:
            sink_view = self._run_aggregation_phase(contributions)
        else:
            partial_views: dict[int, dict[GroupKey, Partial]] = {}
            sink_view = {}
            with self.network.stats.phase("aggregation"):
                for node_id in self.network.converge_cast_order():
                    view: dict[GroupKey, Partial] = {}
                    own = contributions.get(node_id)
                    if own is not None:
                        view[self.group_of[node_id]] = own
                    for child in self.network.tree.children(node_id):
                        for group, partial in partial_views.get(child,
                                                                {}).items():
                            existing = view.get(group)
                            view[group] = (partial if existing is None
                                           else self.aggregate.merge(existing,
                                                                     partial))
                    message = ViewUpdateMessage(
                        epoch=self.network.epoch,
                        entries=tuple(
                            ViewEntry(group, partial.value, partial.count)
                            for group, partial in sorted(
                                view.items(), key=lambda i: str(i[0]))
                        ),
                    )
                    parent = self.network.send_up(node_id, message)
                    if parent == self.network.sink_id:
                        for group, partial in view.items():
                            existing = sink_view.get(group)
                            sink_view[group] = (
                                partial if existing is None
                                else self.aggregate.merge(existing, partial))
                    else:
                        partial_views[node_id] = view

        if hot:
            finalize = self.aggregate.finalize
            self._rank_view.reconcile_scores(
                {group: finalize(partial)
                 for group, partial in sink_view.items()})
            scored = [(group, interval.lb)
                      for group, interval in self._rank_view.ranking()]
        else:
            scored = sorted(
                ((group, self.aggregate.finalize(partial))
                 for group, partial in sink_view.items()),
                key=lambda pair: rank_key(pair[0], pair[1]),
            )
        cut = scored if self.k is None else scored[:self.k]
        items = tuple(
            RankedItem(key=group, score=score, lb=score, ub=score)
            for group, score in cut
        )
        result = EpochResult(
            epoch=self.network.epoch,
            items=items,
            exact=True,
            algorithm=self.name,
            all_bounds={g: (s, s) for g, s in scored},
        )
        self.network.advance_epoch()
        return result

    def handle_topology_event(self, event) -> int:
        """Churn invalidates only the dissemination: TAG keeps no
        per-subtree caches, so recovery is a single re-flood of the
        query wave (reaching re-parented and newborn nodes) on the next
        epoch. Returns the number of states re-primed (always 0)."""
        del event
        self._disseminated = False
        return 0

    def run(self, epochs: int) -> list[EpochResult]:
        """``epochs`` consecutive aggregation rounds."""
        return [self.run_epoch() for _ in range(epochs)]
