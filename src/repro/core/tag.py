"""TAG baseline: full in-network aggregation, sink-side top-k operator.

This is the "straightforward" technique of §I: following the TAG
approach used in TinyDB, every node forwards one ``(group, sum,
count)`` tuple *per group it knows about* to its parent each epoch, and
"one could then easily implement a new top-k operator at the sink …
in a centralized manner". Exact by construction; the cost KSpot's
pruning is measured against.
"""

from __future__ import annotations

from typing import Hashable, Mapping

from ..errors import ValidationError
from ..network.messages import QueryMessage, ViewEntry, ViewUpdateMessage
from ..network.simulator import Network
from .aggregates import Aggregate, Partial
from .results import EpochResult, RankedItem, rank_key

GroupKey = Hashable


class Tag:
    """Per-epoch full converge-cast of group views."""

    name = "tag"

    def __init__(self, network: Network, aggregate: Aggregate, k: int | None,
                 group_of: Mapping[int, GroupKey],
                 attribute: str = "sound",
                 window_epochs: int | None = None,
                 where_fn=None):
        if k is not None and k < 1:
            raise ValidationError("k must be >= 1 (or None for all groups)")
        self.network = network
        self.aggregate = aggregate
        self.k = k
        self.attribute = attribute
        self.group_of = dict(group_of)
        self.window_epochs = window_epochs
        #: Optional dynamic acquisition predicate
        #: ``where_fn(node_id, group, value) -> bool``.
        self.where_fn = where_fn
        self._disseminated = False

    def _acquire(self) -> dict[int, Partial]:
        contributions: dict[int, Partial] = {}
        for node_id in self.network.alive_sensor_ids():
            if node_id not in self.group_of:
                continue
            node = self.network.node(node_id)
            value = node.read(self.attribute, self.network.epoch)
            if self.window_epochs is not None:
                value = node.window_for(self.attribute).aggregate(
                    self.aggregate.func.lower(), last_n=self.window_epochs)
            if self.where_fn is not None and not self.where_fn(
                    node_id, self.group_of[node_id], value):
                continue
            contributions[node_id] = self.aggregate.from_value(value)
        return contributions

    def run_epoch(self) -> EpochResult:
        """One full aggregation round; returns the exact top-k."""
        if not self._disseminated:
            with self.network.stats.phase("dissemination"):
                self.network.flood_down(lambda _: QueryMessage(query_id=1))
            self._disseminated = True
        contributions = self._acquire()
        partial_views: dict[int, dict[GroupKey, Partial]] = {}
        sink_view: dict[GroupKey, Partial] = {}
        with self.network.stats.phase("aggregation"):
            for node_id in self.network.converge_cast_order():
                view: dict[GroupKey, Partial] = {}
                own = contributions.get(node_id)
                if own is not None:
                    view[self.group_of[node_id]] = own
                for child in self.network.tree.children(node_id):
                    for group, partial in partial_views.get(child, {}).items():
                        existing = view.get(group)
                        view[group] = (partial if existing is None
                                       else self.aggregate.merge(existing,
                                                                 partial))
                message = ViewUpdateMessage(
                    epoch=self.network.epoch,
                    entries=tuple(
                        ViewEntry(group, partial.value, partial.count)
                        for group, partial in sorted(view.items(),
                                                     key=lambda i: str(i[0]))
                    ),
                )
                parent = self.network.send_up(node_id, message)
                if parent == self.network.sink_id:
                    for group, partial in view.items():
                        existing = sink_view.get(group)
                        sink_view[group] = (
                            partial if existing is None
                            else self.aggregate.merge(existing, partial))
                else:
                    partial_views[node_id] = view

        scored = sorted(
            ((group, self.aggregate.finalize(partial))
             for group, partial in sink_view.items()),
            key=lambda pair: rank_key(pair[0], pair[1]),
        )
        cut = scored if self.k is None else scored[:self.k]
        items = tuple(
            RankedItem(key=group, score=score, lb=score, ub=score)
            for group, score in cut
        )
        result = EpochResult(
            epoch=self.network.epoch,
            items=items,
            exact=True,
            algorithm=self.name,
            all_bounds={g: (s, s) for g, s in scored},
        )
        self.network.advance_epoch()
        return result

    def handle_topology_event(self, event) -> int:
        """Churn invalidates only the dissemination: TAG keeps no
        per-subtree caches, so recovery is a single re-flood of the
        query wave (reaching re-parented and newborn nodes) on the next
        epoch. Returns the number of states re-primed (always 0)."""
        del event
        self._disseminated = False
        return 0

    def run(self, epochs: int) -> list[EpochResult]:
        """``epochs`` consecutive aggregation rounds."""
        return [self.run_epoch() for _ in range(epochs)]
