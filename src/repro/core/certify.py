"""Top-k certification from per-group bound intervals.

Given a certified interval ``[lb, ub]`` per group, the sink can often
*prove* the answer without seeing every reading:

1. rank groups by lower bound and take τ = the k-th largest lb;
2. every group whose ub < τ provably cannot displace the chosen k;
3. the groups with ub ≥ τ form the *ambiguous set* — if it has exactly
   k members the set answer is certified; otherwise a probe must fetch
   exact values for precisely those groups.

After probing, every ambiguous group's interval is a point, so the set
*and the order* of the answer are exact.

:func:`certify_top_k` here is the stateless **reference oracle** of
that decision procedure: given a full bounds mapping it re-derives
everything from scratch, O(N log N) per call. On the optimized path
(:mod:`repro.network.hotpath`) the engines no longer call it per
epoch — each session feeds per-epoch *deltas* into a maintained
:class:`~repro.core.delta.TopKView` whose ``outcome()`` is proven
byte-identical to this oracle (``tests/test_delta_equivalence.py``).
The oracle stays authoritative: the reference path still runs it cold,
and every equivalence test compares the view against it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Mapping

from ..errors import ValidationError
from .aggregates import Bounds
from .results import RankedItem, rank_key


@dataclass(frozen=True)
class CertificationOutcome:
    """What the sink concluded from one round of bounds."""

    certified: bool
    items: tuple[RankedItem, ...]
    ambiguous: tuple[Hashable, ...]
    threshold: float

    @property
    def needs_probe(self) -> bool:
        """True when a probe round must resolve the ambiguous groups."""
        return not self.certified

    def as_dict(self) -> dict:
        """Plain-data form for JSON surfaces (mirrors
        :meth:`~repro.gui.stats.SavingsSample.as_dict`)."""
        return {
            "certified": self.certified,
            "threshold": self.threshold,
            "ambiguous": list(self.ambiguous),
            "items": [
                {"key": item.key, "score": item.score,
                 "lb": item.lb, "ub": item.ub}
                for item in self.items
            ],
            "needs_probe": self.needs_probe,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "CertificationOutcome":
        """Rebuild an outcome from :meth:`as_dict` output."""
        return cls(
            certified=bool(data["certified"]),
            items=tuple(
                RankedItem(key=item["key"], score=item["score"],
                           lb=item["lb"], ub=item["ub"])
                for item in data["items"]
            ),
            ambiguous=tuple(data["ambiguous"]),
            threshold=data["threshold"],
        )


def certify_top_k(bounds: Mapping[Hashable, Bounds], k: int,
                  tolerance: float = 1e-9,
                  require_exact_scores: bool = True) -> CertificationOutcome:
    """Decide the top-k from intervals, or name the groups to probe.

    With ``require_exact_scores`` (MINT's mode), certification requires
    every chosen group's score to be exact (its interval collapsed)
    *and* every non-chosen group's upper bound to sit below the k-th
    chosen score: that certifies both membership and rank order,
    matching the paper's claim of exact answers. Without it (FILA's
    mode), only *set membership* must separate — silent nodes keep
    their filter intervals as scores.

    Args:
        bounds: Interval per group (every group that exists).
        k: Ranking depth; when fewer groups exist, all are returned.
        tolerance: Slack for float comparisons; intervals within
            tolerance of a point count as exact, and displacements must
            exceed it to block certification (ties may break either
            way — both orders are correct answers).
        require_exact_scores: Demand point scores for the chosen k.
    """
    if k < 1:
        raise ValidationError("k must be >= 1")
    if not bounds:
        raise ValidationError("cannot certify an empty group set")
    effective_k = min(k, len(bounds))

    by_lb = sorted(bounds.items(),
                   key=lambda pair: rank_key(pair[0], pair[1].lb))
    threshold = by_lb[effective_k - 1][1].lb

    ambiguous = tuple(sorted(
        (group for group, interval in bounds.items()
         if interval.ub >= threshold - tolerance),
        key=str,
    ))

    chosen = by_lb[:effective_k]
    chosen_exact = (not require_exact_scores) or all(
        interval.ub - interval.lb <= tolerance for _, interval in chosen)
    others_below = all(
        interval.ub <= threshold + tolerance
        for group, interval in bounds.items()
        if group not in {g for g, _ in chosen}
    )
    certified = chosen_exact and others_below

    items = tuple(
        RankedItem(key=group, score=interval.midpoint,
                   lb=interval.lb, ub=interval.ub)
        for group, interval in chosen
    )
    return CertificationOutcome(
        certified=certified,
        items=items,
        ambiguous=ambiguous,
        threshold=threshold,
    )
