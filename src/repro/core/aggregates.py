"""Partial-aggregate algebra with bound logic.

Everything in-network aggregation does reduces to three operations on
*partial states* — initialise from a reading, merge two partials,
finalize to a value (the TAG decomposition) — plus, for top-k pruning,
a fourth: **bound** the final value of a group given that some of its
readings were withheld (pruned) somewhere in the tree.

The bound contract (used by MINT's certification and probe logic):

* ``seen`` is the merged partial of every contribution that reached the
  sink; ``unseen`` is the exact number of readings still missing
  (known, because group cardinalities are learned in the creation
  phase and membership is static);
* every missing reading lies in the attribute's physical range
  ``[lo, hi]``; and
* every *pruned partial* containing missing readings finalized to a
  value ≤ ``gamma`` (the γ descriptor). ``gamma=None`` means no
  descriptor reached the sink, so only ``[lo, hi]`` constrains.

Each aggregate derives a sound interval from those facts; the proofs
are one-liners noted per class (the AVG case uses the mediant
inequality via sum/count mass accounting).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import NamedTuple

from ..errors import ValidationError


class SortKeys(dict):
    """group → ``str(group)`` memo for deterministic orderings.

    The engines' converge-cast loops sort views by the stringified
    group key at every node every epoch; group keys are a small static
    set, so the hot paths stringify each exactly once (shared by MINT
    and TAG).
    """

    def __missing__(self, group):
        key = self[group] = str(group)
        return key


class Partial(NamedTuple):
    """Mergeable aggregate state.

    ``value`` carries the sum for SUM/COUNT/AVG and the extremum for
    MIN/MAX; ``count`` is the number of readings folded in (the mass
    accounting the AVG bounds rely on).

    A NamedTuple rather than a dataclass: partials are created and
    compared millions of times per run in the converge-cast hot loop,
    and tuple construction/equality run in C.
    """

    value: float
    count: int


@dataclass(frozen=True, slots=True)
class Bounds:
    """A certified interval for a group's final aggregate value."""

    lb: float
    ub: float

    @property
    def exact(self) -> bool:
        """True when the interval has collapsed to a point."""
        return self.lb == self.ub

    @property
    def midpoint(self) -> float:
        """Point estimate used for provisional ranking."""
        return (self.lb + self.ub) / 2.0


class Aggregate(ABC):
    """One aggregate function bound to an attribute's physical range."""

    func: str = ""

    def __init__(self, lo: float, hi: float):
        if lo > hi:
            raise ValidationError("aggregate bounds need lo <= hi")
        self.lo = lo
        self.hi = hi

    # -- TAG algebra ----------------------------------------------------

    @abstractmethod
    def from_value(self, value: float) -> Partial:
        """Lift one reading into a partial."""

    @abstractmethod
    def merge(self, a: Partial, b: Partial) -> Partial:
        """Combine two disjoint partials."""

    @abstractmethod
    def finalize(self, partial: Partial) -> float:
        """The aggregate value of a complete partial."""

    # -- Bound logic ------------------------------------------------------

    @abstractmethod
    def bounds(self, seen: Partial | None, unseen: int,
               gamma: float | None) -> Bounds:
        """Sound interval for the final value under the bound contract."""

    # -- Helpers ----------------------------------------------------------

    def merge_many(self, partials: "list[Partial] | tuple[Partial, ...]"
                   ) -> Partial | None:
        """Fold a batch of partials (None for an empty batch)."""
        result: Partial | None = None
        for partial in partials:
            result = partial if result is None else self.merge(result, partial)
        return result

    def _pruned_value_cap(self, gamma: float | None) -> float:
        """Upper bound on any missing reading mass per reading."""
        if gamma is None:
            return self.hi
        return min(gamma, self.hi)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(lo={self.lo}, hi={self.hi})"


class AvgAggregate(Aggregate):
    """AVERAGE — the paper's running example.

    Bound proof sketch: final = (s + S') / (c + m) where the unseen sum
    S' is a union of pruned partials, each with average ≤ γ, so
    S' ≤ min(γ, hi)·m, and trivially S' ≥ lo·m.
    """

    func = "AVG"

    def from_value(self, value: float) -> Partial:
        return Partial(value, 1)

    def merge(self, a: Partial, b: Partial) -> Partial:
        return Partial(a.value + b.value, a.count + b.count)

    def finalize(self, partial: Partial) -> float:
        if partial.count == 0:
            raise ValidationError("cannot finalize an empty AVG partial")
        return partial.value / partial.count

    def bounds(self, seen: Partial | None, unseen: int,
               gamma: float | None) -> Bounds:
        if unseen < 0:
            raise ValidationError("unseen count cannot be negative")
        if seen is None:
            if unseen == 0:
                raise ValidationError("a group with no readings has no bounds")
            return Bounds(self.lo, self._pruned_value_cap(gamma))
        if unseen == 0:
            exact = self.finalize(seen)
            return Bounds(exact, exact)
        total = seen.count + unseen
        cap = self._pruned_value_cap(gamma)
        return Bounds(
            lb=(seen.value + self.lo * unseen) / total,
            ub=(seen.value + cap * unseen) / total,
        )


class SumAggregate(Aggregate):
    """SUM. Unseen mass adds between lo·m and min(γ, hi)·m.

    (Each pruned partial sums to ≤ γ and covers ≥ 1 reading, so with m
    readings missing there are at most m pruned partials: S' ≤ γ·m; the
    per-reading cap gives S' ≤ hi·m; both hold, so the min does.)
    """

    func = "SUM"

    def from_value(self, value: float) -> Partial:
        return Partial(value, 1)

    def merge(self, a: Partial, b: Partial) -> Partial:
        return Partial(a.value + b.value, a.count + b.count)

    def finalize(self, partial: Partial) -> float:
        return partial.value

    def bounds(self, seen: Partial | None, unseen: int,
               gamma: float | None) -> Bounds:
        if unseen < 0:
            raise ValidationError("unseen count cannot be negative")
        base = seen.value if seen is not None else 0.0
        if seen is None and unseen == 0:
            raise ValidationError("a group with no readings has no bounds")
        cap = self._pruned_value_cap(gamma)
        return Bounds(lb=base + self.lo * unseen, ub=base + cap * unseen)


class CountAggregate(Aggregate):
    """COUNT of readings. Every reading weighs exactly 1."""

    func = "COUNT"

    def __init__(self, lo: float = 0.0, hi: float = 1.0):
        super().__init__(0.0, 1.0)

    def from_value(self, value: float) -> Partial:
        return Partial(1.0, 1)

    def merge(self, a: Partial, b: Partial) -> Partial:
        return Partial(a.value + b.value, a.count + b.count)

    def finalize(self, partial: Partial) -> float:
        return partial.value

    def bounds(self, seen: Partial | None, unseen: int,
               gamma: float | None) -> Bounds:
        if unseen < 0:
            raise ValidationError("unseen count cannot be negative")
        base = seen.value if seen is not None else 0.0
        return Bounds(lb=base, ub=base + unseen)


class MaxAggregate(Aggregate):
    """MAX. Merging only raises the value; every missing reading ≤ cap."""

    func = "MAX"

    def from_value(self, value: float) -> Partial:
        return Partial(value, 1)

    def merge(self, a: Partial, b: Partial) -> Partial:
        return Partial(max(a.value, b.value), a.count + b.count)

    def finalize(self, partial: Partial) -> float:
        return partial.value

    def bounds(self, seen: Partial | None, unseen: int,
               gamma: float | None) -> Bounds:
        if unseen < 0:
            raise ValidationError("unseen count cannot be negative")
        cap = self._pruned_value_cap(gamma)
        if seen is None:
            if unseen == 0:
                raise ValidationError("a group with no readings has no bounds")
            return Bounds(self.lo, cap)
        if unseen == 0:
            return Bounds(seen.value, seen.value)
        return Bounds(lb=seen.value, ub=max(seen.value, cap))


class MinAggregate(Aggregate):
    """MIN. Missing readings can only lower the value, and at least one
    missing reading sits in a pruned partial whose min is ≤ γ."""

    func = "MIN"

    def from_value(self, value: float) -> Partial:
        return Partial(value, 1)

    def merge(self, a: Partial, b: Partial) -> Partial:
        return Partial(min(a.value, b.value), a.count + b.count)

    def finalize(self, partial: Partial) -> float:
        return partial.value

    def bounds(self, seen: Partial | None, unseen: int,
               gamma: float | None) -> Bounds:
        if unseen < 0:
            raise ValidationError("unseen count cannot be negative")
        cap = self._pruned_value_cap(gamma)
        if seen is None:
            if unseen == 0:
                raise ValidationError("a group with no readings has no bounds")
            return Bounds(self.lo, cap)
        if unseen == 0:
            return Bounds(seen.value, seen.value)
        return Bounds(lb=self.lo, ub=min(seen.value, cap))


_AGGREGATE_TYPES: dict[str, type[Aggregate]] = {
    "AVG": AvgAggregate,
    "AVERAGE": AvgAggregate,
    "SUM": SumAggregate,
    "COUNT": CountAggregate,
    "MAX": MaxAggregate,
    "MIN": MinAggregate,
}


def make_aggregate(func: str, lo: float, hi: float) -> Aggregate:
    """Instantiate the aggregate for a query's ranking function."""
    try:
        cls = _AGGREGATE_TYPES[func.upper()]
    except KeyError:
        known = ", ".join(sorted(_AGGREGATE_TYPES))
        raise ValidationError(
            f"unsupported aggregate {func!r}; supported: {known}"
        ) from None
    return cls(lo, hi)
