"""The paper's contribution: in-network top-k query processing.

Algorithms:

* :class:`~repro.core.mint.Mint` — MINT views for snapshot (and
  windowed historic-horizontal) top-k queries: creation / pruning /
  update phases, γ descriptors, certification, probe fallback.
* :class:`~repro.core.tja.Tja` — the Threshold Join Algorithm for
  historic vertically-fragmented top-k queries: lower-bound /
  hierarchical-join / clean-up phases.
* Baselines: :class:`~repro.core.tag.Tag` (full in-network
  aggregation), :class:`~repro.core.centralized.Centralized` (raw
  readings to the sink), :class:`~repro.core.naive.NaiveTopK` (the
  *wrongful* greedy pruning of §III-A), :class:`~repro.core.tput.Tput`
  (PODC'04 three-round protocol) and :class:`~repro.core.fila.Fila`
  (filter-based monitoring, ICDE'06).

:class:`~repro.core.engine.KSpotEngine` routes a logical plan to the
right algorithm, mirroring the paper's query router.
"""

from .aggregates import Aggregate, Bounds, Partial
from .certify import CertificationOutcome, certify_top_k
from .delta import BoundsDelta, DeltaEntry, TopKView
from .engine import KSpotEngine
from .results import (EpochResult, RankedItem, is_valid_top_k, oracle_scores,
                      oracle_top_k, same_answer_set)
from .mint import Mint, MintConfig
from .tja import Tja, TjaResult
from .tag import Tag
from .centralized import Centralized
from .naive import NaiveTopK
from .tput import Tput, TputResult
from .fila import Fila

__all__ = [
    "Aggregate",
    "Partial",
    "Bounds",
    "certify_top_k",
    "CertificationOutcome",
    "BoundsDelta",
    "DeltaEntry",
    "TopKView",
    "RankedItem",
    "EpochResult",
    "oracle_top_k",
    "oracle_scores",
    "is_valid_top_k",
    "same_answer_set",
    "Mint",
    "MintConfig",
    "Tja",
    "TjaResult",
    "Tag",
    "Centralized",
    "NaiveTopK",
    "Tput",
    "TputResult",
    "Fila",
    "KSpotEngine",
]
