"""TPUT: Three-Phase Uniform Threshold (Cao & Wang, PODC 2004).

The flat (non-hierarchical) distributed top-k baseline KSpot's TJA is
measured against (reference [13]). Every message travels node→sink
hop-by-hop with **no in-network merging** — the cost difference
against TJA's hierarchical union/join is the point of experiment E5.

Round 1: every node ships its local top-k (id, value) pairs; the sink
sums what it sees and takes τ₁ = the k-th partial sum.
Round 2: the sink floods T = τ₁/n; nodes ship every item ≥ T. Partial
sums ψ(o) are now lower bounds and ψ(o) + T·(missing nodes) upper
bounds; candidates are objects whose upper bound clears the new k-th
partial sum τ₂.
Round 3: the sink fetches the candidates' missing values from exactly
the nodes that have not reported them; candidate scores become exact
and the top-k is certified.

Supports SUM and (dense) AVG ranking — AVG over aligned windows is
SUM/n, so the SUM machinery ranks identically and scores divide by n
at the end.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from ..errors import ProtocolError, ValidationError
from ..network.messages import (
    CandidateSetMessage,
    ControlMessage,
    ObjectScore,
    QueryMessage,
    ScoreListMessage,
)
from ..network.simulator import Network
from .aggregates import Aggregate
from .results import RankedItem, rank_key


@dataclass(frozen=True)
class TputResult:
    """Outcome of one TPUT execution."""

    items: tuple[RankedItem, ...]
    candidates: int
    per_phase_bytes: Mapping[str, int] = field(default_factory=dict)


class Tput:
    """Flat three-round top-k over vertically fragmented series."""

    name = "tput"

    def __init__(self, network: Network, aggregate: Aggregate, k: int,
                 series: Mapping[int, Mapping[int, float]]):
        if k < 1:
            raise ValidationError("k must be >= 1")
        if aggregate.func not in ("SUM", "AVG"):
            raise ValidationError(
                f"TPUT ranks by SUM (or dense AVG); got {aggregate.func}"
            )
        self.network = network
        self.aggregate = aggregate
        self.k = k
        # TPUT's partial sums double as lower bounds, which is only
        # sound for non-negative contributions (the original paper's
        # standing assumption). Dense windows make rank order invariant
        # under a per-node constant shift, so negative domains are
        # handled by ranking shifted values and un-shifting the scores.
        self._shift = max(0.0, -aggregate.lo)
        self.series = {
            node: {obj: value + self._shift for obj, value in column.items()}
            for node, column in series.items()
        }
        self.participants = sorted(n for n in self.series if self.series[n])
        if not self.participants:
            raise ValidationError("TPUT needs at least one non-empty series")
        universe = set(self.series[self.participants[0]])
        for node in self.participants[1:]:
            if set(self.series[node]) != universe:
                raise ValidationError(
                    "TPUT requires aligned history windows"
                )
        self.universe = universe

    def _finalize(self, total: float) -> float:
        if self.aggregate.func == "AVG":
            return total / len(self.participants) - self._shift
        return total - self._shift * len(self.participants)

    def execute(self) -> TputResult:
        """Run the three rounds and return the exact top-k."""
        n = len(self.participants)
        effective_k = min(self.k, len(self.universe))
        before = dict(self.network.stats.by_phase)

        # Round 1 — local top-k, shipped flat to the sink.
        partial_sums: dict[int, float] = {}
        reported_by: dict[int, set[int]] = {}
        with self.network.stats.phase("R1"):
            self.network.flood_down(lambda _: QueryMessage(query_id=3))
            for node_id in self.participants:
                column = self.series[node_id]
                ranked = sorted(column.items(),
                                key=lambda item: rank_key(item[0], item[1]))
                items = tuple(ObjectScore(object_id, value)
                              for object_id, value in ranked[:self.k])
                self.network.unicast_to_sink(
                    node_id, ScoreListMessage(items=items))
                for object_id, value in ranked[:self.k]:
                    partial_sums[object_id] = (
                        partial_sums.get(object_id, 0.0) + value)
                    reported_by.setdefault(object_id, set()).add(node_id)
        tau_1 = sorted(partial_sums.values(), reverse=True)[
            min(effective_k, len(partial_sums)) - 1]

        # Round 2 — uniform threshold T = τ₁ / n.
        threshold = tau_1 / n
        with self.network.stats.phase("R2"):
            self.network.flood_down(
                lambda _: ControlMessage(label="tput_threshold", size=8))
            for node_id in self.participants:
                already = {
                    object_id for object_id, nodes in reported_by.items()
                    if node_id in nodes
                }
                extra = tuple(
                    ObjectScore(object_id, value)
                    for object_id, value in sorted(
                        self.series[node_id].items())
                    if value >= threshold and object_id not in already
                )
                if not extra:
                    continue
                self.network.unicast_to_sink(
                    node_id, ScoreListMessage(items=extra))
                for item in extra:
                    partial_sums[item.object_id] = (
                        partial_sums.get(item.object_id, 0.0) + item.value)
                    reported_by.setdefault(item.object_id, set()).add(node_id)
        tau_2 = sorted(partial_sums.values(), reverse=True)[
            min(effective_k, len(partial_sums)) - 1]
        candidates = {
            object_id
            for object_id, psum in partial_sums.items()
            if psum + threshold * (n - len(reported_by[object_id])) >= tau_2
        }

        # Round 3 — fetch the candidates' missing values, flat again.
        with self.network.stats.phase("R3"):
            for node_id in self.participants:
                missing = tuple(sorted(
                    object_id for object_id in candidates
                    if node_id not in reported_by[object_id]
                ))
                if not missing:
                    continue
                self.network.unicast_from_sink(
                    node_id, CandidateSetMessage(object_ids=missing))
                self.network.unicast_to_sink(
                    node_id, ScoreListMessage(items=tuple(
                        ObjectScore(object_id,
                                    self.series[node_id][object_id])
                        for object_id in missing)))
                for object_id in missing:
                    partial_sums[object_id] += self.series[node_id][object_id]
                    reported_by[object_id].add(node_id)

        for object_id in candidates:
            if len(reported_by[object_id]) != n:
                raise ProtocolError(
                    f"candidate {object_id} is missing contributions"
                )
        ranked = sorted(
            ((object_id, self._finalize(partial_sums[object_id]))
             for object_id in candidates),
            key=lambda pair: rank_key(pair[0], pair[1]),
        )
        items = tuple(
            RankedItem(key=object_id, score=score, lb=score, ub=score)
            for object_id, score in ranked[:effective_k]
        )
        after = self.network.stats.by_phase
        per_phase = {
            phase: after[phase].payload_bytes - (
                before[phase].payload_bytes if phase in before else 0)
            for phase in ("R1", "R2", "R3") if phase in after
        }
        return TputResult(items=items, candidates=len(candidates),
                          per_phase_bytes=per_phase)
