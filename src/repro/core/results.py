"""Result types and the centralized oracle used for validation.

Results carry both the point score and the certified interval so the
GUI can display rankings with their confidence and tests can check
exactness claims.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Hashable, Iterable, Mapping

from ..errors import ValidationError
from .aggregates import Aggregate, Partial

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (certify
    from .certify import CertificationOutcome  # imports RankedItem)


def rank_key(key: Hashable, score: float) -> tuple:
    """Deterministic ranking: score descending, then key ascending.

    Stringifying the key breaks ties across int/str group labels
    without type errors.
    """
    return (-score, str(key))


@dataclass(frozen=True)
class RankedItem:
    """One answer row: a group (or object) and its certified score."""

    key: Hashable
    score: float
    lb: float
    ub: float

    @property
    def exact(self) -> bool:
        """True when the score interval is a point."""
        return self.lb == self.ub


@dataclass(frozen=True)
class EpochResult:
    """The top-k answer produced for one epoch.

    Attributes:
        epoch: The acquisition round this answers.
        items: The k highest-ranked answers, best first.
        exact: Whether the algorithm certifies the answer equals the
            centralized oracle's (baselines that are exact by
            construction set it; the naive algorithm never does).
        algorithm: Producing algorithm name (for panels and logs).
        probed: Number of probe/clean-up rounds the epoch needed.
        all_bounds: Certified intervals for every group (diagnostics).
        certification: The sink's final
            :class:`~repro.core.certify.CertificationOutcome` for the
            epoch (certifying engines only — MINT and FILA attach it;
            baselines that never certify leave it None).
    """

    epoch: int
    items: tuple[RankedItem, ...]
    exact: bool
    algorithm: str
    probed: int = 0
    all_bounds: Mapping[Hashable, tuple[float, float]] = field(
        default_factory=dict)
    certification: "CertificationOutcome | None" = None

    @property
    def keys(self) -> tuple[Hashable, ...]:
        """The answer keys in rank order."""
        return tuple(item.key for item in self.items)

    @property
    def top(self) -> RankedItem:
        """The single highest-ranked answer."""
        if not self.items:
            raise ValidationError("empty result has no top item")
        return self.items[0]


def oracle_top_k(readings: Mapping[int, float],
                 group_of: Mapping[int, Hashable],
                 aggregate: Aggregate, k: int) -> tuple[RankedItem, ...]:
    """The ground-truth top-k, computed with global knowledge.

    This is the "centralized manner" reference of §I: aggregate every
    reading per group, rank, cut at k. All algorithms' exactness is
    judged against it.
    """
    if k < 1:
        raise ValidationError("k must be >= 1")
    partials: dict[Hashable, Partial] = {}
    for node_id, value in readings.items():
        group = group_of.get(node_id, node_id)
        lifted = aggregate.from_value(value)
        existing = partials.get(group)
        partials[group] = (lifted if existing is None
                           else aggregate.merge(existing, lifted))
    scored = [
        (group, aggregate.finalize(partial))
        for group, partial in partials.items()
    ]
    scored.sort(key=lambda pair: rank_key(pair[0], pair[1]))
    return tuple(
        RankedItem(key=group, score=score, lb=score, ub=score)
        for group, score in scored[:k]
    )


def oracle_scores(readings: Mapping[int, float],
                  group_of: Mapping[int, Hashable],
                  aggregate: Aggregate) -> dict[Hashable, float]:
    """Ground-truth score of *every* group (the full ranking)."""
    partials: dict[Hashable, Partial] = {}
    for node_id, value in readings.items():
        group = group_of.get(node_id, node_id)
        lifted = aggregate.from_value(value)
        existing = partials.get(group)
        partials[group] = (lifted if existing is None
                           else aggregate.merge(existing, lifted))
    return {group: aggregate.finalize(partial)
            for group, partial in partials.items()}


def is_valid_top_k(items: Iterable[RankedItem],
                   true_scores: Mapping[Hashable, float], k: int,
                   tolerance: float = 1e-9) -> bool:
    """Whether an answer is *a* correct top-k under some tie-break.

    An answer is valid when (i) it has min(k, #groups) rows, (ii) every
    claimed score equals the group's true score, (iii) rows are sorted
    by score descending, and (iv) the claimed score multiset matches
    the true k highest scores — which is precisely the freedom a
    tie-break leaves.
    """
    answer = list(items)
    expected_len = min(k, len(true_scores))
    if len(answer) != expected_len:
        return False
    for item in answer:
        true = true_scores.get(item.key)
        if true is None or abs(item.score - true) > tolerance:
            return False
    claimed = [item.score for item in answer]
    if any(claimed[i] < claimed[i + 1] - tolerance
           for i in range(len(claimed) - 1)):
        return False
    best = sorted(true_scores.values(), reverse=True)[:expected_len]
    return all(abs(c - t) <= tolerance
               for c, t in zip(sorted(claimed, reverse=True), best))


def same_answer_set(a: Iterable[RankedItem], b: Iterable[RankedItem],
                    tolerance: float = 1e-9) -> bool:
    """Strict agreement: identical key sets with matching scores."""
    map_a = {item.key: item.score for item in a}
    map_b = {item.key: item.score for item in b}
    if set(map_a) != set(map_b):
        return False
    return all(abs(map_a[key] - map_b[key]) <= tolerance for key in map_a)
