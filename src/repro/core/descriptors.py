"""γ descriptor computation (the bounding framework of §III-A).

"MINT utilizes a set of descriptors γ which are utilized to bound
above the attributes in V0 and subsequently enable a powerful pruning
framework." Concretely, a node's γ must bound, from above, the
finalized value of every partial pruned anywhere in its subtree. This
module computes and maintains those descriptors.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Mapping

from .aggregates import Aggregate, Partial
from .views import max_gamma


def local_gamma(aggregate: Aggregate,
                withheld: Mapping[Hashable, Partial]) -> float | None:
    """γ contribution of the tuples pruned at this node.

    The descriptor is the largest finalized value among them: every
    withheld partial then provably finalizes ≤ γ.
    """
    if not withheld:
        return None
    return max(aggregate.finalize(partial) for partial in withheld.values())


def subtree_gamma(aggregate: Aggregate,
                  withheld: Mapping[Hashable, Partial],
                  child_gammas: Iterable[float | None]) -> float | None:
    """γ for a whole subtree: own prunes combined with children's γs.

    Children's descriptors cover everything pruned deeper down; the
    max over all of them bounds every pruned partial below this node.
    """
    return max_gamma(local_gamma(aggregate, withheld), *child_gammas)


def should_reship_gamma(current: float | None, reported: float | None,
                        hysteresis: float = 0.0) -> bool:
    """Whether the parent's cached γ must (or should) be refreshed.

    Correctness *requires* reshipping when the current γ exceeds what
    the parent caches (the cached bound would no longer hold). When γ
    shrinks, reshipping merely tightens future bounds, so it is worth a
    message only when the improvement clears the hysteresis.
    """
    if current is None:
        # Nothing is withheld anywhere below: any cached γ is vacuously
        # valid (it bounds an empty set), so no message is needed.
        return False
    if reported is None:
        return True
    if current > reported:
        return True
    return reported - current > hysteresis
