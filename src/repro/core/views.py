"""Materialized in-network view state (the V_i / V'_i of §III-A).

Every node maintains:

* ``view`` — V_i, its current full view: one partial per group,
  covering its own reading plus everything its children *reported*
  (children may themselves have withheld mass, which their γ bounds);
* ``reported`` — V'_i, the subset its parent currently caches, i.e.
  exactly what the parent believes about this subtree; and
* ``withheld`` — the tuples pruned at this node this epoch (the probe
  phase answers from these).

The parent-side "cache" *is* the child's ``reported`` dict — the
simulator is shared-memory, so caching a child's last report reads as
the child exposing it. The invariant MINT maintains per edge:

    reported[g] is the exact partial for the mass it covers, and every
    reading of the subtree not covered by any ``reported`` entry lies
    in some pruned partial whose finalized value ≤ ``gamma_reported``.

This module is *node-side* state only. The sink-side derived state —
the per-group certified intervals, their ranking, τ and the ambiguous
set — lives in the maintained :class:`~repro.core.delta.TopKView`
each engine feeds on the hot path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable

from .aggregates import Partial

GroupKey = Hashable


@dataclass
class MintNodeState:
    """Per-node MINT state for one continuous query."""

    #: V_i: full current view (own reading + children's reports).
    view: dict[GroupKey, Partial] = field(default_factory=dict)
    #: V'_i as the parent knows it (the edge cache).
    reported: dict[GroupKey, Partial] = field(default_factory=dict)
    #: γ as last shipped to the parent (None until first report).
    gamma_reported: float | None = None
    #: Tuples pruned at this node in the current epoch.
    withheld: dict[GroupKey, Partial] = field(default_factory=dict)

    def reset(self) -> None:
        """Forget everything (topology changed; creation phase re-runs)."""
        self.view.clear()
        self.reported.clear()
        self.withheld.clear()
        self.gamma_reported = None


def max_gamma(*gammas: float | None) -> float | None:
    """Combine γ descriptors: the max of those present (None = no mass).

    γ is an upper bound over *all* pruned partials below a point in the
    tree, so combining descriptors from disjoint subtrees takes the max.
    """
    present = [g for g in gammas if g is not None]
    if not present:
        return None
    return max(present)
