"""Rule registry: the catalog of architectural lints and their metadata.

A rule is a small stateless object that subscribes to AST node types
(``node_types``) and/or runs one whole-file pass (``check_file``).
Registration is declarative — ``@register`` instantiates the class and
files it under its ``id`` — so the CLI's ``--list-rules``, the fixture
meta-test and the pragma validator all enumerate the same catalog.

Path scoping lives on the rule (``paths`` include patterns, ``exempt``
exclude patterns, both :func:`fnmatch.fnmatch` over the posix display
path), so "only in ``api/``" and "everywhere but ``perf.py``" are data,
not code, and the fixture suite can exercise scoped rules by mirroring
the path shape under ``tests/fixtures/lint/``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from fnmatch import fnmatch
from typing import TYPE_CHECKING, Dict, Iterable, Iterator, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .visitor import FileContext


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def as_dict(self) -> dict:
        return {"rule": self.rule, "path": self.path, "line": self.line,
                "col": self.col, "message": self.message}

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule}: {self.message}"


class Rule:
    """Base class for every lint rule.

    Subclasses set the class attributes and override :meth:`visit`
    (called once per matching AST node) and/or :meth:`check_file`
    (called once per file). Both yield :class:`Finding` objects; the
    runner owns suppression, sorting and rendering.
    """

    id: str = ""
    summary: str = ""
    rationale: str = ""
    #: AST node classes this rule wants to see (dispatch is by exact type).
    node_types: Tuple[type, ...] = ()
    #: fnmatch include patterns over the posix display path.
    paths: Tuple[str, ...] = ("*",)
    #: fnmatch exclude patterns; any match wins over ``paths``.
    exempt: Tuple[str, ...] = ()

    def applies(self, ctx: "FileContext") -> bool:
        path = ctx.display
        if not any(fnmatch(path, pattern) for pattern in self.paths):
            return False
        return not any(fnmatch(path, pattern) for pattern in self.exempt)

    def visit(self, node: ast.AST, ctx: "FileContext") -> Iterable[Finding]:
        return ()

    def check_file(self, ctx: "FileContext") -> Iterable[Finding]:
        return ()

    def finding(self, ctx: "FileContext", node: ast.AST,
                message: str) -> Finding:
        return Finding(self.id, ctx.display, getattr(node, "lineno", 1),
                       getattr(node, "col_offset", 0), message)


REGISTRY: Dict[str, Rule] = {}


def register(cls: type) -> type:
    """Class decorator: instantiate ``cls`` and file it by ``cls.id``."""
    rule = cls()
    if not rule.id:
        raise ValueError(f"rule {cls.__name__} has no id")
    if rule.id in REGISTRY:
        raise ValueError(f"duplicate rule id {rule.id!r}")
    REGISTRY[rule.id] = rule
    return cls


def iter_rules() -> Iterator[Rule]:
    """All registered rules, in id order."""
    for rule_id in sorted(REGISTRY):
        yield REGISTRY[rule_id]


def rule_ids() -> frozenset:
    return frozenset(REGISTRY)


def rule_catalog() -> list:
    """``--list-rules`` payload: one dict per rule, id-ordered."""
    return [{"id": rule.id, "summary": rule.summary,
             "rationale": rule.rationale}
            for rule in iter_rules()]
