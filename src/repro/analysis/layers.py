"""The import DAG from docs/ARCHITECTURE.md, as checkable data.

:data:`ALLOWED_IMPORTS` declares, for every top-level member of the
``repro`` package, the set of siblings it may import. The mapping is
the machine-readable twin of the five-layer diagram: requests flow
down (api → core → network → sensing), utilities (``errors``,
``units``, ``storage``, ``query``) sit below everything that uses
them, and the app tier (``cli``, ``perf``, ``parallel``, ``server``)
sits on top of the facade. ``validate_dag`` proves the declaration is
acyclic, so "the architecture is a DAG" is itself a tested claim, not
prose (``tests/test_analysis.py``).

Known deliberate exceptions in the tree — ``sensing`` reaching up to
the columnar backend, ``api`` reaching into ``server.session`` for the
legacy ``QuerySession``, the lazy ``parallel``/``perf`` and
``scenarios``/``api`` back-edges, and ``network`` reaching up to
``parallel.derive_seed`` for per-subtree event-stream seeding — are
*not* declared here: they carry
``# repro: allow[layer-dag]`` pragmas at the import site, so each one
stays visible, justified and greppable instead of silently blessed.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterator, List, Optional, Tuple

_FOUNDATION = frozenset({"errors", "units"})
_DATA = _FOUNDATION | {"storage", "query", "sensing"}
_SIM = _DATA | {"network"}
_ENGINE = _SIM | {"core"}
_VIEW = _ENGINE | {"gui", "scenarios"}
_FACADE = _VIEW | {"api"}

#: package → the packages it may import (its own package is implicit).
ALLOWED_IMPORTS: Dict[str, FrozenSet[str]] = {
    "errors": frozenset(),
    "units": frozenset({"errors"}),
    "storage": _FOUNDATION,
    "query": _FOUNDATION,
    "sensing": _FOUNDATION | {"storage"},
    "network": _DATA,
    "core": _SIM | {"query"},
    "gui": _ENGINE,
    "scenarios": _ENGINE,
    "api": _VIEW,
    "analysis": _FOUNDATION,
    "server": _FACADE,
    "parallel": _FACADE,
    "perf": _FACADE | {"parallel"},
    "cli": _FACADE | {"analysis", "parallel", "perf", "server"},
    "__init__": _FACADE | {"server"},
    "__main__": frozenset({"cli"}),
}


def validate_dag() -> List[str]:
    """Topological order of :data:`ALLOWED_IMPORTS`; raises on a cycle."""
    order: List[str] = []
    state: Dict[str, int] = {}  # 0 visiting, 1 done

    def visit(name: str, chain: Tuple[str, ...]) -> None:
        mark = state.get(name)
        if mark == 1:
            return
        if mark == 0:
            cycle = " -> ".join(chain + (name,))
            raise ValueError(f"layer config contains a cycle: {cycle}")
        state[name] = 0
        for dep in sorted(ALLOWED_IMPORTS.get(name, ())):
            visit(dep, chain + (name,))
        state[name] = 1
        order.append(name)

    for name in sorted(ALLOWED_IMPORTS):
        visit(name, ())
    return order


def resolve_import_targets(
        node: ast.AST,
        module_parts: Tuple[str, ...]) -> Iterator[Tuple[str, str]]:
    """The intra-``repro`` top-level packages an import statement names.

    Yields ``(target_package, imported_as)`` pairs. ``module_parts`` is
    the importing file's package chain below ``repro`` (see
    ``visitor._repro_module_parts``); relative imports resolve against
    it exactly as the interpreter would.
    """
    if isinstance(node, ast.Import):
        for alias in node.names:
            parts = alias.name.split(".")
            if parts[0] == "repro" and len(parts) > 1:
                yield parts[1], alias.name
        return
    if not isinstance(node, ast.ImportFrom):
        return
    if node.level == 0:
        parts = (node.module or "").split(".")
        if parts and parts[0] == "repro":
            if len(parts) > 1:
                yield parts[1], node.module
            else:  # ``from repro import api, errors``
                for alias in node.names:
                    yield alias.name, f"repro.{alias.name}"
        return
    # Relative: resolve against repro.<module_parts>, stripping one
    # trailing component per level (the file itself counts as one).
    base = ("repro",) + module_parts
    if node.level > len(base) - 1:
        return  # escapes the repro package; nothing to check
    base = base[:len(base) - node.level]
    target = base + tuple((node.module or "").split(".")) if node.module \
        else base
    if target[0] != "repro":
        return
    if len(target) > 1:
        yield target[1], ".".join(target)
    else:  # ``from . import x`` at the package root
        for alias in node.names:
            yield alias.name, f"repro.{alias.name}"


def package_of(module_parts: Optional[Tuple[str, ...]]) -> Optional[str]:
    return module_parts[0] if module_parts else None
