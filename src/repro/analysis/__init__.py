"""Static analysis: ``repro lint``, the architecture book as tripwires.

The load-bearing conventions of this codebase — one RNG stream per
purpose, epochs as the only clock, the five-layer import DAG,
switch-and-prove pairing, the error taxonomy — are documented in
docs/ARCHITECTURE.md and enforced here as AST lints (catalog in
docs/LINT.md). ``repro lint src/repro`` runs every registered rule in
one pass per file; deliberate exceptions carry inline
``# repro: allow[rule-id] -- justification`` pragmas, justification
required.

Package layout: ``registry`` (rule catalog + Finding), ``pragmas``
(suppressions and ``# repro: hot`` markers), ``visitor`` (one-pass
dispatch), ``layers`` (the import DAG as data), ``rules`` (the
checks), ``runner`` (orchestration, text/JSON reports, exit codes).
"""

from __future__ import annotations

from . import rules as _rules  # noqa: F401  - registers the catalog on import
from .layers import ALLOWED_IMPORTS, validate_dag
from .pragmas import Allow, PragmaIndex
from .registry import REGISTRY, Finding, Rule, iter_rules, rule_catalog, \
    rule_ids
from .runner import LintReport, Suppression, lint_paths

__all__ = [
    "ALLOWED_IMPORTS", "Allow", "Finding", "LintReport", "PragmaIndex",
    "REGISTRY", "Rule", "Suppression", "iter_rules", "lint_paths",
    "rule_catalog", "rule_ids", "validate_dag",
]
