"""Orchestration: walk files, run rules, apply pragmas, render reports.

:func:`lint_paths` is the one entry point (the CLI subcommand and the
test suite both call it): it expands the given files/directories to
``.py`` files, parses each once, runs the registered rules in a single
AST pass per file (see ``visitor.py``), then filters findings through
the justified-suppression pragmas. The report renders as human text or
as schema-versioned JSON (``kspot-lint/1``) — the CI artifact — and
maps to exit codes: 0 clean (suppressions included), 1 findings,
2 operational error (bad path, not a file tree).
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Tuple

from ..errors import ConfigurationError
from .registry import Finding, Rule, iter_rules, rule_catalog
from .visitor import build_context, run_rules

SCHEMA = "kspot-lint/1"


@dataclass(frozen=True)
class Suppression:
    """A finding silenced by a justified ``allow`` pragma."""

    finding: Finding
    justification: str

    def as_dict(self) -> dict:
        payload = self.finding.as_dict()
        payload["justification"] = self.justification
        return payload


@dataclass
class LintReport:
    """Everything one lint run produced, renderable as text or JSON."""

    paths: List[str]
    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Suppression] = field(default_factory=list)
    files_scanned: int = 0

    @property
    def exit_code(self) -> int:
        return 1 if self.findings else 0

    def summary(self) -> dict:
        counts: dict = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return counts

    def to_text(self) -> str:
        lines = [finding.render() for finding in self.findings]
        tail = (f"{len(self.findings)} finding(s), "
                f"{len(self.suppressed)} suppressed, "
                f"{self.files_scanned} file(s) scanned")
        if not self.findings:
            tail = "clean: " + tail
        lines.append(tail)
        return "\n".join(lines)

    def to_json(self) -> str:
        payload = {
            "schema": SCHEMA,
            "paths": self.paths,
            "files_scanned": self.files_scanned,
            "summary": self.summary(),
            "findings": [finding.as_dict() for finding in self.findings],
            "suppressed": [entry.as_dict() for entry in self.suppressed],
            "rules": rule_catalog(),
        }
        return json.dumps(payload, indent=2, sort_keys=True)


def iter_python_files(paths: Sequence[Path]) -> Iterable[Path]:
    """The ``.py`` files under ``paths``, sorted, ``__pycache__`` skipped."""
    seen = set()
    for path in paths:
        if path.is_file():
            candidates = [path]
        elif path.is_dir():
            candidates = sorted(path.rglob("*.py"))
        else:
            raise ConfigurationError(f"lint path does not exist: {path}")
        for candidate in candidates:
            if "__pycache__" in candidate.parts:
                continue
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                yield candidate


def _display(path: Path) -> str:
    """Stable posix-style path for findings and scope patterns."""
    try:
        rel = path.resolve().relative_to(Path.cwd())
        return rel.as_posix()
    except ValueError:
        return path.as_posix()


def _error_names_in_tree(files: Sequence[Tuple[Path, str]]) -> frozenset:
    """Class names from any ``errors.py`` among the linted files, so the
    error-taxonomy rule tracks the tree's own taxonomy."""
    names = set()
    for path, source in files:
        if path.name != "errors.py":
            continue
        try:
            tree = ast.parse(source)
        except SyntaxError:
            continue
        names.update(node.name for node in tree.body
                     if isinstance(node, ast.ClassDef))
    return frozenset(names)


def lint_paths(paths: Sequence, *,
               rules: Optional[Sequence[Rule]] = None) -> LintReport:
    """Lint ``paths`` (files or directories) with the registered rules."""
    resolved = [Path(p) for p in paths]
    report = LintReport(paths=[str(p) for p in paths])
    active = list(rules) if rules is not None else list(iter_rules())

    sources: List[Tuple[Path, str]] = []
    for path in iter_python_files(resolved):
        try:
            sources.append((path, path.read_text(encoding="utf-8")))
        except OSError as error:
            raise ConfigurationError(
                f"cannot read {path}: {error}") from None
    error_names = _error_names_in_tree(sources)

    for path, source in sources:
        report.files_scanned += 1
        display = _display(path)
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as error:
            report.findings.append(Finding(
                "parse-error", display, error.lineno or 1,
                (error.offset or 1) - 1, f"syntax error: {error.msg}"))
            continue
        ctx = build_context(path, display, source, tree)
        ctx.error_names = error_names
        for finding in sorted(run_rules(ctx, active),
                              key=lambda f: (f.line, f.col, f.rule)):
            allows = list(ctx.pragmas.suppressions_for(
                finding.rule, finding.line))
            if allows:
                report.suppressed.append(
                    Suppression(finding, allows[0].justification))
            else:
                report.findings.append(finding)

    report.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    report.suppressed.sort(
        key=lambda s: (s.finding.path, s.finding.line, s.finding.rule))
    return report
