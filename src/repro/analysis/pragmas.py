"""Inline pragmas: justified suppressions and hot-function markers.

Two comment forms are recognized, anywhere on a line:

``# repro: allow[rule-id] -- justification``
    Suppresses findings of ``rule-id`` (comma-separate several ids) on
    the same line or the line directly below. The justification after
    ``--`` is *required*: an allow without one suppresses nothing and
    is itself reported by the ``pragma-discipline`` rule, so every
    grandfathered exception in the tree carries its reason inline.

``# repro: hot``
    Marks the function defined on the same line or the line directly
    below as allocation-critical; the ``hot-loop-allocation`` rule
    audits marked bodies for per-iteration allocation idioms.

Pragmas are read from real ``COMMENT`` tokens (:mod:`tokenize`), so a
docstring *describing* the pragma syntax — like this one — is not a
pragma. Files reach this index only after :func:`ast.parse` succeeded,
so tokenization cannot fail on them; a defensive fallback still keeps
partially-tokenizable sources from crashing the linter.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass
from typing import Dict, Iterator, List, Set, Tuple

_PRAGMA = re.compile(
    r"#\s*repro:\s*(?:"
    r"allow\[(?P<ids>[^\]]*)\]"
    r"(?:\s*--\s*(?P<why>\S.*?))?"
    r"|(?P<hot>hot)\b"
    r")\s*$")


def _comment_tokens(source: str) -> Iterator[Tuple[int, str]]:
    """``(line, text)`` for every comment token in ``source``."""
    try:
        for token in tokenize.generate_tokens(io.StringIO(source).readline):
            if token.type == tokenize.COMMENT:
                yield token.start[0], token.string
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return  # unparseable tail; the runner reports it as parse-error


@dataclass(frozen=True)
class Allow:
    """One ``allow[...]`` pragma occurrence."""

    line: int
    rule_ids: Tuple[str, ...]
    justification: str  # empty string when missing

    @property
    def justified(self) -> bool:
        return bool(self.justification)


class PragmaIndex:
    """All pragmas of one file, indexed for O(1) suppression lookups."""

    def __init__(self, source: str):
        self.allows: List[Allow] = []
        self.hot_lines: Set[int] = set()
        #: line -> allows effective on that line (own line + line above).
        self._effective: Dict[int, List[Allow]] = {}
        for lineno, text in _comment_tokens(source):
            match = _PRAGMA.search(text)
            if match is None:
                continue
            if match.group("hot"):
                self.hot_lines.add(lineno)
                continue
            ids = tuple(part.strip() for part in
                        match.group("ids").split(",") if part.strip())
            allow = Allow(lineno, ids, (match.group("why") or "").strip())
            self.allows.append(allow)
            for covered in (lineno, lineno + 1):
                self._effective.setdefault(covered, []).append(allow)

    def suppresses(self, rule_id: str, line: int) -> bool:
        """True when a *justified* allow for ``rule_id`` covers ``line``."""
        return any(allow.justified and rule_id in allow.rule_ids
                   for allow in self._effective.get(line, ()))

    def suppressions_for(self, rule_id: str, line: int) -> Iterator[Allow]:
        for allow in self._effective.get(line, ()):
            if allow.justified and rule_id in allow.rule_ids:
                yield allow

    def is_hot(self, def_line: int) -> bool:
        """A ``# repro: hot`` marker on the def line or the line above."""
        return bool(self.hot_lines & {def_line, def_line - 1})
