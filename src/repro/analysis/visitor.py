"""One AST pass per file: context construction and rule dispatch.

The linter parses each file exactly once into a :class:`FileContext`
(source, AST, docstring, pragma index, and a few precomputed facts
rules keep asking for: ``TYPE_CHECKING``-guarded line ranges, names
bound by ``except ... as``), then walks the tree exactly once,
dispatching every node to the rules that subscribed to its exact type.
Adding a rule never adds a pass; linting the tree stays O(files).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from .pragmas import PragmaIndex
from .registry import Finding, Rule


@dataclass
class FileContext:
    """Everything the rules may ask about one source file."""

    path: Path
    display: str                       # posix path findings are reported under
    source: str
    tree: ast.Module
    pragmas: PragmaIndex
    docstring: str
    #: package chain below the ``repro`` root, e.g. ("network", "tree")
    #: for ``src/repro/network/tree.py``; None outside a repro tree.
    module_parts: Optional[Tuple[str, ...]]
    #: line numbers inside ``if TYPE_CHECKING:`` bodies (typing-only
    #: imports are invisible at runtime, so layer checks skip them).
    type_checking_lines: Set[int] = field(default_factory=set)
    #: names bound by ``except ... as name`` anywhere in the file
    #: (re-raising one is not "raising a new exception type").
    handler_aliases: Set[str] = field(default_factory=set)
    #: class names the error-taxonomy rule accepts; the runner widens
    #: this with classes parsed from the linted tree's ``errors.py``.
    error_names: FrozenSet[str] = frozenset()

    @property
    def layer(self) -> Optional[str]:
        """The repro top-level package this file belongs to, if any."""
        return self.module_parts[0] if self.module_parts else None


def _repro_module_parts(path: Path) -> Optional[Tuple[str, ...]]:
    """Path → package chain below the last ``repro`` directory.

    ``src/repro/network/tree.py`` → ``("network", "tree")``;
    ``src/repro/cli.py`` → ``("cli",)``; ``__init__`` segments are
    kept (``src/repro/network/__init__.py`` → ``("network",
    "__init__")``) so relative-import resolution can strip exactly
    ``level`` trailing components for modules and packages alike. A
    path with no ``repro`` segment → None (the file is not part of
    the package, e.g. an ordinary test module — layer rules don't
    apply).
    """
    parts = path.with_suffix("").parts
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] == "repro" and index < len(parts) - 1:
            return parts[index + 1:]
    return None


def _collect_type_checking_lines(tree: ast.Module) -> Set[int]:
    lines: Set[int] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.If):
            continue
        test = node.test
        is_tc = (isinstance(test, ast.Name) and test.id == "TYPE_CHECKING") \
            or (isinstance(test, ast.Attribute) and test.attr == "TYPE_CHECKING")
        if is_tc:
            for stmt in node.body:
                lines.update(range(stmt.lineno,
                                   (stmt.end_lineno or stmt.lineno) + 1))
    return lines


def _collect_handler_aliases(tree: ast.Module) -> Set[str]:
    return {node.name for node in ast.walk(tree)
            if isinstance(node, ast.ExceptHandler) and node.name}


def build_context(path: Path, display: str, source: str,
                  tree: ast.Module) -> FileContext:
    return FileContext(
        path=path, display=display, source=source, tree=tree,
        pragmas=PragmaIndex(source),
        docstring=ast.get_docstring(tree) or "",
        module_parts=_repro_module_parts(path),
        type_checking_lines=_collect_type_checking_lines(tree),
        handler_aliases=_collect_handler_aliases(tree))


def run_rules(ctx: FileContext, rules: Sequence[Rule]) -> List[Finding]:
    """Run every applicable rule over ``ctx`` in one tree walk."""
    applicable = [rule for rule in rules if rule.applies(ctx)]
    findings: List[Finding] = []
    for rule in applicable:
        findings.extend(rule.check_file(ctx))
    dispatch: Dict[type, List[Rule]] = {}
    for rule in applicable:
        for node_type in rule.node_types:
            dispatch.setdefault(node_type, []).append(rule)
    if dispatch:
        for node in ast.walk(ctx.tree):
            for rule in dispatch.get(type(node), ()):
                findings.extend(rule.visit(node, ctx))
    return findings
