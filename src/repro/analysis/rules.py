"""The rule catalog: docs/ARCHITECTURE.md sections as AST checks.

Each rule mechanizes one section of the architecture book (the mapping
is tabulated in docs/LINT.md). Rules are deliberately syntactic — they
pattern-match the idioms this codebase actually uses, not arbitrary
Python — so a finding is near-certainly real, and the escape hatch for
the rare deliberate exception is a justified
``# repro: allow[rule-id] -- why`` pragma rather than a looser rule.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable, List, Set

from . import layers
from .registry import Finding, Rule, register, rule_ids
from .visitor import FileContext

#: Classes defined by ``repro/errors.py`` — the taxonomy the api tier
#: must speak. The runner re-derives this from the linted tree's own
#: ``errors.py`` when it sees one (so the rule tracks new error types
#: automatically); this frozen copy keeps fixture runs and partial
#: trees honest.
DEFAULT_ERROR_NAMES = frozenset({
    "KSpotError", "ConfigurationError", "QueryError", "LexError",
    "ParseError", "ValidationError", "PlanError", "SessionError",
    "UnknownSessionError", "SubmissionError", "TopologyError",
    "RoutingError", "StorageError", "StorageFullError", "ProtocolError",
    "CertificationError", "ScenarioError",
})

_SUITE_PATTERN = re.compile(r"tests/test_\w+\.py")
_ORACLE_WORDS = ("oracle", "reference_path", "scalar_path")


def _is_name(node: ast.AST, *names: str) -> bool:
    return isinstance(node, ast.Name) and node.id in names


@register
class RngDiscipline(Rule):
    id = "rng-discipline"
    summary = "no global random.* / numpy.random streams; random.seed banned"
    rationale = (
        "Determinism is the simulator's contract: every draw comes from "
        "a purpose-specific random.Random seeded from the scenario, or "
        "from the counter-based cell-hash helpers. The module-level "
        "random.* functions share one hidden global stream, so any call "
        "entangles unrelated subsystems and breaks replay "
        "(ARCHITECTURE.md 'Seeds and RNG streams').")
    node_types = (ast.Attribute, ast.ImportFrom)

    _ALLOWED_ATTRS = frozenset({"Random"})

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterable[Finding]:
        if isinstance(node, ast.Attribute):
            if _is_name(node.value, "random") \
                    and node.attr not in self._ALLOWED_ATTRS:
                yield self.finding(
                    ctx, node,
                    f"random.{node.attr} uses the hidden global stream; "
                    "derive a random.Random from the scenario seed (one "
                    "stream per purpose) or use the cell-hash helpers")
            elif node.attr == "random" and _is_name(node.value, "np", "numpy"):
                yield self.finding(
                    ctx, node,
                    "numpy.random draws from global state the equivalence "
                    "proofs cannot pin; use random.Random streams or "
                    "columnar.hash01_column")
        elif isinstance(node, ast.ImportFrom):
            module = node.module or ""
            if module == "random":
                banned = [alias.name for alias in node.names
                          if alias.name not in self._ALLOWED_ATTRS]
                if banned:
                    yield self.finding(
                        ctx, node,
                        f"importing {', '.join(banned)} from random pulls "
                        "in the global stream; import random and build "
                        "random.Random instances instead")
            elif module == "numpy.random" or module.startswith("numpy.random."):
                yield self.finding(
                    ctx, node, "numpy.random is banned; see rng-discipline")
            elif module == "numpy":
                if any(alias.name == "random" for alias in node.names):
                    yield self.finding(
                        ctx, node, "numpy.random is banned; see rng-discipline")


@register
class NoWallClock(Rule):
    id = "no-wall-clock"
    summary = "epochs are the only clock; wall time allowed in perf.py only"
    rationale = (
        "Replay requires that nothing observable depends on when a run "
        "happens. Wall-clock reads are measurement-harness territory "
        "(perf.py, benchmarks/), never simulation or engine logic "
        "(ARCHITECTURE.md 'Seeds and RNG streams', rule 4).")
    node_types = (ast.Attribute, ast.ImportFrom)
    exempt = ("*perf.py", "benchmarks/*", "*/benchmarks/*")

    _TIME_ATTRS = frozenset({
        "time", "time_ns", "monotonic", "monotonic_ns", "perf_counter",
        "perf_counter_ns", "process_time", "process_time_ns", "clock"})
    _DATETIME_ATTRS = frozenset({"now", "utcnow", "today"})

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterable[Finding]:
        if isinstance(node, ast.Attribute):
            if _is_name(node.value, "time") and node.attr in self._TIME_ATTRS:
                yield self.finding(
                    ctx, node,
                    f"time.{node.attr} reads the wall clock; epochs are "
                    "the only clock outside perf.py and benchmarks/")
            elif node.attr in self._DATETIME_ATTRS:
                value = node.value
                from_module = isinstance(value, ast.Attribute) \
                    and value.attr in ("datetime", "date") \
                    and _is_name(value.value, "datetime")
                if _is_name(value, "datetime", "date") or from_module:
                    yield self.finding(
                        ctx, node,
                        f"datetime .{node.attr} reads the wall clock; "
                        "epochs are the only clock outside perf.py and "
                        "benchmarks/")
        elif isinstance(node, ast.ImportFrom):
            if (node.module or "") == "time":
                banned = [alias.name for alias in node.names
                          if alias.name in self._TIME_ATTRS]
                if banned:
                    yield self.finding(
                        ctx, node,
                        f"importing {', '.join(banned)} from time; wall "
                        "clocks live in perf.py and benchmarks/ only")


@register
class LayerDag(Rule):
    id = "layer-dag"
    summary = "imports must follow the declared five-layer DAG"
    rationale = (
        "Each layer talks only to the ones below it (ARCHITECTURE.md "
        "'The five layers'). The allowed edges are declared in "
        "analysis/layers.py; an undeclared upward or sideways import "
        "either belongs in that config (with the book updated) or is a "
        "bug about to become a cycle.")
    node_types = (ast.Import, ast.ImportFrom)

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        source = ctx.layer
        if ctx.module_parts is not None \
                and source not in layers.ALLOWED_IMPORTS:
            yield Finding(
                self.id, ctx.display, 1, 0,
                f"package {source!r} is not declared in the layer config "
                "(repro/analysis/layers.py); add it to ALLOWED_IMPORTS "
                "and to the map in docs/ARCHITECTURE.md")

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterable[Finding]:
        if ctx.module_parts is None:
            return
        source = ctx.layer
        allowed = layers.ALLOWED_IMPORTS.get(source)
        if allowed is None or node.lineno in ctx.type_checking_lines:
            return  # undeclared source already reported; typing-only is free
        for target, dotted in layers.resolve_import_targets(
                node, ctx.module_parts):
            if target == source or target.startswith("_"):
                continue
            if target not in layers.ALLOWED_IMPORTS:
                yield self.finding(
                    ctx, node,
                    f"import of {dotted} targets undeclared package "
                    f"{target!r}; declare it in analysis/layers.py")
            elif target not in allowed:
                yield self.finding(
                    ctx, node,
                    f"{source} -> {target} is not a declared edge of the "
                    f"import DAG ({dotted}); layers may only import "
                    "downward — see docs/ARCHITECTURE.md and "
                    "repro/analysis/layers.py")


@register
class ImportHygiene(Rule):
    id = "import-hygiene"
    summary = "importing a module must not run side-effectful calls"
    rationale = (
        "Workers, shards and the CLI import lazily and in different "
        "orders; module import must be inert (the static twin of "
        "test_parallel.py's runtime import audit). Module-level calls "
        "run at import time on every path that touches the module.")

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        yield from self._scan(ctx.tree.body, ctx)

    def _scan(self, stmts, ctx: FileContext) -> Iterable[Finding]:
        for stmt in stmts:
            if isinstance(stmt, ast.Expr):
                if isinstance(stmt.value, ast.Call):
                    yield self.finding(
                        ctx, stmt,
                        "module-level call runs at import time; move it "
                        "into a function or guard it with "
                        "if __name__ == \"__main__\"")
            elif isinstance(stmt, ast.If):
                if self._is_main_guard(stmt.test):
                    continue
                yield from self._scan(stmt.body, ctx)
                yield from self._scan(stmt.orelse, ctx)
            elif isinstance(stmt, ast.Try):
                for block in (stmt.body, stmt.orelse, stmt.finalbody):
                    yield from self._scan(block, ctx)
                for handler in stmt.handlers:
                    yield from self._scan(handler.body, ctx)

    @staticmethod
    def _is_main_guard(test: ast.AST) -> bool:
        if not isinstance(test, ast.Compare) or len(test.ops) != 1 \
                or not isinstance(test.ops[0], ast.Eq):
            return False
        sides = (test.left, test.comparators[0])
        has_name = any(_is_name(side, "__name__") for side in sides)
        has_main = any(isinstance(side, ast.Constant)
                       and side.value == "__main__" for side in sides)
        return has_name and has_main


@register
class SwitchAndProve(Rule):
    id = "switch-and-prove"
    summary = "switch-branching modules must name their oracle and suite"
    rationale = (
        "Every optimization ships behind a switch with its unoptimized "
        "oracle in-tree and a byte-equivalence suite (ARCHITECTURE.md "
        "'Switch-and-prove discipline'). A module that branches on "
        "hotpath/columnar/eventsim switches must say, in its docstring, "
        "which oracle and which tests/test_*.py suite hold it to that.")
    node_types = (ast.FunctionDef, ast.AsyncFunctionDef)

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterable[Finding]:
        switches = self._switches_used(node)
        if not switches:
            return
        has_suite = bool(_SUITE_PATTERN.search(ctx.docstring))
        has_oracle = any(word in ctx.docstring for word in _ORACLE_WORDS)
        if has_suite and has_oracle:
            return
        missing = []
        if not has_suite:
            missing.append("an equivalence suite (tests/test_*.py)")
        if not has_oracle:
            missing.append("its oracle (reference_path/scalar_path)")
        yield self.finding(
            ctx, node,
            f"{node.name} branches on the {'/'.join(sorted(switches))} "
            f"switch but the module docstring does not name "
            f"{' or '.join(missing)}; document the proof obligation "
            "(see docs/ARCHITECTURE.md, switch-and-prove)")

    @staticmethod
    def _switches_used(func: ast.AST) -> Set[str]:
        used: Set[str] = set()
        for node in ast.walk(func):
            if isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Attribute) \
                    and node.func.attr == "enabled" \
                    and _is_name(node.func.value, "hotpath", "columnar",
                                 "eventsim"):
                used.add(node.func.value.id)
        return used


@register
class ErrorTaxonomy(Rule):
    id = "error-taxonomy"
    summary = "api/ and cli.py raise only repro.errors types"
    rationale = (
        "The facade's contract is 'catch KSpotError and you have caught "
        "everything'; a ValueError escaping api/ or the CLI breaks "
        "every caller that honored it. New failure modes get a class "
        "in errors.py, not a builtin.")
    node_types = (ast.Raise,)
    paths = ("*/api/*", "*cli.py")

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterable[Finding]:
        exc = node.exc
        if exc is None:
            return  # bare re-raise
        allowed = DEFAULT_ERROR_NAMES | ctx.error_names
        name = None
        target = exc.func if isinstance(exc, ast.Call) else exc
        if isinstance(target, ast.Name):
            if target.id in ctx.handler_aliases:
                return  # re-raising a caught exception object
            name = target.id
        elif isinstance(target, ast.Attribute):
            name = target.attr
        if name is not None and name not in allowed:
            yield self.finding(
                ctx, node,
                f"raises {name}, which is not a repro.errors type; the "
                "api tier's contract is that every failure derives from "
                "KSpotError (add a class to errors.py if none fits)")


@register
class SetIterationOrder(Rule):
    id = "set-iteration-order"
    summary = "never materialize a set into ordered output unsorted"
    rationale = (
        "Set iteration order varies with insertion history and hash "
        "seeding, so list()/tuple()/join()/enumerate() over a set "
        "smuggles nondeterminism into answers, wire order and reports. "
        "Deterministic code sorts first (the tree's idiom: "
        "sorted(..., key=str) for mixed-type groups).")
    node_types = (ast.Call,)

    _MATERIALIZERS = frozenset({"list", "tuple", "enumerate"})

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterable[Finding]:
        if not node.args:
            return
        func = node.func
        ordered_sink = (isinstance(func, ast.Name)
                        and func.id in self._MATERIALIZERS) \
            or (isinstance(func, ast.Attribute) and func.attr == "join")
        if ordered_sink and self._is_set_expr(node.args[0]):
            sink = func.id if isinstance(func, ast.Name) else "join"
            yield self.finding(
                ctx, node,
                f"{sink}() over a set materializes nondeterministic "
                "iteration order; wrap the set in sorted(...) first")

    @staticmethod
    def _is_set_expr(node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        return isinstance(node, ast.Call) \
            and isinstance(node.func, ast.Name) \
            and node.func.id in ("set", "frozenset")


@register
class HotLoopAllocation(Rule):
    id = "hot-loop-allocation"
    summary = "# repro: hot functions avoid per-iteration allocation idioms"
    rationale = (
        "The perf kernels exist because allocation in the epoch loop "
        "dominates at N=1000. Functions marked '# repro: hot' are the "
        "measured hot path: key=lambda sorts (one closure call per "
        "element) and comprehensions inside loops (one fresh container "
        "per iteration) belong outside them — precompute tuple keys "
        "and reuse buffers, as delta.py and the fused passes do.")
    node_types = (ast.FunctionDef, ast.AsyncFunctionDef)

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterable[Finding]:
        if not ctx.pragmas.is_hot(node.lineno):
            return ()
        findings: List[Finding] = []
        self._scan_block(node.body, 0, ctx, findings)
        return findings

    def _scan_block(self, stmts, loop_depth: int, ctx: FileContext,
                    out: List[Finding]) -> None:
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                continue  # nested scopes opt in with their own marker
            if isinstance(stmt, (ast.For, ast.AsyncFor)):
                self._scan_expr(stmt.iter, loop_depth, ctx, out)
                self._scan_block(stmt.body, loop_depth + 1, ctx, out)
                self._scan_block(stmt.orelse, loop_depth + 1, ctx, out)
            elif isinstance(stmt, ast.While):
                self._scan_expr(stmt.test, loop_depth, ctx, out)
                self._scan_block(stmt.body, loop_depth + 1, ctx, out)
                self._scan_block(stmt.orelse, loop_depth + 1, ctx, out)
            elif isinstance(stmt, ast.If):
                self._scan_expr(stmt.test, loop_depth, ctx, out)
                self._scan_block(stmt.body, loop_depth, ctx, out)
                self._scan_block(stmt.orelse, loop_depth, ctx, out)
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                for item in stmt.items:
                    self._scan_expr(item.context_expr, loop_depth, ctx, out)
                self._scan_block(stmt.body, loop_depth, ctx, out)
            elif isinstance(stmt, ast.Try):
                for block in (stmt.body, stmt.orelse, stmt.finalbody):
                    self._scan_block(block, loop_depth, ctx, out)
                for handler in stmt.handlers:
                    self._scan_block(handler.body, loop_depth, ctx, out)
            else:
                self._scan_expr(stmt, loop_depth, ctx, out)

    def _scan_expr(self, node: ast.AST, loop_depth: int, ctx: FileContext,
                   out: List[Finding]) -> None:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Call):
                is_sort = (isinstance(sub.func, ast.Name)
                           and sub.func.id == "sorted") \
                    or (isinstance(sub.func, ast.Attribute)
                        and sub.func.attr == "sort")
                if is_sort and any(kw.arg == "key"
                                   and isinstance(kw.value, ast.Lambda)
                                   for kw in sub.keywords):
                    out.append(self.finding(
                        ctx, sub,
                        "key=lambda in a hot function calls a closure "
                        "per element; precompute a tuple sort key "
                        "instead (delta.py's rank-key idiom)"))
            elif loop_depth > 0 and isinstance(
                    sub, (ast.ListComp, ast.SetComp, ast.DictComp,
                          ast.GeneratorExp)):
                out.append(self.finding(
                    ctx, sub,
                    "comprehension inside a loop of a hot function "
                    "allocates a fresh container per iteration; hoist "
                    "it or mutate a reused buffer"))


@register
class PragmaDiscipline(Rule):
    id = "pragma-discipline"
    summary = "every allow[...] pragma names known rules and a justification"
    rationale = (
        "Suppressions are the audit trail of deliberate exceptions; an "
        "allow without a '-- justification' (or naming a rule that "
        "does not exist) suppresses nothing and is itself a finding, "
        "so the trail can never silently rot.")

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        known = rule_ids()
        for allow in ctx.pragmas.allows:
            if not allow.rule_ids:
                yield Finding(
                    self.id, ctx.display, allow.line, 0,
                    "allow[] pragma names no rule ids")
                continue
            if not allow.justified:
                yield Finding(
                    self.id, ctx.display, allow.line, 0,
                    "allow[" + ",".join(allow.rule_ids) + "] has no "
                    "'-- justification'; unjustified pragmas suppress "
                    "nothing")
            for rid in allow.rule_ids:
                if rid not in known and rid != "parse-error":
                    yield Finding(
                        self.id, ctx.display, allow.line, 0,
                        f"allow pragma names unknown rule id {rid!r} "
                        "(see repro lint --list-rules)")
