"""Predicate evaluation and analysis.

``WHERE`` clauses are evaluated in two very different places:

* *static* predicates (over ``nodeid`` or a cluster key) are resolved
  once at the sink, shrinking the participant set before dissemination;
* *dynamic* predicates (over sensed attributes) must run per reading on
  the mote.

:func:`references` tells the planner which case it is in — MINT's
cardinality-based bounds are only sound under static predicates, so the
engine refuses to combine MINT with dynamic ones (see
``KSpotEngine``).
"""

from __future__ import annotations

from typing import Hashable, Mapping

from ..errors import ValidationError
from .ast_nodes import BoolOp, Comparison, NotOp, Predicate


def references(predicate: Predicate | None) -> frozenset[str]:
    """All attribute names a predicate mentions."""
    if predicate is None:
        return frozenset()
    if isinstance(predicate, Comparison):
        return frozenset({predicate.left.name})
    if isinstance(predicate, NotOp):
        return references(predicate.operand)
    if isinstance(predicate, BoolOp):
        names: set[str] = set()
        for operand in predicate.operands:
            names |= references(operand)
        return frozenset(names)
    raise ValidationError(f"unsupported predicate node {predicate!r}")


def _compare(left: object, op: str, right: object) -> bool:
    # Numeric strings from context compare as numbers when both sides
    # are numeric; otherwise compare as strings (group labels).
    if isinstance(left, (int, float)) and isinstance(right, (int, float)):
        lhs, rhs = float(left), float(right)
    else:
        lhs, rhs = str(left), str(right)
    if op == "=":
        return lhs == rhs
    if op == "!=":
        return lhs != rhs
    if op == "<":
        return lhs < rhs
    if op == "<=":
        return lhs <= rhs
    if op == ">":
        return lhs > rhs
    if op == ">=":
        return lhs >= rhs
    raise ValidationError(f"unknown comparison operator {op!r}")


def evaluate(predicate: Predicate | None,
             context: Mapping[str, Hashable]) -> bool:
    """Evaluate a predicate against an attribute→value context.

    Missing attributes raise — the validator guarantees the context is
    complete for well-formed queries, so a miss is a programming error
    worth surfacing.
    """
    if predicate is None:
        return True
    if isinstance(predicate, Comparison):
        name = predicate.left.name
        if name not in context:
            raise ValidationError(
                f"predicate references {name!r} absent from the context"
            )
        return _compare(context[name], predicate.op, predicate.right.value)
    if isinstance(predicate, NotOp):
        return not evaluate(predicate.operand, context)
    if isinstance(predicate, BoolOp):
        results = (evaluate(operand, context)
                   for operand in predicate.operands)
        if predicate.op == "AND":
            return all(results)
        if predicate.op == "OR":
            return any(results)
        raise ValidationError(f"unknown boolean operator {predicate.op!r}")
    raise ValidationError(f"unsupported predicate node {predicate!r}")
