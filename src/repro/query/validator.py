"""Semantic validation of parsed queries against a deployment schema.

The KSpot client's "local query parser" rejects queries that reference
attributes the deployed boards cannot sense or group keys the
Configuration Panel never defined. Validation happens at the sink,
*before* dissemination — a mote never sees an invalid query.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ValidationError
from .ast_nodes import (
    BoolOp,
    Comparison,
    NotOp,
    Predicate,
    Query,
)

#: Pseudo-attributes every deployment exposes: the node identity and
#: the epoch timestamp (the vertical-fragmentation group key of §III-B).
BUILTIN_ATTRIBUTES = ("nodeid", "epoch")


@dataclass(frozen=True)
class Schema:
    """What a deployment can answer queries about.

    Attributes:
        sensed: Attributes the sensor boards sample (``sound``, …).
        group_keys: Cluster attributes from the Configuration Panel
            (``roomid``, ``cluster``, …) mapping nodes to regions.
        source: The single relation name (TinyDB exposes ``sensors``).
    """

    sensed: frozenset[str]
    group_keys: frozenset[str] = frozenset({"roomid"})
    source: str = "sensors"

    @classmethod
    def for_deployment(cls, sensed: "str | tuple[str, ...] | frozenset[str]",
                       group_keys: "tuple[str, ...] | frozenset[str]" = ("roomid",),
                       ) -> "Schema":
        """Convenience constructor accepting loose argument types."""
        if isinstance(sensed, str):
            sensed = (sensed,)
        return cls(sensed=frozenset(sensed), group_keys=frozenset(group_keys))

    def is_known(self, name: str) -> bool:
        """True when ``name`` is sensed, a group key, or built-in."""
        return (name in self.sensed or name in self.group_keys
                or name in BUILTIN_ATTRIBUTES)


def _check_predicate(predicate: Predicate, schema: Schema) -> None:
    if isinstance(predicate, Comparison):
        name = predicate.left.name
        if not schema.is_known(name):
            raise ValidationError(f"WHERE references unknown attribute {name!r}")
        return
    if isinstance(predicate, NotOp):
        _check_predicate(predicate.operand, schema)
        return
    if isinstance(predicate, BoolOp):
        for operand in predicate.operands:
            _check_predicate(operand, schema)
        return
    raise ValidationError(f"unsupported predicate node {predicate!r}")


def validate(query: Query, schema: Schema) -> None:
    """Raise :class:`ValidationError` unless ``query`` fits ``schema``.

    The checks mirror TinyDB's catalog validation plus the top-k rules
    KSpot adds (a ranking query needs exactly one ranking aggregate).
    """
    if query.source.lower() != schema.source:
        raise ValidationError(
            f"unknown relation {query.source!r}; the only relation is "
            f"{schema.source!r}"
        )
    if not query.select:
        raise ValidationError("empty select list")

    aggregates = query.aggregates
    for aggregate in aggregates:
        if aggregate.func == "COUNT" and aggregate.argument == "*":
            continue
        if aggregate.argument not in schema.sensed:
            raise ValidationError(
                f"{aggregate.func}({aggregate.argument}): "
                f"{aggregate.argument!r} is not a sensed attribute"
            )

    group_by = query.group_by
    if group_by is not None and not schema.is_known(group_by):
        raise ValidationError(f"GROUP BY references unknown attribute {group_by!r}")

    for column in query.plain_columns:
        if column.name == "*":
            if query.is_top_k:
                raise ValidationError("SELECT * cannot be ranked; name columns")
            continue
        if group_by is not None:
            if column.name != group_by:
                raise ValidationError(
                    f"column {column.name!r} must appear in GROUP BY or an "
                    f"aggregate"
                )
        elif not schema.is_known(column.name):
            raise ValidationError(f"unknown column {column.name!r}")

    if query.is_top_k:
        if len(aggregates) == 0 and group_by is not None:
            raise ValidationError(
                "a grouped TOP-K query needs an aggregate to rank by"
            )
        if len(aggregates) > 1:
            raise ValidationError(
                "TOP-K ranks by exactly one aggregate; "
                f"got {len(aggregates)}"
            )
        if len(aggregates) == 0:
            sensed_selected = [c.name for c in query.plain_columns
                               if c.name in schema.sensed]
            if len(sensed_selected) != 1:
                raise ValidationError(
                    "an ungrouped TOP-K query must select exactly one "
                    "sensed attribute to rank nodes by"
                )

    if group_by == "epoch":
        if query.history is None:
            raise ValidationError(
                "GROUP BY epoch ranks time instances and requires "
                "WITH HISTORY {interval}"
            )
        if not query.is_top_k:
            raise ValidationError(
                "GROUP BY epoch is only supported for TOP-K queries"
            )

    if query.where is not None:
        _check_predicate(query.where, schema)

    if query.epoch is not None and query.epoch.seconds <= 0:
        raise ValidationError("EPOCH DURATION must be positive")
    if query.history is not None and query.history.seconds <= 0:
        raise ValidationError("WITH HISTORY interval must be positive")
    if query.lifetime is not None and query.lifetime.seconds <= 0:
        raise ValidationError("LIFETIME must be positive")
