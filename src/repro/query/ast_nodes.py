"""Abstract syntax tree of the query dialect.

Nodes are frozen dataclasses; :meth:`Query.unparse` round-trips back to
canonical query text (used by tests and by the Query Panel to echo the
constructed query).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from ..units import Duration

#: Canonical aggregate names. ``AVERAGE`` normalises to ``AVG``.
AGGREGATES = ("AVG", "MIN", "MAX", "SUM", "COUNT")


@dataclass(frozen=True)
class ColumnRef:
    """A bare attribute reference (``roomid``, ``sound``, ``nodeid``)."""

    name: str

    def unparse(self) -> str:
        return self.name


@dataclass(frozen=True)
class AggregateCall:
    """An aggregate over an attribute (``AVERAGE(sound)``)."""

    func: str
    argument: str

    def unparse(self) -> str:
        return f"{self.func}({self.argument})"


@dataclass(frozen=True)
class Literal:
    """A number or string constant in a predicate."""

    value: float | str

    def unparse(self) -> str:
        if isinstance(self.value, str):
            return f"'{self.value}'"
        if float(self.value) == int(self.value):
            return str(int(self.value))
        return str(self.value)


@dataclass(frozen=True)
class Comparison:
    """``attribute op literal`` (e.g. ``sound > 50``)."""

    left: ColumnRef
    op: str
    right: Literal

    def unparse(self) -> str:
        return f"{self.left.unparse()} {self.op} {self.right.unparse()}"


@dataclass(frozen=True)
class NotOp:
    """Logical negation."""

    operand: "Predicate"

    def unparse(self) -> str:
        return f"NOT ({self.operand.unparse()})"


@dataclass(frozen=True)
class BoolOp:
    """N-ary AND / OR."""

    op: str  # "AND" | "OR"
    operands: tuple["Predicate", ...]

    def unparse(self) -> str:
        joined = f" {self.op} ".join(
            f"({operand.unparse()})" if isinstance(operand, BoolOp)
            else operand.unparse()
            for operand in self.operands
        )
        return joined


Predicate = Union[Comparison, NotOp, BoolOp]


@dataclass(frozen=True)
class SelectItem:
    """One projection: a column or an aggregate, optionally aliased."""

    expr: ColumnRef | AggregateCall
    alias: str | None = None

    def unparse(self) -> str:
        text = self.expr.unparse()
        if self.alias:
            text += f" AS {self.alias}"
        return text

    @property
    def output_name(self) -> str:
        """Column name in the result (alias wins)."""
        if self.alias:
            return self.alias
        if isinstance(self.expr, AggregateCall):
            return f"{self.expr.func.lower()}_{self.expr.argument}"
        return self.expr.name


@dataclass(frozen=True)
class Query:
    """A parsed KSpot query."""

    select: tuple[SelectItem, ...]
    source: str
    top_k: int | None = None
    where: Predicate | None = None
    group_by: str | None = None
    epoch: Duration | None = None
    history: Duration | None = None
    lifetime: Duration | None = None

    @property
    def aggregates(self) -> tuple[AggregateCall, ...]:
        """All aggregate calls in the select list."""
        return tuple(item.expr for item in self.select
                     if isinstance(item.expr, AggregateCall))

    @property
    def plain_columns(self) -> tuple[ColumnRef, ...]:
        """All bare column references in the select list."""
        return tuple(item.expr for item in self.select
                     if isinstance(item.expr, ColumnRef))

    @property
    def is_top_k(self) -> bool:
        """True for ranking queries (``SELECT TOP k …``)."""
        return self.top_k is not None

    def unparse(self) -> str:
        """Canonical query text."""
        parts = ["SELECT"]
        if self.top_k is not None:
            parts.append(f"TOP {self.top_k}")
        parts.append(", ".join(item.unparse() for item in self.select))
        parts.append(f"FROM {self.source}")
        if self.where is not None:
            parts.append(f"WHERE {self.where.unparse()}")
        if self.group_by is not None:
            parts.append(f"GROUP BY {self.group_by}")
        if self.epoch is not None:
            parts.append(f"EPOCH DURATION {self.epoch}")
        if self.history is not None:
            parts.append(f"WITH HISTORY {self.history}")
        if self.lifetime is not None:
            parts.append(f"LIFETIME {self.lifetime}")
        return " ".join(parts)
