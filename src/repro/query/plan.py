"""Logical plans and the algorithm router.

KSpot's key architectural observation (§III): "there exists no
universal algorithm that is optimized for both classes of queries,
rather there is a pool of data processing algorithms for each class",
so the system "executes a different query processing algorithm based on
the query semantics". :func:`make_plan` is that router: it classifies a
validated query and assigns the algorithm —

* snapshot top-k (current readings, grouped)           → **MINT**
* historic top-k, horizontally fragmented (per-group
  window aggregates computable locally)                → **MINT** over
  windowed readings
* historic top-k, vertically fragmented (``GROUP BY
  epoch``: a time instant's score needs *all* nodes)   → **TJA**
* non-ranking queries                                  → **TAG**

Baselines (centralized, naive, TPUT, FILA) can be forced via the
``algorithm`` override for the experiments.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import PlanError
from .ast_nodes import AggregateCall, Predicate, Query
from .parser import parse
from .validator import Schema, validate

#: Default epoch length when the query omits EPOCH DURATION (TinyDB
#: samples about once per second by default).
DEFAULT_EPOCH_SECONDS = 1.0


class QueryClass(enum.Enum):
    """The paper's query taxonomy (§I)."""

    SNAPSHOT = "snapshot"
    HISTORIC_HORIZONTAL = "historic_horizontal"
    HISTORIC_VERTICAL = "historic_vertical"
    AGGREGATE = "aggregate"  # non-ranking (plain TAG) queries


class Algorithm(enum.Enum):
    """Execution strategies available to the engine."""

    MINT = "mint"
    TJA = "tja"
    TAG = "tag"
    CENTRALIZED = "centralized"
    NAIVE = "naive"
    TPUT = "tput"
    FILA = "fila"


#: Default routing table (query class → algorithm), §III.
DEFAULT_ROUTING = {
    QueryClass.SNAPSHOT: Algorithm.MINT,
    QueryClass.HISTORIC_HORIZONTAL: Algorithm.MINT,
    QueryClass.HISTORIC_VERTICAL: Algorithm.TJA,
    QueryClass.AGGREGATE: Algorithm.TAG,
}

#: Which algorithms may execute which query class (override guard).
_COMPATIBLE = {
    QueryClass.SNAPSHOT: {Algorithm.MINT, Algorithm.TAG,
                          Algorithm.CENTRALIZED, Algorithm.NAIVE,
                          Algorithm.FILA},
    QueryClass.HISTORIC_HORIZONTAL: {Algorithm.MINT, Algorithm.TAG,
                                     Algorithm.CENTRALIZED, Algorithm.NAIVE},
    QueryClass.HISTORIC_VERTICAL: {Algorithm.TJA, Algorithm.TPUT,
                                   Algorithm.CENTRALIZED},
    QueryClass.AGGREGATE: {Algorithm.TAG, Algorithm.CENTRALIZED},
}


@dataclass(frozen=True)
class LogicalPlan:
    """Everything the execution engine needs, resolved.

    Attributes:
        query_class: The paper's taxonomy bucket.
        algorithm: Execution strategy (routed or overridden).
        k: Ranking depth; None for non-ranking queries.
        agg_func: Ranking/primary aggregate (``AVG``…); ``AVG`` for
            ungrouped ranking queries (one reading per node, so the
            average *is* the reading).
        attribute: The sensed attribute being aggregated.
        group_key: ``roomid``-style cluster key, ``nodeid``, or
            ``epoch`` for vertical queries.
        epoch_seconds: Length of one acquisition round.
        window_epochs: History window length in epochs (historic only).
        continuous: Whether the query re-evaluates every epoch.
        lifetime_epochs: Total epochs to run, when LIFETIME was given.
        where: Optional acquisition predicate.
    """

    query_class: QueryClass
    algorithm: Algorithm
    k: int | None
    agg_func: str
    attribute: str
    group_key: str
    epoch_seconds: float
    window_epochs: int | None = None
    continuous: bool = False
    lifetime_epochs: int | None = None
    where: Predicate | None = None


def classify(query: Query) -> QueryClass:
    """Assign a validated query to the paper's taxonomy."""
    if not query.is_top_k:
        return QueryClass.AGGREGATE
    if query.group_by == "epoch":
        return QueryClass.HISTORIC_VERTICAL
    if query.history is not None:
        return QueryClass.HISTORIC_HORIZONTAL
    return QueryClass.SNAPSHOT


def _ranking_aggregate(query: Query, schema: Schema) -> AggregateCall:
    aggregates = query.aggregates
    if aggregates:
        return aggregates[0]
    # Ungrouped ranking over a bare attribute: one reading per node.
    sensed = [c.name for c in query.plain_columns if c.name in schema.sensed]
    return AggregateCall("AVG", sensed[0])


def make_plan(query: Query, schema: Schema,
              algorithm: Algorithm | None = None) -> LogicalPlan:
    """Validate, classify and route a query into a logical plan.

    Args:
        query: Parsed query AST.
        schema: Deployment schema to validate against.
        algorithm: Optional override of the routing table (used by the
            baseline experiments). Must be compatible with the query
            class.
    """
    validate(query, schema)
    query_class = classify(query)
    routed = algorithm or DEFAULT_ROUTING[query_class]
    if routed not in _COMPATIBLE[query_class]:
        raise PlanError(
            f"algorithm {routed.value} cannot execute "
            f"{query_class.value} queries"
        )
    epoch_seconds = (query.epoch.seconds if query.epoch is not None
                     else DEFAULT_EPOCH_SECONDS)
    aggregate = _ranking_aggregate(query, schema)
    if aggregate.func == "COUNT" and aggregate.argument == "*":
        attribute = next(iter(sorted(schema.sensed)), "")
    else:
        attribute = aggregate.argument
    window_epochs = None
    if query.history is not None:
        window_epochs = query.history.epochs(epoch_seconds)
    lifetime_epochs = None
    if query.lifetime is not None:
        lifetime_epochs = query.lifetime.epochs(epoch_seconds)
    return LogicalPlan(
        query_class=query_class,
        algorithm=routed,
        k=query.top_k,
        agg_func=aggregate.func,
        attribute=attribute,
        group_key=query.group_by or "nodeid",
        epoch_seconds=epoch_seconds,
        window_epochs=window_epochs,
        continuous=query.epoch is not None,
        lifetime_epochs=lifetime_epochs,
        where=query.where,
    )


def compile_query(text: str, schema: Schema,
                  algorithm: Algorithm | None = None
                  ) -> tuple[Query, LogicalPlan]:
    """Full front-end pipeline: text → (AST, logical plan)."""
    query = parse(text)
    return query, make_plan(query, schema, algorithm=algorithm)
