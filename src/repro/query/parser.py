"""Recursive-descent parser for the KSpot dialect.

Grammar (EBNF, keywords case-insensitive)::

    query      := SELECT [TOP number] select_list FROM ident
                  [WHERE predicate] [GROUP BY ident]
                  [EPOCH DURATION duration] [WITH HISTORY duration]
                  [LIFETIME duration] [';']
    select_list:= item (',' item)*
    item       := agg '(' ident ')' [AS ident] | ident [AS ident] | '*'
    agg        := AVG | AVERAGE | MIN | MAX | SUM | COUNT
    predicate  := disjunct (OR disjunct)*
    disjunct   := conjunct (AND conjunct)*
    conjunct   := NOT conjunct | '(' predicate ')' | comparison
    comparison := ident op literal | literal op ident
    duration   := number [ident]          -- unit defaults to seconds
"""

from __future__ import annotations

from ..errors import ParseError
from ..units import Duration
from .ast_nodes import (
    AGGREGATES,
    AggregateCall,
    BoolOp,
    ColumnRef,
    Comparison,
    Literal,
    NotOp,
    Predicate,
    Query,
    SelectItem,
)
from .lexer import Token, TokenType, tokenize

#: Comparison operators flipped when the literal appears on the left.
_FLIP = {"<": ">", ">": "<", "<=": ">=", ">=": "<=", "=": "=", "!=": "!="}


class _Parser:
    """Token-stream cursor with the usual expect/accept helpers."""

    def __init__(self, tokens: list[Token]):
        self._tokens = tokens
        self._index = 0

    @property
    def current(self) -> Token:
        return self._tokens[self._index]

    def _fail(self, message: str) -> ParseError:
        token = self.current
        found = token.value or "end of query"
        return ParseError(f"{message}, found {found!r}",
                          token.line, token.column)

    def advance(self) -> Token:
        token = self.current
        if token.type is not TokenType.EOF:
            self._index += 1
        return token

    def accept_keyword(self, word: str) -> bool:
        if self.current.is_keyword(word):
            self.advance()
            return True
        return False

    def expect_keyword(self, word: str) -> Token:
        if not self.current.is_keyword(word):
            raise self._fail(f"expected {word}")
        return self.advance()

    def expect_ident(self, what: str) -> str:
        token = self.current
        # EPOCH doubles as the pseudo-column ranking time instants
        # (GROUP BY epoch) when it appears where a name is expected.
        if token.is_keyword("EPOCH"):
            self.advance()
            return "epoch"
        if token.type is not TokenType.IDENT:
            raise self._fail(f"expected {what}")
        return self.advance().value

    def expect_number(self, what: str) -> float:
        if self.current.type is not TokenType.NUMBER:
            raise self._fail(f"expected {what}")
        return float(self.advance().value)

    def accept_punct(self, char: str) -> bool:
        token = self.current
        if token.type is TokenType.PUNCT and token.value == char:
            self.advance()
            return True
        return False

    def expect_punct(self, char: str) -> None:
        if not self.accept_punct(char):
            raise self._fail(f"expected {char!r}")

    # ------------------------------------------------------------------
    # Productions
    # ------------------------------------------------------------------

    def parse_query(self) -> Query:
        self.expect_keyword("SELECT")
        top_k: int | None = None
        if self.accept_keyword("TOP"):
            k_value = self.expect_number("K after TOP")
            if k_value != int(k_value) or k_value < 1:
                raise ParseError(f"TOP K must be a positive integer, got {k_value}")
            top_k = int(k_value)
        select = self.parse_select_list()
        self.expect_keyword("FROM")
        source = self.expect_ident("relation name after FROM")
        where = None
        if self.accept_keyword("WHERE"):
            where = self.parse_predicate()
        group_by = None
        if self.accept_keyword("GROUP"):
            self.expect_keyword("BY")
            group_by = self.expect_ident("attribute after GROUP BY")
        epoch = None
        history = None
        lifetime = None
        # The tail clauses may appear in any order, each at most once.
        while True:
            if self.current.is_keyword("EPOCH"):
                if epoch is not None:
                    raise self._fail("duplicate EPOCH DURATION clause")
                self.advance()
                self.expect_keyword("DURATION")
                epoch = self.parse_duration()
            elif self.current.is_keyword("SAMPLE"):
                # TinyDB spells the same clause SAMPLE PERIOD; accept
                # both so TinyDB queries paste in unchanged.
                if epoch is not None:
                    raise self._fail("duplicate EPOCH DURATION clause")
                self.advance()
                self.expect_keyword("PERIOD")
                epoch = self.parse_duration()
            elif self.current.is_keyword("WITH"):
                if history is not None:
                    raise self._fail("duplicate WITH HISTORY clause")
                self.advance()
                self.expect_keyword("HISTORY")
                history = self.parse_duration()
            elif self.current.is_keyword("LIFETIME"):
                if lifetime is not None:
                    raise self._fail("duplicate LIFETIME clause")
                self.advance()
                lifetime = self.parse_duration()
            else:
                break
        self.accept_punct(";")
        if self.current.type is not TokenType.EOF:
            raise self._fail("unexpected trailing input")
        return Query(select=tuple(select), source=source, top_k=top_k,
                     where=where, group_by=group_by, epoch=epoch,
                     history=history, lifetime=lifetime)

    def parse_select_list(self) -> list[SelectItem]:
        items = [self.parse_select_item()]
        while self.accept_punct(","):
            items.append(self.parse_select_item())
        return items

    def parse_select_item(self) -> SelectItem:
        token = self.current
        if token.type is TokenType.PUNCT and token.value == "*":
            self.advance()
            return SelectItem(expr=ColumnRef("*"))
        if token.type is TokenType.KEYWORD and token.value in (
                *AGGREGATES, "AVERAGE"):
            func = "AVG" if token.value == "AVERAGE" else token.value
            self.advance()
            self.expect_punct("(")
            if self.current.type is TokenType.PUNCT and self.current.value == "*":
                if func != "COUNT":
                    raise self._fail(f"{func}(*) is not allowed; name an attribute")
                self.advance()
                argument = "*"
            else:
                argument = self.expect_ident(f"attribute inside {func}()")
            self.expect_punct(")")
            return SelectItem(expr=AggregateCall(func, argument),
                              alias=self.parse_alias())
        name = self.expect_ident("column name or aggregate")
        return SelectItem(expr=ColumnRef(name), alias=self.parse_alias())

    def parse_alias(self) -> str | None:
        if self.accept_keyword("AS"):
            return self.expect_ident("alias after AS")
        return None

    def parse_predicate(self) -> Predicate:
        left = self.parse_conjunction()
        operands = [left]
        while self.accept_keyword("OR"):
            operands.append(self.parse_conjunction())
        if len(operands) == 1:
            return left
        return BoolOp("OR", tuple(operands))

    def parse_conjunction(self) -> Predicate:
        left = self.parse_factor()
        operands = [left]
        while self.accept_keyword("AND"):
            operands.append(self.parse_factor())
        if len(operands) == 1:
            return left
        return BoolOp("AND", tuple(operands))

    def parse_factor(self) -> Predicate:
        if self.accept_keyword("NOT"):
            return NotOp(self.parse_factor())
        if self.accept_punct("("):
            inner = self.parse_predicate()
            self.expect_punct(")")
            return inner
        return self.parse_comparison()

    def parse_comparison(self) -> Comparison:
        token = self.current
        if token.type is TokenType.IDENT or token.is_keyword("EPOCH"):
            left_name = self.expect_ident("attribute")
            op = self.expect_operator()
            right = self.parse_literal()
            return Comparison(ColumnRef(left_name), op, right)
        if token.type in (TokenType.NUMBER, TokenType.STRING):
            literal = self.parse_literal()
            op = self.expect_operator()
            name = self.expect_ident("attribute on one side of a comparison")
            return Comparison(ColumnRef(name), _FLIP[op], literal)
        raise self._fail("expected a comparison")

    def expect_operator(self) -> str:
        token = self.current
        if token.type is not TokenType.OPERATOR:
            raise self._fail("expected a comparison operator")
        return self.advance().value

    def parse_literal(self) -> Literal:
        token = self.current
        if token.type is TokenType.NUMBER:
            self.advance()
            return Literal(float(token.value))
        if token.type is TokenType.STRING:
            self.advance()
            return Literal(token.value)
        if token.type is TokenType.IDENT:
            # Bare identifiers on the right-hand side compare against
            # string group labels (roomid = A).
            self.advance()
            return Literal(token.value)
        raise self._fail("expected a literal")

    def parse_duration(self) -> Duration:
        amount = self.expect_number("a duration amount")
        token = self.current
        if token.type is TokenType.IDENT:
            unit = self.advance().value
        elif token.type is TokenType.KEYWORD and token.value == "MIN":
            # "1 min" lexes MIN as the aggregate keyword; in duration
            # position it is the time unit.
            self.advance()
            unit = "min"
        else:
            unit = "s"
        return Duration(amount, unit)


def parse(text: str) -> Query:
    """Parse query text into a :class:`Query` AST.

    Raises:
        LexError / ParseError: with 1-based line/column positions.
    """
    return _Parser(tokenize(text)).parse_query()
