"""Tokenizer for the KSpot query dialect.

Keywords are case-insensitive (``SELECT`` ≡ ``select``); identifiers
keep their case. Both aggregate spellings the paper uses are accepted
(``AVERAGE`` in the running example, ``AVG`` in the GUI description).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import LexError


class TokenType(enum.Enum):
    """Lexical categories."""

    KEYWORD = "keyword"
    IDENT = "ident"
    NUMBER = "number"
    STRING = "string"
    OPERATOR = "operator"
    PUNCT = "punct"
    EOF = "eof"


#: Reserved words (upper-case canonical form).
KEYWORDS = frozenset({
    "SELECT", "TOP", "FROM", "WHERE", "GROUP", "BY", "HAVING",
    "EPOCH", "DURATION", "SAMPLE", "PERIOD",
    "WITH", "HISTORY", "LIFETIME", "AS",
    "AND", "OR", "NOT",
    "AVG", "AVERAGE", "MIN", "MAX", "SUM", "COUNT",
})

#: Multi-character operators first so maximal munch wins.
_OPERATORS = ("<=", ">=", "!=", "<>", "=", "<", ">")

_PUNCT = {",", "(", ")", "*", ";"}


@dataclass(frozen=True)
class Token:
    """One lexeme with its source position (1-based line/column)."""

    type: TokenType
    value: str
    line: int
    column: int

    def is_keyword(self, word: str) -> bool:
        """True when this token is the given keyword."""
        return self.type is TokenType.KEYWORD and self.value == word.upper()


def tokenize(text: str) -> list[Token]:
    """Lex ``text`` into tokens, ending with an EOF token.

    Raises:
        LexError: on characters outside the dialect.
    """
    tokens: list[Token] = []
    position = 0
    line = 1
    column = 1
    length = len(text)

    def advance(count: int) -> None:
        nonlocal position, line, column
        for _ in range(count):
            if position < length and text[position] == "\n":
                line += 1
                column = 1
            else:
                column += 1
            position += 1

    while position < length:
        char = text[position]
        if char in " \t\r\n":
            advance(1)
            continue
        if text.startswith("--", position):
            # SQL line comment.
            while position < length and text[position] != "\n":
                advance(1)
            continue
        start_line, start_column = line, column
        if char.isdigit() or (char == "." and position + 1 < length
                              and text[position + 1].isdigit()):
            end = position
            seen_dot = False
            while end < length and (text[end].isdigit()
                                    or (text[end] == "." and not seen_dot)):
                if text[end] == ".":
                    seen_dot = True
                end += 1
            value = text[position:end]
            advance(end - position)
            tokens.append(Token(TokenType.NUMBER, value, start_line, start_column))
            continue
        if char.isalpha() or char == "_":
            end = position
            while end < length and (text[end].isalnum() or text[end] == "_"):
                end += 1
            word = text[position:end]
            advance(end - position)
            if word.upper() in KEYWORDS:
                tokens.append(Token(TokenType.KEYWORD, word.upper(),
                                    start_line, start_column))
            else:
                tokens.append(Token(TokenType.IDENT, word,
                                    start_line, start_column))
            continue
        if char == "'":
            end = position + 1
            while end < length and text[end] != "'":
                end += 1
            if end >= length:
                raise LexError("unterminated string literal", position,
                               start_line, start_column)
            value = text[position + 1:end]
            advance(end - position + 1)
            tokens.append(Token(TokenType.STRING, value, start_line, start_column))
            continue
        matched_operator = next(
            (op for op in _OPERATORS if text.startswith(op, position)), None)
        if matched_operator:
            advance(len(matched_operator))
            canonical = "!=" if matched_operator == "<>" else matched_operator
            tokens.append(Token(TokenType.OPERATOR, canonical,
                                start_line, start_column))
            continue
        if char in _PUNCT:
            advance(1)
            tokens.append(Token(TokenType.PUNCT, char, start_line, start_column))
            continue
        raise LexError(f"unexpected character {char!r}", position,
                       start_line, start_column)

    tokens.append(Token(TokenType.EOF, "", line, column))
    return tokens
