"""The SQL-like query dialect of KSpot.

The paper's Query Panel accepts declarative queries such as::

    SELECT TOP 3 roomid, AVERAGE(sound)
    FROM sensors
    GROUP BY roomid
    EPOCH DURATION 1 min

and the historic variants carrying ``WITH HISTORY {interval}``. This
package is the complete pipeline from text to a logical plan:

``lexer`` → ``parser`` (recursive descent over :mod:`ast_nodes`) →
``validator`` (schema/semantic checks) → ``plan`` (query-class
inference and algorithm routing — the "no universal algorithm"
dispatch of §III).
"""

from .ast_nodes import (
    AggregateCall,
    ColumnRef,
    Comparison,
    BoolOp,
    Literal,
    NotOp,
    Query,
    SelectItem,
)
from .lexer import Token, TokenType, tokenize
from .parser import parse
from .plan import Algorithm, LogicalPlan, QueryClass, compile_query, make_plan
from .validator import Schema, validate

__all__ = [
    "tokenize",
    "Token",
    "TokenType",
    "parse",
    "validate",
    "Schema",
    "Query",
    "SelectItem",
    "ColumnRef",
    "AggregateCall",
    "Comparison",
    "BoolOp",
    "NotOp",
    "Literal",
    "QueryClass",
    "Algorithm",
    "LogicalPlan",
    "make_plan",
    "compile_query",
]
