"""The KSpot server tier (§II) — engine room of :mod:`repro.api`.

The base station software: accepts declarative queries from the Query
Panel, validates them against the deployment, routes them to the right
top-k algorithm, disseminates execution into the network, and feeds the
Display and System panels as epoch results stream back.

The public surface of this tier is :mod:`repro.api` (``Deployment`` /
``EpochDriver`` / ``SessionHandle``). :class:`QuerySession` is the
internal per-query execution context those layers drive;
:class:`KSpotServer` is the deprecated pre-facade god-object, kept as
a warning compatibility shim.
"""

from .server import KSpotServer
from .session import QuerySession

__all__ = ["KSpotServer", "QuerySession"]
