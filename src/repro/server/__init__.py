"""The KSpot server tier (§II).

The base station software: accepts declarative queries from the Query
Panel, validates them against the deployment, routes them to the right
top-k algorithm, disseminates execution into the network, and feeds the
Display and System panels as epoch results stream back.
"""

from .server import KSpotServer
from .session import QuerySession

__all__ = ["KSpotServer", "QuerySession"]
