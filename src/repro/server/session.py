"""Query sessions: one user's running query over the shared deployment.

The paper's base station serves *many* users' top-k queries over one
sensor deployment. A :class:`QuerySession` is the per-user execution
context the :class:`~repro.server.server.KSpotServer` keeps in its
registry: the compiled plan, the engine instance (with its own view /
filter state), the session's share of the network traffic, an optional
shadow-baseline engine feeding a per-session System Panel, and the
result stream.

Two execution shapes exist, matching the plan's query class:

* **Epoch mode** (MINT / TAG / FILA / NAIVE / CENTRALIZED): every
  :meth:`QuerySession.step` drives one acquisition round and appends
  one :class:`~repro.core.results.EpochResult`.
* **Historic-vertical mode** (TJA / TPUT): each step is one radio-
  silent acquisition epoch; once the window is full the one-shot
  distributed execution runs and the session finishes. This lets a
  historic query ride the same shared epoch clock as concurrent
  monitoring queries — its samples are the very readings the other
  sessions already paid for.

Sessions never drive the deployment clock directly. Their engines call
``network.advance_epoch()`` as always; when the server steps several
sessions inside ``network.shared_epoch()`` those calls coalesce into a
single real tick, so each sensor board samples exactly once per epoch
no matter how many sessions consume the reading.

**Churn recovery.** Live sessions survive node failures and joins via
a four-step protocol rather than a restart:

1. *detect* — the server forwards every
   :class:`~repro.network.events.TopologyEvent` the network publishes
   to each live session, which queues it;
2. *quiesce* — at the next step, before any acquisition, the session
   replays the queued events into its engine, which resets exactly the
   affected subtree state (MINT view caches, FILA filters), so no
   stale delta can transmit over the repaired tree;
3. *repair* — the routing tree itself was already re-wired
   incrementally by the network (orphans re-parented energy-aware,
   one attach handshake per new edge, charged to the ``recovery``
   stats phase);
4. *resume* — the epoch then runs normally; invalidated nodes re-ship
   full views, re-priming the caches, and answers are certified-exact
   over the surviving population again.

Every pass is appended to the session's
:class:`~repro.gui.stats.RecoveryLog`, which its System Panel exposes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from typing import Callable

from ..core.results import EpochResult
from ..errors import PlanError, SessionError
from ..gui.stats import RecoveryLog, RecoveryRecord, SystemPanel
from ..network.events import TopologyEvent
from ..network.stats import NetworkStats
from ..query.plan import QueryClass

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from ..core.engine import KSpotEngine
    from ..core.tja import TjaResult
    from ..core.tput import TputResult
    from ..gui.panels import DisplayPanel
    from ..network.simulator import Network
    from ..query.plan import LogicalPlan


class QuerySession:
    """One submitted query: plan + engine + per-session accounting."""

    def __init__(self, session_id: int, network: "Network",
                 plan: "LogicalPlan", engine: "KSpotEngine",
                 query_text: str,
                 baseline_engine: "KSpotEngine | None" = None,
                 display: "DisplayPanel | None" = None):
        """Args:
            session_id: Registry key assigned by the server.
            network: The shared deployment the engine runs on.
            plan: The compiled logical plan.
            engine: The engine executing the plan.
            query_text: The submitted SQL-like text (for listings).
            baseline_engine: Optional TAG shadow engine on a baseline
                network; when present the session keeps its own
                :class:`~repro.gui.stats.SystemPanel`.
            display: Optional Display Panel re-ranked on every result.
        """
        self.session_id = session_id
        self.network = network
        self.plan = plan
        self.engine = engine
        self.query_text = query_text
        self.baseline_engine = baseline_engine
        self.display = display
        #: This session's share of traffic on the shared deployment
        #: (mirrored via the network's stats tap while it executes).
        self.stats = NetworkStats()
        #: Churn-recovery accounting: one record per absorbed event
        #: batch (exposed on the session's System Panel when present).
        self.recovery = RecoveryLog()
        self._pending_events: list[TopologyEvent] = []
        self.system_panel: SystemPanel | None = None
        if baseline_engine is not None:
            self.system_panel = SystemPanel(
                self.stats, baseline_engine.network.stats,
                recovery=self.recovery)
        self.results: list[EpochResult] = []
        #: The one-shot answer of a historic-vertical session.
        self.historic_result: "TjaResult | TputResult | None" = None
        self.active = True
        #: Epochs this session has been stepped (acquisition included).
        self.steps_taken = 0
        self._acquired_epochs = 0
        self._acquisition_target = plan.window_epochs
        # Push subscriptions (the api layer's SessionHandle registers
        # here): result callbacks fire on every appended EpochResult
        # and on the historic answer; recovery callbacks fire per
        # recorded recovery pass, always *before* that epoch's result.
        self._result_callbacks: list[Callable[[object], None]] = []
        self._recovery_callbacks: list[Callable[[RecoveryRecord], None]] = []

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def is_historic(self) -> bool:
        """True for one-shot TJA/TPUT sessions."""
        return self.plan.query_class is QueryClass.HISTORIC_VERTICAL

    @property
    def finished(self) -> bool:
        """True once a historic session has produced its answer."""
        return self.historic_result is not None

    @property
    def baseline_network(self) -> "Network | None":
        """The shadow deployment this session's baseline runs on."""
        if self.baseline_engine is None:
            return None
        return self.baseline_engine.network

    # ------------------------------------------------------------------
    # Push subscriptions
    # ------------------------------------------------------------------

    def add_result_callback(self, callback: "Callable[[object], None]"
                            ) -> None:
        """Invoke ``callback(result)`` on every result this session
        produces (each EpochResult, and the one-shot historic answer)."""
        self._result_callbacks.append(callback)

    def add_recovery_callback(
            self, callback: "Callable[[RecoveryRecord], None]") -> None:
        """Invoke ``callback(record)`` on every recovery pass, before
        the same epoch's result callback fires."""
        self._recovery_callbacks.append(callback)

    def _publish_result(self, result) -> None:
        for callback in self._result_callbacks:
            callback(result)

    # ------------------------------------------------------------------
    # Churn recovery
    # ------------------------------------------------------------------

    def on_topology_event(self, event: TopologyEvent) -> None:
        """Detect: queue a lifecycle event for recovery at the next step."""
        if self.active:
            self._pending_events.append(event)

    def _recover_pending(self) -> None:
        """Quiesce + re-prime: replay queued events into the engine.

        Runs before the epoch's acquisition so stale subtree state
        never transmits over the repaired tree. The pass is recorded in
        :attr:`recovery`; the re-primed nodes' full-view resends ride
        the next epoch's normal converge-cast.
        """
        if not self._pending_events:
            return
        events, self._pending_events = self._pending_events, []
        reprimed = 0
        for event in events:
            reprimed += self.engine.handle_topology_event(event)
        record = RecoveryRecord(
            epoch=self.network.epoch,
            failed=tuple(e.node_id for e in events if e.failed),
            joined=tuple(e.node_id for e in events if e.joined),
            reprimed=reprimed,
            repair_edges=sum(len(e.reattached) for e in events),
        )
        self.recovery.record(record)
        for callback in self._recovery_callbacks:
            callback(record)

    # ------------------------------------------------------------------
    # Stepping
    # ------------------------------------------------------------------

    def step(self) -> "EpochResult | TjaResult | TputResult | None":
        """Advance this session by one epoch of the shared clock.

        Epoch-mode sessions return the epoch's
        :class:`~repro.core.results.EpochResult`. Historic sessions
        return None while acquiring and the final
        ``TjaResult``/``TputResult`` on the epoch that completes the
        window.
        """
        if not self.active:
            raise SessionError(
                f"session {self.session_id} is no longer active")
        self._recover_pending()
        self.steps_taken += 1
        if self.is_historic:
            return self._step_historic()
        with self.network.tap_stats(self.stats):
            result = self.engine.run_epoch()
        if self.baseline_engine is not None:
            self.baseline_engine.run_epoch()
        if self.system_panel is not None:
            self.system_panel.sample()
        if self.display is not None:
            self.display.update_ranking(result)
        self.results.append(result)
        self._publish_result(result)
        return result

    def _step_historic(self) -> "TjaResult | TputResult | None":
        """One acquisition epoch; executes once the window is full.

        Sampling goes through the node-level per-epoch cache, so when
        monitoring sessions share the deployment the acquisition is
        free — the board already fired this epoch.
        """
        if self._acquisition_target is None:
            raise PlanError("no window length to fill")
        self.engine.sample_participants()
        self._acquired_epochs += 1
        self.network.advance_epoch()
        if self._acquired_epochs < self._acquisition_target:
            return None
        return self._execute_historic()

    def _execute_historic(self) -> "TjaResult | TputResult":
        """Run the one-shot distributed execution; finishes the session."""
        with self.network.tap_stats(self.stats):
            self.historic_result = self.engine.execute_historic()
        self.active = False
        self._publish_result(self.historic_result)
        return self.historic_result

    def run_historic(self, acquisition_epochs: int | None = None
                     ) -> "TjaResult | TputResult":
        """Drive acquisition to completion and return the answer.

        ``acquisition_epochs`` overrides the plan's window length;
        with 0 (or when the target is already met) no further sampling
        or epoch advance happens — the one-shot execution runs straight
        over the already-buffered windows, exactly like the engine's
        ``fill_windows(0)`` + ``execute_historic()``.
        """
        if not self.is_historic:
            raise PlanError(
                "run_historic() is for GROUP BY epoch sessions")
        if acquisition_epochs is not None:
            self._acquisition_target = acquisition_epochs
        if self._acquisition_target is None:
            raise PlanError("no window length to fill")
        while (self.historic_result is None
               and self._acquired_epochs < self._acquisition_target):
            self.step()
        if self.historic_result is None:
            self._execute_historic()
        return self.historic_result

    def cancel(self) -> None:
        """Deactivate the session; the server stops stepping it."""
        self.active = False

    def __repr__(self) -> str:
        state = ("finished" if self.finished
                 else "active" if self.active else "cancelled")
        return (f"QuerySession({self.session_id}, "
                f"{self.plan.algorithm.value}, {state}, "
                f"results={len(self.results)})")
