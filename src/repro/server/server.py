"""KSpotServer: the modified-TinyDB base station of the demo.

One server owns one deployed network and serves *many* users at once:
each submitted SQL-like query is compiled (parse → validate → plan →
route, §III) into its own :class:`~repro.server.session.QuerySession`,
and all active sessions ride a single shared epoch clock — every
sensor board samples once per epoch and every session consumes that
same reading, so N concurrent queries cost far less than N deployments
(or N serial runs).

Two driving styles coexist:

* the legacy single-query flow (:meth:`KSpotServer.submit` /
  :meth:`~KSpotServer.run` / :meth:`~KSpotServer.run_historic`), which
  replaces whatever ran before — the original demo behaviour; and
* the multi-query flow (:meth:`~KSpotServer.submit_session` /
  :meth:`~KSpotServer.step_all` / :meth:`~KSpotServer.run_all`), which
  keeps a registry of concurrent sessions with per-session result
  streams, per-session traffic attribution, and session lifecycle
  (cancel, historic completion).

When given a *shadow network* — an identical deployment running the
TAG baseline — each session also runs there under TAG and keeps its
own System Panel with the live savings the demo projects on the wall;
``baseline_factory`` provides a fresh shadow per session so concurrent
baselines do not share radios.
"""

from __future__ import annotations

from contextlib import ExitStack
from typing import Callable, Hashable, Iterator, Mapping

from ..core.engine import KSpotEngine
from ..core.mint import MintConfig
from ..core.results import EpochResult
from ..core.tja import TjaResult
from ..core.tput import TputResult
from ..errors import PlanError, ValidationError
from ..gui.panels import DisplayPanel
from ..network.churn import ChurnSchedule
from ..network.simulator import Network
from ..query.plan import Algorithm, LogicalPlan, QueryClass, compile_query
from ..query.validator import Schema
from .session import QuerySession


class KSpotServer:
    """Query front-door, session registry and panel feeds for one
    deployment."""

    def __init__(self, network: Network,
                 schema: Schema | None = None,
                 group_of: Mapping[int, Hashable] | None = None,
                 display: DisplayPanel | None = None,
                 baseline_network: Network | None = None,
                 baseline_factory: Callable[[], Network] | None = None,
                 mint_config: MintConfig | None = None):
        """Args:
            network: The deployed sensor network.
            schema: Queryable attributes; derived from the first
                node's board when omitted.
            group_of: Cluster mapping (defaults to node groups).
            display: Optional Display Panel to re-rank each epoch.
            baseline_network: An identical shadow deployment shared by
                every session that wants a baseline. Fine for the
                legacy one-query-at-a-time flow; concurrent sessions
                should prefer ``baseline_factory``.
            baseline_factory: Zero-argument callable deploying a fresh
                shadow network; called once per top-k session so each
                session's TAG baseline (and System Panel) is isolated.
            mint_config: Tunables forwarded to MINT-routed sessions.
        """
        self.network = network
        self.schema = schema or self._derive_schema(network)
        self.group_of = group_of
        self.display = display
        self.baseline_network = baseline_network
        self.baseline_factory = baseline_factory
        self.mint_config = mint_config
        #: Session registry: id → session (cancelled ones included
        #: until explicitly removed; the legacy ``submit`` clears it).
        self.sessions: dict[int, QuerySession] = {}
        self._next_session_id = 1
        self._current: QuerySession | None = None
        # Churn detection: every node failure / join on the deployment
        # is forwarded to the live sessions, which recover at their
        # next step (see QuerySession's recovery protocol).
        network.subscribe(self._on_topology_event)

    def _on_topology_event(self, event) -> None:
        for session in self.sessions.values():
            session.on_topology_event(event)

    @staticmethod
    def _derive_schema(network: Network) -> Schema:
        for node_id in network.tree.sensor_ids:
            board = network.node(node_id).board
            if board is not None:
                return Schema.for_deployment(board.attributes,
                                             group_keys=("roomid", "cluster"))
        raise ValidationError("no sensor board found to derive a schema from")

    # ------------------------------------------------------------------
    # Session lifecycle
    # ------------------------------------------------------------------

    def _open_session(self, query_text: str,
                      algorithm: Algorithm | None) -> QuerySession:
        _, plan = compile_query(query_text, self.schema, algorithm=algorithm)
        engine = KSpotEngine(self.network, plan,
                             group_of=self.group_of,
                             mint_config=self.mint_config)
        if plan.query_class is not QueryClass.HISTORIC_VERTICAL:
            # Instantiate the routed algorithm now: plan/algorithm
            # incompatibilities (e.g. FILA over cluster ranking) must
            # reject *this* submission, not kill a later step_all()
            # that is also driving everyone else's sessions.
            engine.algorithm
        baseline_engine = None
        wants_baseline = (plan.query_class is not QueryClass.HISTORIC_VERTICAL
                          and plan.k is not None)
        if wants_baseline:
            shadow = (self.baseline_factory()
                      if self.baseline_factory is not None
                      else self.baseline_network)
            if shadow is not None:
                _, baseline_plan = compile_query(query_text, self.schema,
                                                 algorithm=Algorithm.TAG)
                baseline_engine = KSpotEngine(shadow, baseline_plan,
                                              group_of=self.group_of)
        session = QuerySession(self._next_session_id, self.network, plan,
                               engine, query_text,
                               baseline_engine=baseline_engine,
                               display=self.display)
        self._next_session_id += 1
        self.sessions[session.session_id] = session
        return session

    def submit(self, query_text: str,
               algorithm: Algorithm | None = None) -> LogicalPlan:
        """Compile a query and make it *the* query (legacy demo flow).

        Cancels and drops every registered session, then opens a fresh
        one — the original single-engine behaviour. Returns the
        compiled plan; the session is reachable via
        :attr:`current_session`. Use :meth:`submit_session` to run
        queries concurrently instead.

        Opens the new session *before* discarding the old ones, so a
        rejected query leaves the previous submission untouched and
        runnable — as the single-engine server always did.
        """
        session = self._open_session(query_text, algorithm)
        for existing in self.sessions.values():
            if existing is not session:
                existing.cancel()
        self.sessions = {session.session_id: session}
        self._current = session
        return session.plan

    def submit_session(self, query_text: str,
                       algorithm: Algorithm | None = None) -> int:
        """Register one more concurrent query; returns its session id.

        The new session joins the shared epoch clock on the next
        :meth:`step_all`. Existing sessions keep running.
        """
        session = self._open_session(query_text, algorithm)
        self._current = session
        return session.session_id

    def session(self, session_id: int) -> QuerySession:
        """Look up a registered session by id."""
        try:
            return self.sessions[session_id]
        except KeyError:
            raise PlanError(f"unknown session {session_id}") from None

    def cancel(self, session_id: int) -> None:
        """Stop stepping a session (its results remain readable)."""
        self.session(session_id).cancel()

    def active_sessions(self) -> tuple[QuerySession, ...]:
        """Sessions the shared clock still drives, in submission order."""
        return tuple(self.sessions[sid] for sid in sorted(self.sessions)
                     if self.sessions[sid].active)

    # ------------------------------------------------------------------
    # Shared-clock driving (multi-query flow)
    # ------------------------------------------------------------------

    def step_all(self) -> "dict[int, EpochResult | TjaResult | TputResult | None]":
        """Run one shared epoch across every active session.

        The deployment clock is held while the sessions execute: each
        engine closes "its" epoch as usual, the requests coalesce, and
        the clock ticks exactly once at the end. Sensor boards sample
        at most once per attribute — later sessions reuse the cached
        reading. Returns ``{session_id: outcome}``, where the outcome
        is the epoch result for monitoring sessions, None for
        still-acquiring historic sessions, and the one-shot answer on
        a historic session's completing epoch.
        """
        active = self.active_sessions()
        if not active:
            raise PlanError("no active sessions (nothing submitted?)")
        outcomes: dict[int, EpochResult | TjaResult | TputResult | None] = {}
        with ExitStack() as stack:
            stack.enter_context(self.network.shared_epoch())
            seen: set[int] = set()
            for session in active:
                shadow = session.baseline_network
                if shadow is not None and id(shadow) not in seen:
                    seen.add(id(shadow))
                    stack.enter_context(shadow.shared_epoch())
            for session in active:
                outcomes[session.session_id] = session.step()
        return outcomes

    def stream_all(self, epochs: int, churn: "ChurnSchedule | None" = None,
                   board_for: Callable[[int], object] | None = None,
                   ) -> "Iterator[dict[int, EpochResult | TjaResult | TputResult | None]]":
        """Yield :meth:`step_all` outcomes for up to ``epochs`` epochs,
        stopping early once no session remains active.

        With a :class:`~repro.network.churn.ChurnSchedule`, the events
        due at the current shared-clock epoch are applied *before* the
        epoch runs — sessions detect them, recover, and answer over the
        surviving population. ``board_for`` supplies newborn boards.

        Churn applies to *this* deployment only: sessions' TAG shadow
        networks keep their full fleet, so System-Panel savings under
        churn compare against what the baseline would cost on an
        intact deployment (an upper bound on the baseline), not
        against a baseline suffering the same losses.
        """
        for _ in range(epochs):
            if not self.active_sessions():
                return
            if churn is not None:
                churn.apply(self.network, self.network.epoch,
                            board_for=board_for)
            yield self.step_all()

    def run_all(self, epochs: int, churn: "ChurnSchedule | None" = None,
                board_for: Callable[[int], object] | None = None,
                ) -> dict[int, list[EpochResult]]:
        """Drive every session ``epochs`` shared epochs and collect the
        per-session result streams (historic answers land on
        ``session.historic_result``)."""
        for _ in self.stream_all(epochs, churn=churn, board_for=board_for):
            pass
        return {sid: list(self.sessions[sid].results)
                for sid in sorted(self.sessions)}

    # ------------------------------------------------------------------
    # Legacy single-session facade
    # ------------------------------------------------------------------

    @property
    def current_session(self) -> QuerySession | None:
        """The most recently submitted session, if any."""
        return self._current

    def _require_current(self) -> QuerySession:
        if self._current is None:
            raise PlanError("no query submitted")
        return self._current

    @property
    def engine(self) -> KSpotEngine | None:
        """The current session's engine (legacy accessor)."""
        return self._current.engine if self._current else None

    @property
    def baseline_engine(self) -> KSpotEngine | None:
        """The current session's shadow TAG engine (legacy accessor)."""
        return self._current.baseline_engine if self._current else None

    @property
    def system_panel(self):
        """The current session's System Panel (legacy accessor)."""
        return self._current.system_panel if self._current else None

    @property
    def plan(self) -> LogicalPlan | None:
        """The current session's plan (legacy accessor)."""
        return self._current.plan if self._current else None

    @property
    def results(self) -> list[EpochResult]:
        """The current session's result stream (legacy accessor)."""
        return self._current.results if self._current else []

    def stream(self, epochs: int) -> Iterator[EpochResult]:
        """Run the current query, yielding one result per epoch.

        Panels update as results arrive: the Display Panel re-ranks its
        bullets, the System Panel samples the savings. Historic-vertical
        queries are one-shot, not streams — run them via
        :meth:`run_historic` (or step them on the shared clock with
        :meth:`step_all`).
        """
        session = self._require_current()
        if session.is_historic:
            raise PlanError(
                "historic-vertical queries run via run_historic()")
        for _ in range(epochs):
            yield session.step()

    def run(self, epochs: int) -> list[EpochResult]:
        """Run and collect (non-streaming convenience)."""
        return list(self.stream(epochs))

    def run_historic(self, acquisition_epochs: int | None = None
                     ) -> "TjaResult | TputResult":
        """Execute the current historic-vertical query end-to-end.

        Fills the local windows (radio-silent acquisition), then runs
        the one-shot TJA/TPUT execution.
        """
        return self._require_current().run_historic(acquisition_epochs)
