"""KSpotServer: the modified-TinyDB base station of the demo.

One server owns one deployed network. Users submit SQL-like query text;
the server compiles it (parse → validate → plan → route, §III), spins
up the execution engine, and streams epoch results. When given a
*shadow network* — an identical deployment running the TAG baseline —
it also feeds the System Panel with the live savings the demo projects
on the wall.
"""

from __future__ import annotations

from typing import Hashable, Iterator, Mapping

from ..core.engine import KSpotEngine
from ..core.mint import MintConfig
from ..core.results import EpochResult
from ..core.tja import TjaResult
from ..core.tput import TputResult
from ..errors import PlanError, ValidationError
from ..gui.panels import DisplayPanel
from ..gui.stats import SystemPanel
from ..network.simulator import Network
from ..query.plan import Algorithm, LogicalPlan, QueryClass, compile_query
from ..query.validator import Schema


class KSpotServer:
    """Query front-door plus panel feeds for one deployment."""

    def __init__(self, network: Network,
                 schema: Schema | None = None,
                 group_of: Mapping[int, Hashable] | None = None,
                 display: DisplayPanel | None = None,
                 baseline_network: Network | None = None,
                 mint_config: MintConfig | None = None):
        """Args:
            network: The deployed sensor network.
            schema: Queryable attributes; derived from the first
                node's board when omitted.
            group_of: Cluster mapping (defaults to node groups).
            display: Optional Display Panel to re-rank each epoch.
            baseline_network: An identical shadow deployment; when
                present, every submitted top-k query also runs there
                under TAG and the System Panel reports the savings.
        """
        self.network = network
        self.schema = schema or self._derive_schema(network)
        self.group_of = group_of
        self.display = display
        self.baseline_network = baseline_network
        self.mint_config = mint_config
        self.engine: KSpotEngine | None = None
        self.baseline_engine: KSpotEngine | None = None
        self.system_panel: SystemPanel | None = None
        self.plan: LogicalPlan | None = None
        self.results: list[EpochResult] = []

    @staticmethod
    def _derive_schema(network: Network) -> Schema:
        for node_id in network.tree.sensor_ids:
            board = network.node(node_id).board
            if board is not None:
                return Schema.for_deployment(board.attributes,
                                             group_keys=("roomid", "cluster"))
        raise ValidationError("no sensor board found to derive a schema from")

    # ------------------------------------------------------------------
    # Query lifecycle
    # ------------------------------------------------------------------

    def submit(self, query_text: str,
               algorithm: Algorithm | None = None) -> LogicalPlan:
        """Compile a query and prepare execution (Query Panel → engine)."""
        _, plan = compile_query(query_text, self.schema, algorithm=algorithm)
        self.plan = plan
        self.engine = KSpotEngine(self.network, plan,
                                  group_of=self.group_of,
                                  mint_config=self.mint_config)
        self.results = []
        self.baseline_engine = None
        self.system_panel = None
        if (self.baseline_network is not None
                and plan.query_class is not QueryClass.HISTORIC_VERTICAL
                and plan.k is not None):
            _, baseline_plan = compile_query(query_text, self.schema,
                                             algorithm=Algorithm.TAG)
            self.baseline_engine = KSpotEngine(self.baseline_network,
                                               baseline_plan,
                                               group_of=self.group_of)
            self.system_panel = SystemPanel(
                self.network.stats, self.baseline_network.stats)
        return plan

    def _require_engine(self) -> KSpotEngine:
        if self.engine is None:
            raise PlanError("no query submitted")
        return self.engine

    def stream(self, epochs: int) -> Iterator[EpochResult]:
        """Run a continuous query, yielding one result per epoch.

        Panels update as results arrive: the Display Panel re-ranks its
        bullets, the System Panel samples the savings.
        """
        engine = self._require_engine()
        for _ in range(epochs):
            result = engine.run_epoch()
            if self.baseline_engine is not None:
                self.baseline_engine.run_epoch()
            if self.system_panel is not None:
                self.system_panel.sample()
            if self.display is not None:
                self.display.update_ranking(result)
            self.results.append(result)
            yield result

    def run(self, epochs: int) -> list[EpochResult]:
        """Run and collect (non-streaming convenience)."""
        return list(self.stream(epochs))

    def run_historic(self, acquisition_epochs: int | None = None
                     ) -> "TjaResult | TputResult":
        """Execute a historic-vertical query end-to-end.

        Fills the local windows (radio-silent acquisition), then runs
        the one-shot TJA/TPUT execution.
        """
        engine = self._require_engine()
        engine.fill_windows(acquisition_epochs)
        return engine.execute_historic()
