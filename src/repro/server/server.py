"""KSpotServer: the deprecated compatibility shim over ``repro.api``.

The server tier's public surface now lives in :mod:`repro.api`, split
into three composable layers — :class:`~repro.api.Deployment` (network
+ schema + session registry), :class:`~repro.api.EpochDriver` (shared
clock, step loop, interventions) and :class:`~repro.api.SessionHandle`
(read-only per-query view). :class:`KSpotServer` remains only so code
written against the pre-facade god-object keeps running: every legacy
entry point delegates to the new layers and emits a single
:class:`DeprecationWarning` per entry point per server instance.

Migration map (old → new):

=========================================  ==============================
``KSpotServer(network, ...)``              ``Deployment(network, ...)``
``submit()`` / ``stream()`` / ``run()``    ``deployment.submit()`` +
                                           ``handle.watch(driver, ...)``
``submit_session()``                       ``deployment.submit().id``
``session(sid)`` / ``cancel(sid)``         ``deployment.session(sid)`` /
                                           ``deployment.cancel(sid)``
``step_all()``                             ``driver.step()``
``stream_all(n, churn=, board_for=)``      ``EpochDriver(deployment,
                                           interventions=[ChurnIntervention
                                           (schedule)]).stream(n)``
``run_all(n)``                             ``driver.run(n)``
``results`` / ``plan`` / ``engine`` /      typed accessors on the
``system_panel``                           ``SessionHandle``
=========================================  ==============================
"""

from __future__ import annotations

import warnings
from typing import Callable, Hashable, Iterator, Mapping

from ..core.engine import KSpotEngine
from ..core.mint import MintConfig
from ..core.results import EpochResult
from ..core.tja import TjaResult
from ..core.tput import TputResult
from ..errors import PlanError
from ..gui.panels import DisplayPanel
from ..network.churn import ChurnSchedule
from ..network.simulator import Network
from ..query.plan import Algorithm, LogicalPlan
from ..query.validator import Schema
from .session import QuerySession


class KSpotServer:
    """Deprecated: use :class:`repro.api.Deployment` +
    :class:`repro.api.EpochDriver` + :class:`repro.api.SessionHandle`.

    Thin delegation shim; behaviour matches the legacy server,
    including the single-query flow where :meth:`submit` replaces every
    registered session. Legacy accessors (``results``, ``plan``,
    ``engine``, ``system_panel``) track only the legacy :meth:`submit`
    — :meth:`submit_session` no longer reassigns them mid-workload.
    """

    def __init__(self, network: Network,
                 schema: Schema | None = None,
                 group_of: Mapping[int, Hashable] | None = None,
                 display: DisplayPanel | None = None,
                 baseline_network: Network | None = None,
                 baseline_factory: Callable[[], Network] | None = None,
                 mint_config: MintConfig | None = None):
        # Imported lazily: repro.api builds on repro.server.session, so
        # a module-level import here would close an import cycle.
        from ..api.deployment import Deployment
        from ..api.driver import EpochDriver

        self._deployment = Deployment(
            network, schema=schema, group_of=group_of, display=display,
            baseline_factory=baseline_factory,
            baseline_network=baseline_network, mint_config=mint_config)
        self._driver = EpochDriver(self._deployment)
        self._current: QuerySession | None = None
        self._warned: set[str] = set()

    def _deprecated(self, name: str, replacement: str) -> None:
        """Warn once per entry point per server instance."""
        if name in self._warned:
            return
        self._warned.add(name)
        warnings.warn(
            f"KSpotServer.{name} is deprecated; use {replacement} "
            f"(see repro.api)", DeprecationWarning, stacklevel=3)

    # ------------------------------------------------------------------
    # Deployment delegation
    # ------------------------------------------------------------------

    @property
    def network(self) -> Network:
        return self._deployment.network

    @property
    def schema(self) -> Schema:
        return self._deployment.schema

    @property
    def group_of(self):
        return self._deployment.group_of

    @property
    def display(self):
        return self._deployment.display

    @property
    def baseline_network(self):
        return self._deployment.baseline_network

    @property
    def baseline_factory(self):
        return self._deployment.baseline_factory

    @property
    def mint_config(self):
        return self._deployment.mint_config

    @property
    def sessions(self) -> dict[int, QuerySession]:
        """The live session registry (id → engine-room session)."""
        return self._deployment._sessions

    # ------------------------------------------------------------------
    # Session lifecycle
    # ------------------------------------------------------------------

    def submit(self, query_text: str,
               algorithm: Algorithm | None = None) -> LogicalPlan:
        """Compile a query and make it *the* query (legacy demo flow).

        Cancels and drops every registered session, then opens a fresh
        one — the original single-engine behaviour. Opens the new
        session *before* discarding the old ones, so a rejected query
        leaves the previous submission untouched and runnable.
        """
        self._deprecated(
            "submit", "Deployment.submit() (sessions are concurrent; "
            "cancel explicitly if you want replacement)")
        session = self._deployment._open_session(query_text, algorithm)
        registry = self._deployment._sessions
        for existing in list(registry.values()):
            if existing is not session:
                existing.cancel()
        registry.clear()
        registry[session.session_id] = session
        handles = self._deployment._handles
        keep = handles[session.session_id]
        handles.clear()
        handles[session.session_id] = keep
        self._current = session
        return session.plan

    def submit_session(self, query_text: str,
                       algorithm: Algorithm | None = None) -> int:
        """Register one more concurrent query; returns its session id.

        Does *not* reassign the legacy current-session accessors —
        those track only :meth:`submit`. (Behaviour change vs the
        pre-facade server, which silently retargeted ``results`` /
        ``plan`` / ``engine`` on every submission.)
        """
        self._deprecated(
            "submit_session",
            "Deployment.submit(); note submit_session no longer "
            "retargets the legacy results/plan/engine accessors — "
            "read the returned session id instead")
        return self._deployment.submit(query_text, algorithm=algorithm).id

    def session(self, session_id: int) -> QuerySession:
        """Look up a registered session by id (raises
        :class:`~repro.errors.UnknownSessionError`)."""
        self._deprecated("session", "Deployment.session()")
        self._deployment.session(session_id)  # raises UnknownSessionError
        return self._deployment._sessions[session_id]

    def cancel(self, session_id: int) -> None:
        """Stop stepping a session (its results remain readable)."""
        self._deprecated("cancel", "Deployment.cancel()")
        self._deployment.cancel(session_id)

    def active_sessions(self) -> tuple[QuerySession, ...]:
        """Sessions the shared clock still drives, in submission order."""
        self._deprecated("active_sessions", "Deployment.sessions()")
        return self._deployment.active_sessions()

    # ------------------------------------------------------------------
    # Shared-clock driving (multi-query flow)
    # ------------------------------------------------------------------

    def step_all(self) -> "dict[int, EpochResult | TjaResult | TputResult | None]":
        """Run one shared epoch across every active session."""
        self._deprecated("step_all", "EpochDriver.step()")
        return self._driver.step()

    def stream_all(self, epochs: int, churn: "ChurnSchedule | None" = None,
                   board_for: Callable[[int], object] | None = None,
                   ) -> "Iterator[dict[int, EpochResult | TjaResult | TputResult | None]]":
        """Yield one-epoch outcomes for up to ``epochs`` epochs,
        stopping early once no session remains active. The ``churn=``/
        ``board_for=`` kwargs wrap into a
        :class:`~repro.api.ChurnIntervention` on a private driver."""
        self._deprecated(
            "stream_all", "EpochDriver(deployment, interventions="
            "[ChurnIntervention(schedule)]).stream()")
        return self._stream_all_quiet(epochs, churn, board_for)

    def run_all(self, epochs: int, churn: "ChurnSchedule | None" = None,
                board_for: Callable[[int], object] | None = None,
                ) -> dict[int, list[EpochResult]]:
        """Drive every session ``epochs`` shared epochs and collect the
        per-session result streams."""
        self._deprecated("run_all", "EpochDriver.run()")
        for _ in self._stream_all_quiet(epochs, churn, board_for):
            pass
        return {sid: list(self.sessions[sid].results)
                for sid in sorted(self.sessions)}

    def _stream_all_quiet(self, epochs, churn, board_for):
        from ..api.driver import EpochDriver
        from ..api.interventions import ChurnIntervention

        interventions = []
        if churn is not None:
            interventions.append(ChurnIntervention(churn,
                                                   board_for=board_for))
        driver = EpochDriver(self._deployment, interventions=interventions)
        return driver.stream(epochs)

    # ------------------------------------------------------------------
    # Legacy single-session facade
    # ------------------------------------------------------------------

    @property
    def current_session(self) -> QuerySession | None:
        """The session of the last legacy :meth:`submit`, if any."""
        self._deprecated("current_session", "the SessionHandle returned "
                         "by Deployment.submit()")
        return self._current

    def _require_current(self) -> QuerySession:
        if self._current is None:
            raise PlanError("no query submitted")
        return self._current

    @property
    def engine(self) -> KSpotEngine | None:
        """The current session's engine (legacy accessor)."""
        self._deprecated("engine", "SessionHandle accessors")
        return self._current.engine if self._current else None

    @property
    def baseline_engine(self) -> KSpotEngine | None:
        """The current session's shadow TAG engine (legacy accessor)."""
        self._deprecated("baseline_engine", "SessionHandle.system_panel")
        return self._current.baseline_engine if self._current else None

    @property
    def system_panel(self):
        """The current session's System Panel (legacy accessor)."""
        self._deprecated("system_panel", "SessionHandle.system_panel")
        return self._current.system_panel if self._current else None

    @property
    def plan(self) -> LogicalPlan | None:
        """The current session's plan (legacy accessor)."""
        self._deprecated("plan", "SessionHandle.plan")
        return self._current.plan if self._current else None

    @property
    def results(self) -> list[EpochResult]:
        """The current session's result stream (legacy accessor)."""
        self._deprecated("results", "SessionHandle.results")
        return self._current.results if self._current else []

    def stream(self, epochs: int) -> Iterator[EpochResult]:
        """Run the current query, yielding one result per epoch."""
        self._deprecated("stream", "SessionHandle.watch(driver)")
        session = self._require_current()
        if session.is_historic:
            raise PlanError(
                "historic-vertical queries run via run_historic()")
        return self._stream_current(session, epochs)

    @staticmethod
    def _stream_current(session: QuerySession,
                        epochs: int) -> Iterator[EpochResult]:
        for _ in range(epochs):
            yield session.step()

    def run(self, epochs: int) -> list[EpochResult]:
        """Run and collect (non-streaming convenience)."""
        self._deprecated("run", "EpochDriver.run()")
        session = self._require_current()
        if session.is_historic:
            raise PlanError(
                "historic-vertical queries run via run_historic()")
        return list(self._stream_current(session, epochs))

    def run_historic(self, acquisition_epochs: int | None = None
                     ) -> "TjaResult | TputResult":
        """Execute the current historic-vertical query end-to-end."""
        self._deprecated("run_historic", "EpochDriver.run() — historic "
                         "sessions finish by themselves")
        return self._require_current().run_historic(acquisition_epochs)
