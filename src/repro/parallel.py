"""``repro.parallel`` — the process-sharded fleet executor.

The simulator is single-threaded by design (epoch-synchronous, one
shared clock per deployment), so the way to saturate a machine is
*horizontal*: many independent deployments — workload files, perf
repeats, parameter-sweep cells — sharded across worker processes. This
module owns that scale-out layer:

* **Deterministic seed derivation** — :func:`derive_seed` splits a
  root seed into per-shard streams by hashing the shard's *identity*
  (never its position in a work queue), so every shard's
  ``random.Random`` streams are bit-identical regardless of worker
  count, scheduling order, or how a sweep is partitioned. No numpy:
  the split is SHA-256 over a canonical encoding, folded to a seed any
  ``random.Random`` accepts.

* **The shard envelope** — :class:`ShardResult` carries one shard's
  plain-data payload *or* its captured traceback across the process
  boundary (both picklable), plus timing and worker identity. Workers
  never crash the merge: a raising shard becomes a non-empty ``error``
  field, which callers (and the CI tripwire) must check via
  :func:`shard_errors`.

* **The executor** — :class:`ShardPool` wraps
  :class:`concurrent.futures.ProcessPoolExecutor` with order-preserving
  submission, per-shard error capture, and explicit propagation of the
  :mod:`repro.network.hotpath` switch (process-local state a ``spawn``
  worker would otherwise reset). ``jobs <= 1`` runs inline — same
  envelopes, no pool — so serial and sharded runs share one code path.

* **Sweeps** — :class:`SweepCell` grids (fleet size × churn preset ×
  query mix) with :func:`run_sweep_cell` as the worker and
  :func:`merge_sweep` folding the envelopes: per-cell answers and
  stats, fleet-wide savings via
  :meth:`~repro.gui.stats.SystemPanel.aggregate` over
  :class:`~repro.gui.stats.RecordedPanel` rebuilds.

Merged results are a pure function of the cell set — the property
tests (``tests/test_parallel.py``) drive random partitions and worker
counts through this module and require byte-identical merges. Workers
re-assert the hotpath switch, whose oracle stays reachable via
``hotpath.reference_path()`` inside any shard.
"""

from __future__ import annotations

import hashlib
import os
import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from .network import hotpath

#: Field separator for the canonical seed-path encoding (never appears
#: in decimal integers or the identifier-ish path parts we feed it).
_SEP = b"\x1f"

#: Churn preset name meaning "no churn" in sweep grids.
NO_CHURN = "none"


# ----------------------------------------------------------------------
# Deterministic seed-sequence splitting
# ----------------------------------------------------------------------


def derive_seed(root_seed: int, *path) -> int:
    """Split ``root_seed`` into the child stream named by ``path``.

    The derivation hashes the canonical encoding of the root seed and
    every path component (ints and strings), so it depends only on the
    shard's *identity* — two shards with different paths get
    independent streams, and the same path always yields the same
    seed, no matter which worker runs it or in which order. The result
    is a 63-bit int, directly usable as a ``random.Random`` seed.
    """
    digest = hashlib.sha256()
    digest.update(str(int(root_seed)).encode("ascii"))
    for part in path:
        digest.update(_SEP)
        digest.update(str(part).encode("utf-8"))
    return int.from_bytes(digest.digest()[:8], "big") >> 1


def split_seeds(root_seed: int, count: int,
                label: str = "shard") -> tuple[int, ...]:
    """``count`` independent child seeds (``derive_seed`` per index)."""
    return tuple(derive_seed(root_seed, label, index)
                 for index in range(count))


# ----------------------------------------------------------------------
# The shard envelope and the executor
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ShardResult:
    """One shard's outcome, as it crossed the process boundary.

    Attributes:
        key: The shard's stable identity (cell key, file name, ...).
        payload: The worker's plain-data result; None when it raised.
        error: The worker's formatted traceback; None on success.
        wall_seconds: In-worker wall-clock of the shard.
        pid: The worker process id (the parent's pid when inline).
    """

    key: str
    payload: dict | None
    error: str | None
    wall_seconds: float
    pid: int

    @property
    def ok(self) -> bool:
        """True when the worker returned instead of raising."""
        return self.error is None


def shard_errors(results: Iterable[ShardResult]) -> list[dict]:
    """The non-empty shard-error envelope: one ``{key, error}`` entry
    per failed shard (the CI tripwire fails when this is non-empty)."""
    return [{"key": result.key, "error": result.error}
            for result in results if not result.ok]


def _execute_shard(worker: Callable[[object], dict], spec,
                   key: str, hot: bool) -> ShardResult:
    """Run one shard in whatever process this lands in.

    Must stay a module-level function (picklable under ``spawn``).
    Re-asserts the hot-path switch — process-local state the parent
    cannot rely on a fresh interpreter inheriting — then captures
    either the payload or the full traceback into the envelope.
    """
    previous = hotpath.enabled()
    hotpath.set_enabled(hot)
    # repro: allow[no-wall-clock] -- shard wall_seconds is harness measurement metadata in the envelope, never simulation state (epochs stay the only clock in-sim)
    started = time.perf_counter()
    try:
        payload = worker(spec)
        return ShardResult(key=key, payload=payload, error=None,
                           # repro: allow[no-wall-clock] -- envelope timing metadata, not simulation state
                           wall_seconds=time.perf_counter() - started,
                           pid=os.getpid())
    except BaseException:
        return ShardResult(key=key, payload=None,
                           error=traceback.format_exc(),
                           # repro: allow[no-wall-clock] -- envelope timing metadata, not simulation state
                           wall_seconds=time.perf_counter() - started,
                           pid=os.getpid())
    finally:
        hotpath.set_enabled(previous)


def resolve_jobs(jobs: int | None) -> int:
    """Effective worker count: ``jobs`` clamped to >= 1, defaulting to
    the visible CPU count."""
    if jobs is None:
        jobs = os.cpu_count() or 1
    return max(1, int(jobs))


class ShardPool:
    """An order-preserving process pool speaking shard envelopes.

    ``jobs <= 1`` degenerates to inline execution in this process —
    identical envelopes, no pool, no pickling — so every caller has
    exactly one code path for serial and sharded runs. Use as a
    context manager or call :meth:`shutdown`.
    """

    def __init__(self, jobs: int | None = None, start_method: str | None = None):
        """Args:
            jobs: Worker processes (None: one per visible CPU).
            start_method: multiprocessing start method (None: the
                platform default; the subsystem is ``spawn``-safe).
        """
        self.jobs = resolve_jobs(jobs)
        self._executor: ProcessPoolExecutor | None = None
        if self.jobs > 1:
            context = None
            if start_method is not None:
                import multiprocessing

                context = multiprocessing.get_context(start_method)
            self._executor = ProcessPoolExecutor(max_workers=self.jobs,
                                                 mp_context=context)

    def __enter__(self) -> "ShardPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def shutdown(self) -> None:
        """Release the worker processes (idempotent)."""
        if self._executor is not None:
            self._executor.shutdown()
            self._executor = None

    def map_shards(self, worker: Callable[[object], dict],
                   specs: Sequence, keys: Sequence[str] | None = None
                   ) -> list[ShardResult]:
        """Run ``worker(spec)`` for every spec; envelopes in spec order.

        ``worker`` must be a module-level function and every spec
        picklable (the ``spawn`` contract). Scheduling order never
        leaks into the result: envelopes come back indexed by
        submission, and every seed a well-behaved worker consumes is
        derived from its spec, not its worker.
        """
        if keys is None:
            keys = [str(index) for index in range(len(specs))]
        if len(keys) != len(specs):
            raise ValueError(
                f"{len(specs)} specs but {len(keys)} keys")
        hot = hotpath.enabled()
        if self._executor is None:
            return [_execute_shard(worker, spec, key, hot)
                    for spec, key in zip(specs, keys)]
        futures = [
            self._executor.submit(_execute_shard, worker, spec, key, hot)
            for spec, key in zip(specs, keys)
        ]
        return [future.result() for future in futures]


def run_sharded(worker: Callable[[object], dict], specs: Sequence,
                jobs: int | None = None,
                keys: Sequence[str] | None = None,
                start_method: str | None = None) -> list[ShardResult]:
    """One-shot :class:`ShardPool` convenience wrapper."""
    with ShardPool(jobs=jobs, start_method=start_method) as pool:
        return pool.map_shards(worker, specs, keys=keys)


# ----------------------------------------------------------------------
# Sweeps: fleet size × churn preset × query mix
# ----------------------------------------------------------------------

#: Named query mixes a sweep can grid over. Entries are
#: ``(algorithm value | None, query text)`` — None routes normally.
QUERY_MIXES: dict[str, tuple[tuple[str | None, str], ...]] = {
    "e11": (
        (None, "SELECT TOP 2 roomid, AVG(sound) FROM sensors "
               "GROUP BY roomid EPOCH DURATION 1 min"),
        (None, "SELECT TOP 1 roomid, MAX(sound) FROM sensors "
               "GROUP BY roomid EPOCH DURATION 1 min"),
        (None, "SELECT TOP 3 roomid, SUM(sound) FROM sensors "
               "GROUP BY roomid EPOCH DURATION 1 min"),
        (None, "SELECT TOP 1 roomid, MIN(sound) FROM sensors "
               "GROUP BY roomid EPOCH DURATION 1 min"),
        (None, "SELECT TOP 3 epoch, AVG(sound) FROM sensors "
               "GROUP BY epoch WITH HISTORY 10 s EPOCH DURATION 1 s"),
    ),
    "mint": (
        (None, "SELECT TOP 2 roomid, AVG(sound) FROM sensors "
               "GROUP BY roomid EPOCH DURATION 1 min"),
        (None, "SELECT TOP 1 roomid, MAX(sound) FROM sensors "
               "GROUP BY roomid EPOCH DURATION 1 min"),
    ),
    "baselines": (
        ("tag", "SELECT TOP 2 roomid, AVG(sound) FROM sensors "
                "GROUP BY roomid EPOCH DURATION 1 min"),
        ("fila", "SELECT TOP 2 nodeid, AVG(sound) FROM sensors "
                 "GROUP BY nodeid EPOCH DURATION 1 min"),
    ),
    "historic": (
        (None, "SELECT TOP 3 epoch, AVG(sound) FROM sensors "
               "GROUP BY epoch WITH HISTORY 10 s EPOCH DURATION 1 s"),
    ),
}


@dataclass(frozen=True)
class SweepCell:
    """One grid cell: an independent deployment to drive to completion.

    Attributes:
        n_nodes: Fleet size (near-square grid via ``fleet_scenario``).
        churn: Churn preset name, or ``"none"``.
        mix: A :data:`QUERY_MIXES` key.
        epochs: Epochs to drive.
        seed: The *root* seed; the cell derives its own field and
            churn streams from it and the cell's identity, so a cell's
            results do not depend on which other cells run, where, or
            in what order.
        baseline: Give each top-k session a TAG shadow network (the
            System Panel input; costs one extra deployment per
            session).
    """

    n_nodes: int
    churn: str
    mix: str
    epochs: int
    seed: int
    baseline: bool = False

    @property
    def key(self) -> str:
        """The cell's stable identity (also its seed-derivation path)."""
        return f"n{self.n_nodes}-churn_{self.churn}-{self.mix}"

    @property
    def field_seed(self) -> int:
        """The sensing field's derived stream."""
        return derive_seed(self.seed, self.key, "field")

    @property
    def churn_seed(self) -> int:
        """The churn process's derived stream."""
        return derive_seed(self.seed, self.key, "churn")


def sweep_grid(sizes: Iterable[int], churns: Iterable[str],
               mixes: Iterable[str], epochs: int, seed: int,
               baseline: bool = False) -> tuple[SweepCell, ...]:
    """The full parameter grid, in deterministic (sorted-input) order."""
    from .errors import ConfigurationError
    from .scenarios import CHURN_PRESETS

    cells = []
    for mix in mixes:
        if mix not in QUERY_MIXES:
            raise ConfigurationError(
                f"unknown query mix {mix!r}; "
                f"choose from {sorted(QUERY_MIXES)}")
    for churn in churns:
        if churn != NO_CHURN and churn not in CHURN_PRESETS:
            raise ConfigurationError(
                f"unknown churn preset {churn!r}; choose from "
                f"{sorted((*CHURN_PRESETS, NO_CHURN))}")
    for n_nodes in sizes:
        if n_nodes < 1:
            raise ConfigurationError("fleet sizes must be positive")
        for churn in churns:
            for mix in mixes:
                cells.append(SweepCell(
                    n_nodes=n_nodes, churn=churn, mix=mix,
                    epochs=epochs, seed=seed, baseline=baseline))
    return tuple(cells)


def _answers_payload(handle) -> list:
    """A session's answers as JSON-able plain data."""
    if handle.is_historic:
        result = handle.historic_result
        if result is None:
            return []
        return [[item.key, item.score] for item in result.items]
    return [
        [result.epoch, result.exact, result.probed,
         [[item.key, item.score] for item in result.items]]
        for result in handle.results
    ]


def run_sweep_cell(cell: SweepCell) -> dict:
    """Drive one cell's deployment to completion (the shard worker).

    Builds everything from the cell spec — nothing is inherited from
    the parent process beyond the code — and returns a plain-data
    payload: per-session answers, traffic and recovery accounting,
    savings series (when shadowed), and the cell's throughput.
    """
    from .api import ChurnIntervention, Deployment, EpochDriver
    # repro: allow[layer-dag] -- lazy back-edge: sweep cells reuse perf's fleet_scenario layouts; worker-local import keeps the executor below the harness at module-import time
    from .perf import fleet_scenario
    from .query.plan import Algorithm
    from .scenarios import preset_churn

    scenario = fleet_scenario(cell.n_nodes, seed=cell.field_seed)
    baseline_factory = None
    if cell.baseline:
        def baseline_factory():
            return fleet_scenario(cell.n_nodes,
                                  seed=cell.field_seed).network
    deployment = Deployment.from_scenario(
        scenario, baseline_factory=baseline_factory)
    interventions = []
    if cell.churn != NO_CHURN:
        schedule = preset_churn(
            scenario.network.topology, cell.epochs, preset=cell.churn,
            seed=cell.churn_seed, group_for=scenario.churn_group_for,
            field=scenario.field)
        interventions.append(
            ChurnIntervention(schedule, board_for=scenario.board_for))
    driver = EpochDriver(deployment, interventions=interventions)
    handles = [
        deployment.submit(query,
                          algorithm=Algorithm(algo) if algo else None)
        for algo, query in QUERY_MIXES[cell.mix]
    ]
    # repro: allow[no-wall-clock] -- cell throughput (epochs/sec) is sweep measurement metadata; canonical() strips it before merge-equality checks
    started = time.perf_counter()
    driver.run(cell.epochs)
    # repro: allow[no-wall-clock] -- cell throughput measurement, stripped by canonical()
    wall_seconds = time.perf_counter() - started
    network = scenario.network
    sessions = []
    for handle in handles:
        entry = {
            "query": handle.query_text,
            "algorithm": handle.algorithm.value,
            "state": handle.state.value,
            "answers": _answers_payload(handle),
            "stats": handle.stats.summary(),
            "recovery": handle.recovery.summary(),
        }
        panel = handle.system_panel
        if panel is not None and panel.samples:
            entry["savings"] = [sample.as_dict()
                                for sample in panel.samples]
        sessions.append(entry)
    summary = network.stats.summary()
    summary["epoch"] = network.epoch
    summary["sensor_samples"] = sum(
        network.node(node_id).samples_taken
        for node_id in network.tree.sensor_ids)
    return {
        "cell": {"n_nodes": cell.n_nodes, "churn": cell.churn,
                 "mix": cell.mix, "epochs": cell.epochs,
                 "seed": cell.seed, "key": cell.key},
        "sessions": sessions,
        "deployment": summary,
        "wall_seconds": wall_seconds,
        "epochs_per_sec": (cell.epochs / wall_seconds
                           if wall_seconds else 0.0),
    }


def merge_sweep(results: Iterable[ShardResult]) -> dict:
    """Fold shard envelopes into the sweep report.

    Pure data-plane merging: cells stay in grid order, fleet totals
    sum, and per-session savings series rebuild into
    :class:`~repro.gui.stats.RecordedPanel` stand-ins so
    :meth:`~repro.gui.stats.SystemPanel.aggregate` prices the whole
    sweep's savings exactly as it would price live sessions. Timing
    fields are measurements and are reported per cell, never compared.
    """
    from .gui.stats import RecordedPanel, SystemPanel

    results = list(results)
    cells = [result.payload for result in results if result.ok]
    panels = [
        RecordedPanel.from_dicts(session["savings"])
        for payload in cells
        for session in payload["sessions"]
        if session.get("savings")
    ]
    aggregate = (SystemPanel.aggregate(panels).as_dict()
                 if panels else None)
    totals = {
        "cells": len(cells),
        "sessions": sum(len(payload["sessions"]) for payload in cells),
        "messages": sum(payload["deployment"]["messages"]
                        for payload in cells),
        "payload_bytes": sum(payload["deployment"]["payload_bytes"]
                             for payload in cells),
        "radio_joules": sum(payload["deployment"]["radio_joules"]
                            for payload in cells),
        "sensor_samples": sum(payload["deployment"]["sensor_samples"]
                              for payload in cells),
        "epochs": sum(payload["cell"]["epochs"] for payload in cells),
    }
    return {
        "cells": cells,
        "totals": totals,
        "aggregate_savings": aggregate,
        "shard_errors": shard_errors(results),
    }


#: Measurement-only keys (wall clocks and rates derived from them):
#: everything else in a merged sweep is deterministic simulation data.
_TIMING_KEYS = frozenset({"wall_seconds", "epochs_per_sec"})


def canonical(merged: dict) -> dict:
    """The merged sweep with measurement fields stripped.

    Wall clocks (and the rates derived from them) are host noise; the
    rest — answers, traffic, savings, recovery — is a pure function of
    the cell set. Serial and sharded runs of the same grid must agree
    on this canonical form *byte for byte* (the e14 benchmark and the
    partition property test compare JSON dumps of it).
    """

    def strip(value):
        if isinstance(value, dict):
            return {key: strip(item) for key, item in value.items()
                    if key not in _TIMING_KEYS}
        if isinstance(value, list):
            return [strip(item) for item in value]
        return value

    return strip(merged)


def run_sweep(cells: Sequence[SweepCell], jobs: int | None = None,
              start_method: str | None = None) -> dict:
    """Execute a sweep grid across ``jobs`` workers and merge it."""
    results = run_sharded(run_sweep_cell, cells, jobs=jobs,
                          keys=[cell.key for cell in cells],
                          start_method=start_method)
    return merge_sweep(results)
