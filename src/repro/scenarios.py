"""Canonical deployment scenarios used across examples, tests and benches.

The centrepiece is :func:`figure1_scenario`, the paper's 9-sensor /
4-room example reconstructed so its numbers reproduce *exactly*:

* room averages — A = 74.5, B = 41, C = 75, D = 64 (matching the
  in-network view labels of Figure 1);
* the naive greedy pruning strategy answers ``(D, 76.5)`` because
  ``(D, 39)`` is eliminated in-network (§III-A's trap); and
* the correct TOP-1 answer is ``(C, 75)``.

Also provided: the conference demo deployment of §IV (15 MICA2-class
motes in 6 clusters) and parameterised grid/room generators for the
scaling experiments.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Hashable

from .network.simulator import Network
from .network.topology import RoomSpec, Topology, room_topology
from .network.tree import RoutingTree
from .sensing.board import SensorBoard
from .sensing.generators import (
    ConstantField,
    FieldGenerator,
    RoomField,
    ZipfEventField,
)

#: Figure 1's sensor readings (sound level, % of full scale).
FIGURE1_READINGS = {
    1: 40.0, 2: 74.0, 3: 75.0, 4: 42.0, 5: 75.0,
    6: 75.0, 7: 78.0, 8: 75.0, 9: 39.0,
}

#: Figure 1's room assignment. Room averages: A 74.5, B 41, C 75, D 64.
FIGURE1_ROOMS = {
    1: "B", 2: "A", 3: "A", 4: "B", 5: "D",
    6: "C", 7: "D", 8: "C", 9: "D",
}

#: Figure 1's routing hierarchy (child → parent). Sensor s9 (the
#: ``(D, 39)`` reading) routes through s4, whose local top-1 is (B, 42)
#: — precisely the elimination that breaks greedy pruning.
FIGURE1_PARENTS = {
    2: 0, 4: 0, 6: 0,
    1: 2, 3: 2,
    9: 4,
    5: 6, 7: 6, 8: 6,
}

#: Positions only matter for rendering the 4-room floor plan.
FIGURE1_POSITIONS = {
    0: (20.0, -6.0),
    2: (6.0, 6.0), 3: (14.0, 6.0),      # room A (top-left)
    1: (6.0, 14.0), 4: (14.0, 14.0),    # room B (bottom-left)
    6: (26.0, 6.0), 8: (34.0, 6.0),     # room C (top-right)
    5: (26.0, 14.0), 7: (34.0, 14.0),   # room D (bottom-right)
    9: (14.0, 22.0),                    # room D annex, deep in the tree
}


@dataclass
class Scenario:
    """A deployed network plus everything a query needs to run on it."""

    network: Network
    group_of: dict[int, Hashable]
    attribute: str
    field: FieldGenerator

    @property
    def readings_fn(self):
        """Convenience: (node, epoch) → raw field value."""
        return self.field.value

    def board_for(self, node_id: int) -> SensorBoard:
        """A sensor board for a newborn node, sensing this scenario's
        field (the ``board_for`` hook churn schedules need)."""
        del node_id
        return SensorBoard({self.attribute: self.field})

    def churn_group_for(self, anchor: int) -> Hashable:
        """The cluster a mote dropped next to ``anchor`` belongs to."""
        return self.group_of.get(anchor)

    def deployment(self, **kwargs):
        """This scenario as a :class:`repro.api.Deployment` (keyword
        arguments forwarded — ``baseline_factory``, ``display``, ...)."""
        # repro: allow[layer-dag] -- lazy convenience back-edge: scenario.deployment() hands the object to the facade above it; module import stays downward-only
        from .api import Deployment

        return Deployment.from_scenario(self, **kwargs)

    def churn_intervention(self, epochs: int, preset: str = "lively",
                           seed: int = 0, first_epoch: int = 1):
        """A :class:`repro.api.ChurnIntervention` over this deployment:
        a seeded preset schedule with newborn boards wired to this
        scenario's field (ready to hand to an ``EpochDriver``)."""
        # repro: allow[layer-dag] -- lazy convenience back-edge, same contract as deployment() above
        from .api import ChurnIntervention

        schedule = churn_schedule(self, epochs, preset=preset, seed=seed,
                                  first_epoch=first_epoch)
        return ChurnIntervention(schedule, board_for=self.board_for)


def _boards_for(node_ids, attribute: str, field: FieldGenerator,
                quantize: bool = True) -> dict[int, SensorBoard]:
    return {node_id: SensorBoard({attribute: field}, quantize=quantize)
            for node_id in node_ids}


def figure1_scenario() -> Scenario:
    """The paper's Figure 1, wired exactly (readings, rooms, tree)."""
    field = ConstantField(FIGURE1_READINGS)
    topology = Topology(positions=dict(FIGURE1_POSITIONS), radio_range=25.0)
    tree = RoutingTree(0, FIGURE1_PARENTS)
    network = Network(
        topology,
        tree=tree,
        boards=_boards_for(FIGURE1_READINGS, "sound", field,
                           quantize=False),
        group_of=FIGURE1_ROOMS,
    )
    return Scenario(network=network, group_of=dict(FIGURE1_ROOMS),
                    attribute="sound", field=field)


#: The §IV demo deployment: 6 conference-site clusters, 15 motes.
CONFERENCE_CLUSTERS = (
    RoomSpec("Auditorium", 0.0, 0.0, 30.0, 20.0, sensors=4),
    RoomSpec("ConferenceRoomA", 40.0, 0.0, 20.0, 15.0, sensors=3),
    RoomSpec("ConferenceRoomB", 40.0, 25.0, 20.0, 15.0, sensors=3),
    RoomSpec("CoffeeStation", 0.0, 30.0, 15.0, 10.0, sensors=2),
    RoomSpec("Lobby", 20.0, 25.0, 15.0, 12.0, sensors=2),
    RoomSpec("Registration", 25.0, 45.0, 15.0, 10.0, sensors=1),
)


def conference_scenario(seed: int = 7, room_step: float = 5.0,
                        sensor_sigma: float = 2.0) -> Scenario:
    """The demo plan of §IV: 15 motes over 6 clusters sensing sound."""
    topology, room_of = room_topology(
        CONFERENCE_CLUSTERS, radio_range=30.0, seed=seed)
    field = RoomField(room_of, lo=0.0, hi=100.0, room_step=room_step,
                      sensor_sigma=sensor_sigma, seed=seed)
    network = Network(
        topology,
        boards=_boards_for(room_of, "sound", field),
        group_of=room_of,
    )
    return Scenario(network=network, group_of=dict(room_of),
                    attribute="sound", field=field)


def grid_rooms_scenario(side: int = 8, rooms_per_axis: int = 4,
                        seed: int = 0, skew: float = 0.0,
                        attribute: str = "sound",
                        room_step: float = 4.0,
                        sensor_sigma: float = 1.5,
                        radio_factor: float = 1.5,
                        hash_gauss: bool = False) -> Scenario:
    """A ``side × side`` grid partitioned into square rooms.

    The standard scaling layout (E2/E3/E4/E9): ``rooms_per_axis²``
    rooms, each covering a block of the grid. ``skew > 0`` switches the
    field to Zipf-distributed room loudness, concentrating activity in
    a few rooms. ``hash_gauss=True`` opts the room field into the
    hash-based Box–Muller noise stream (vectorizable; a deliberate RNG
    break from the default Mersenne cells — see
    :class:`~repro.sensing.generators.RoomField`).
    """
    from .network.topology import grid_topology

    spacing = 10.0
    topology = grid_topology(side, spacing=spacing,
                             radio_range=spacing * radio_factor)
    room_of: dict[int, Hashable] = {}
    block = max(1, side // rooms_per_axis)
    node_id = 1
    for row in range(side):
        for col in range(side):
            room = (min(row // block, rooms_per_axis - 1),
                    min(col // block, rooms_per_axis - 1))
            room_of[node_id] = f"R{room[0]}{room[1]}"
            node_id += 1
    if skew > 0:
        field: FieldGenerator = ZipfEventField(
            room_of, lo=0.0, hi=100.0, skew=skew, jitter=5.0, seed=seed)
    else:
        field = RoomField(room_of, lo=0.0, hi=100.0, room_step=room_step,
                          sensor_sigma=sensor_sigma, seed=seed,
                          hash_gauss=hash_gauss)
    network = Network(
        topology,
        boards=_boards_for(room_of, attribute, field),
        group_of=room_of,
    )
    return Scenario(network=network, group_of=room_of,
                    attribute=attribute, field=field)


#: Churn presets: name → (expected deaths per epoch, births per epoch).
#: "calm" is a healthy building deployment (occasional battery death),
#: "lively" a maintained fleet with swaps, "harsh" a field deployment
#: shedding and gaining motes continuously.
CHURN_PRESETS: dict[str, tuple[float, float]] = {
    "calm": (0.05, 0.0),
    "lively": (0.15, 0.10),
    "harsh": (0.35, 0.15),
}


def preset_churn(topology, epochs: int, preset: str = "lively",
                 seed: int = 0, group_for=None, field=None,
                 first_epoch: int = 1):
    """A seeded Poisson :class:`~repro.network.churn.ChurnSchedule`
    from a named preset's death/birth rates.

    Newborn motes inherit the cluster of the node they are dropped
    next to (via ``group_for``), so GROUP BY roomid queries adopt them
    seamlessly — and when ``field`` supports enrollment (RoomField,
    ZipfEventField) they are enrolled into it, so they *sense* that
    cluster's activity too, like any mote deployed there from day one.
    """
    from .network.churn import ChurnSchedule

    try:
        death_rate, birth_rate = CHURN_PRESETS[preset]
    except KeyError:
        from .errors import ConfigurationError

        raise ConfigurationError(
            f"unknown churn preset {preset!r}; "
            f"choose from {sorted(CHURN_PRESETS)}"
        ) from None
    schedule = ChurnSchedule.poisson(
        topology, epochs,
        death_rate=death_rate, birth_rate=birth_rate,
        seed=seed, first_epoch=first_epoch, group_for=group_for,
    )
    enroll = getattr(field, "enroll", None)
    if enroll is not None:
        for event in schedule.births:
            if event.group is not None:
                enroll(event.node_id, event.group)
    return schedule


def churn_schedule(scenario: Scenario, epochs: int,
                   preset: str = "lively", seed: int = 0,
                   first_epoch: int = 1):
    """:func:`preset_churn` over a :class:`Scenario`'s deployment."""
    return preset_churn(scenario.network.topology, epochs,
                        preset=preset, seed=seed,
                        group_for=scenario.churn_group_for,
                        field=scenario.field, first_epoch=first_epoch)


def random_rooms_scenario(rooms: int = 6, sensors_per_room: int = 3,
                          seed: int = 0, attribute: str = "sound"
                          ) -> Scenario:
    """Randomised clustered deployment for property-based tests.

    Placement within rooms is random, so some draws are disconnected at
    the default radio range; those redraw deterministically (advancing
    the placement seed) until a connected layout appears.
    """
    from .errors import TopologyError

    rng = random.Random(seed)
    specs = []
    for index in range(rooms):
        specs.append(RoomSpec(
            name=f"Room{index}",
            x=(index % 3) * 40.0,
            y=(index // 3) * 40.0,
            width=25.0,
            height=25.0,
            sensors=sensors_per_room,
        ))
    topology = room_of = None
    for attempt in range(50):
        try:
            topology, room_of = room_topology(specs, radio_range=45.0,
                                              seed=seed + attempt * 10_007)
            break
        except TopologyError:
            continue
    if topology is None:
        raise TopologyError(
            f"no connected room placement found for seed {seed}"
        )
    field = RoomField(room_of, lo=0.0, hi=100.0,
                      room_step=rng.uniform(2.0, 8.0),
                      sensor_sigma=rng.uniform(0.5, 3.0), seed=seed)
    network = Network(
        topology,
        boards=_boards_for(room_of, attribute, field),
        group_of=room_of,
    )
    return Scenario(network=network, group_of=dict(room_of),
                    attribute=attribute, field=field)
