"""Deployments: the network-owning layer of the public API.

A :class:`Deployment` owns exactly the static half of what the old
``KSpotServer`` god-object mixed with driving concerns: the deployed
:class:`~repro.network.simulator.Network`, the queryable
:class:`~repro.query.validator.Schema`, the cluster mapping, the
optional Display Panel, and the baseline (shadow) factory that gives
each top-k session its own TAG comparison network. It also keeps the
session registry: :meth:`submit` compiles a query into a
:class:`~repro.server.session.QuerySession` and hands back the
read-only :class:`~repro.api.SessionHandle`.

What a Deployment deliberately does *not* do is advance time — the
shared epoch clock and the step loop belong to
:class:`~repro.api.EpochDriver`, so several driving policies can be
layered over one deployment without touching it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Hashable, Mapping

from ..core.engine import KSpotEngine
from ..errors import SubmissionError, UnknownSessionError, ValidationError
from ..query.plan import Algorithm, QueryClass, compile_query
from ..query.validator import Schema
# repro: allow[layer-dag] -- QuerySession predates the facade and still lives in server/; this is the one runtime api -> server edge until it is hoisted (ROADMAP)
from ..server.session import QuerySession
from .handle import SessionHandle

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.mint import MintConfig
    from ..gui.panels import DisplayPanel
    from ..network.simulator import Network
    from ..scenarios import Scenario
    from ..sensing.board import SensorBoard


class Deployment:
    """One deployed sensor network plus its session registry."""

    def __init__(self, network: "Network",
                 schema: Schema | None = None,
                 group_of: Mapping[int, Hashable] | None = None,
                 display: "DisplayPanel | None" = None,
                 baseline_factory: "Callable[[], Network] | None" = None,
                 baseline_network: "Network | None" = None,
                 mint_config: "MintConfig | None" = None,
                 max_sessions: int | None = None,
                 scenario: "Scenario | None" = None):
        """Args:
            network: The deployed sensor network.
            schema: Queryable attributes; derived from the first
                node's board when omitted.
            group_of: Cluster mapping (defaults to node groups).
            display: Optional Display Panel re-ranked on every result.
            baseline_factory: Zero-argument callable deploying a fresh
                shadow network; called once per top-k session so each
                session's TAG baseline (and System Panel) is isolated.
            baseline_network: One shared shadow deployment — only safe
                when a single session wants a baseline; prefer
                ``baseline_factory``.
            mint_config: Tunables forwarded to MINT-routed sessions.
            max_sessions: Admission limit — :meth:`submit` raises
                :class:`~repro.errors.SubmissionError` while this many
                sessions are still active (None: unlimited).
            scenario: The :class:`~repro.scenarios.Scenario` this
                deployment came from, when built from one; supplies
                sensor boards for churn-born motes.
        """
        self.network = network
        self.schema = schema or self._derive_schema(network)
        self.group_of = group_of
        self.display = display
        self.baseline_factory = baseline_factory
        self.baseline_network = baseline_network
        self.mint_config = mint_config
        self.max_sessions = max_sessions
        self.scenario = scenario
        self._sessions: dict[int, QuerySession] = {}
        self._handles: dict[int, SessionHandle] = {}
        self._next_session_id = 1
        # Every node failure / join the network publishes is forwarded
        # to the live sessions, which recover at their next step.
        network.subscribe(self._on_topology_event)

    @classmethod
    def from_scenario(cls, scenario: "Scenario",
                      **kwargs) -> "Deployment":
        """Build a deployment declaratively from a
        :class:`~repro.scenarios.Scenario` (network + cluster mapping +
        field, wired for churn-born boards). Keyword arguments are
        forwarded to the constructor."""
        return cls(scenario.network, group_of=scenario.group_of,
                   scenario=scenario, **kwargs)

    @staticmethod
    def _derive_schema(network: "Network") -> Schema:
        for node_id in network.tree.sensor_ids:
            board = network.node(node_id).board
            if board is not None:
                return Schema.for_deployment(board.attributes,
                                             group_keys=("roomid", "cluster"))
        raise ValidationError("no sensor board found to derive a schema from")

    def _on_topology_event(self, event) -> None:
        for session in self._sessions.values():
            session.on_topology_event(event)

    def board_for(self, node_id: int) -> "SensorBoard | None":
        """A sensor board for a churn-born mote, when the deployment
        knows its scenario's field (None otherwise — the newborn joins
        but cannot be sampled)."""
        if self.scenario is None:
            return None
        return self.scenario.board_for(node_id)

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------

    def _open_session(self, query_text: str,
                      algorithm: Algorithm | None) -> QuerySession:
        _, plan = compile_query(query_text, self.schema, algorithm=algorithm)
        engine = KSpotEngine(self.network, plan,
                             group_of=self.group_of,
                             mint_config=self.mint_config)
        if plan.query_class is not QueryClass.HISTORIC_VERTICAL:
            # Instantiate the routed algorithm now: plan/algorithm
            # incompatibilities (e.g. FILA over cluster ranking) must
            # reject *this* submission, not kill a later driver step
            # that is also driving everyone else's sessions.
            engine.algorithm
        baseline_engine = None
        wants_baseline = (plan.query_class is not QueryClass.HISTORIC_VERTICAL
                          and plan.k is not None)
        if wants_baseline:
            shadow = (self.baseline_factory()
                      if self.baseline_factory is not None
                      else self.baseline_network)
            if shadow is not None:
                _, baseline_plan = compile_query(query_text, self.schema,
                                                 algorithm=Algorithm.TAG)
                baseline_engine = KSpotEngine(shadow, baseline_plan,
                                              group_of=self.group_of)
        session = QuerySession(self._next_session_id, self.network, plan,
                               engine, query_text,
                               baseline_engine=baseline_engine,
                               display=self.display)
        self._next_session_id += 1
        self._sessions[session.session_id] = session
        self._handles[session.session_id] = SessionHandle(session)
        return session

    def submit(self, query_text: str,
               algorithm: Algorithm | None = None) -> SessionHandle:
        """Compile a query into one more concurrent session.

        The new session joins the shared epoch clock at the driver's
        next step; existing sessions keep running. Raises the precise
        :class:`~repro.errors.QueryError` subclass on a bad query, and
        :class:`~repro.errors.SubmissionError` when the deployment's
        ``max_sessions`` admission limit is reached.
        """
        if self.max_sessions is not None:
            active = sum(1 for s in self._sessions.values() if s.active)
            if active >= self.max_sessions:
                raise SubmissionError(
                    f"deployment admission limit reached "
                    f"({active} active sessions, max {self.max_sessions})")
        session = self._open_session(query_text, algorithm)
        return self._handles[session.session_id]

    # ------------------------------------------------------------------
    # Registry
    # ------------------------------------------------------------------

    def session(self, session_id: int) -> SessionHandle:
        """Look up a registered session's handle by id."""
        try:
            return self._handles[session_id]
        except KeyError:
            raise UnknownSessionError(
                f"unknown session {session_id}") from None

    def sessions(self) -> tuple[SessionHandle, ...]:
        """Every registered session's handle, in submission order
        (cancelled and finished ones included)."""
        return tuple(self._handles[sid] for sid in sorted(self._handles))

    def cancel(self, session_id: int) -> None:
        """Stop stepping a session (its results remain readable)."""
        try:
            self._sessions[session_id].cancel()
        except KeyError:
            raise UnknownSessionError(
                f"unknown session {session_id}") from None

    def active_sessions(self) -> tuple[QuerySession, ...]:
        """The engine-room sessions the shared clock still drives, in
        submission order (the driver's step source; most callers want
        :meth:`sessions`)."""
        return tuple(self._sessions[sid] for sid in sorted(self._sessions)
                     if self._sessions[sid].active)

    def __repr__(self) -> str:
        active = sum(1 for s in self._sessions.values() if s.active)
        return (f"Deployment({len(self.network.nodes)} nodes, "
                f"epoch {self.network.epoch}, "
                f"{active}/{len(self._sessions)} sessions active)")
