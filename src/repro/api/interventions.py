"""Interventions: pluggable world-changers on the driver's epoch loop.

PR 2 bolted churn injection onto ``stream_all(churn=, board_for=)`` —
a pair of keyword arguments that could only ever express one kind of
intervention. The driver generalises this: an :class:`Intervention` is
an object with ``before_epoch`` / ``after_epoch`` hooks the
:class:`~repro.api.EpochDriver` calls around every shared epoch, so
node churn, duty-cycle changes, or fault injection all plug in the
same way.

:class:`ChurnIntervention` wraps a
:class:`~repro.network.churn.ChurnSchedule` and applies the events due
at the current epoch *before* the epoch runs — live sessions detect
them, recover, and answer over the surviving population, exactly the
old ``stream_all`` semantics.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..network.churn import ChurnEvent, ChurnSchedule
    from .deployment import Deployment


class Intervention:
    """Base class: a no-op hook pair around every driven epoch."""

    def before_epoch(self, deployment: "Deployment", epoch: int) -> None:
        """Called before the epoch at shared-clock time ``epoch`` runs."""

    def after_epoch(self, deployment: "Deployment", epoch: int,
                    outcomes: dict) -> None:
        """Called after the epoch ran, with the per-session outcomes."""


class ChurnIntervention(Intervention):
    """Apply a churn schedule's due events at the start of each epoch.

    Churn applies to the *primary* deployment only: sessions' TAG
    shadow networks keep their full fleet, so System-Panel savings
    under churn compare against what the baseline would cost on an
    intact deployment (an upper bound on the baseline), not against a
    baseline suffering the same losses.
    """

    def __init__(self, schedule: "ChurnSchedule",
                 board_for: Callable[[int], object] | None = None):
        """Args:
            schedule: The deaths-and-births script to apply.
            board_for: ``node_id -> SensorBoard`` for churn-born motes;
                defaults to the deployment's scenario-provided boards
                (newborns without a board join but cannot be sampled).
        """
        self.schedule = schedule
        self.board_for = board_for
        #: Every event actually applied so far, in application order.
        self.applied: "list[ChurnEvent]" = []

    def before_epoch(self, deployment: "Deployment", epoch: int) -> None:
        board_for = self.board_for or deployment.board_for
        self.applied.extend(
            self.schedule.apply(deployment.network, epoch,
                                board_for=board_for))

    def __repr__(self) -> str:
        return (f"ChurnIntervention({len(self.schedule.events)} scheduled, "
                f"{len(self.applied)} applied)")
