"""``repro.api`` — the layered public facade of the server tier.

Three composable layers replace the old ``KSpotServer`` god-object:

* :class:`Deployment` — owns the network, schema, cluster mapping and
  baseline (shadow) factory; registers sessions
  (:meth:`~Deployment.submit` returns a handle). Build one from a
  :class:`~repro.scenarios.Scenario` via
  :meth:`Deployment.from_scenario` or from a raw ``Network``.
* :class:`EpochDriver` — owns the shared epoch clock and the step
  loop, with pluggable :class:`Intervention` objects
  (:class:`ChurnIntervention` wraps a churn schedule) and driver-level
  policies (``max_epochs``, ``stop_when_idle``, per-step hooks).
* :class:`SessionHandle` — the user-facing, read-only view of one
  query: a :class:`SessionState`, typed accessors for results, stats,
  recovery log and panels, a :meth:`~SessionHandle.watch` iterator,
  and push subscriptions (:meth:`~SessionHandle.on_result` /
  :meth:`~SessionHandle.on_recovery`).

The ninety-second tour (doctest-checked by ``tests/test_doctests.py``
— the example below runs, and its output is pinned, on every CI run):

    >>> from repro.api import Deployment, EpochDriver
    >>> from repro.scenarios import conference_scenario
    >>> deployment = Deployment.from_scenario(conference_scenario())
    >>> driver = EpochDriver(deployment)
    >>> handle = deployment.submit(
    ...     "SELECT TOP 1 roomid, MAX(sound) FROM sensors "
    ...     "GROUP BY roomid EPOCH DURATION 1 min")
    >>> for result in handle.watch(driver, epochs=3):
    ...     print(result.epoch,
    ...           [(i.key, round(i.score, 1)) for i in result.items],
    ...           result.exact)
    0 [('ConferenceRoomA', 57.1)] True
    1 [('ConferenceRoomA', 60.6)] True
    2 [('ConferenceRoomA', 55.7)] True

(Determinism is the simulator's contract: the scenario seed pins every
reading and loss draw, on either the hot or reference path — see
``tests/test_hotpath_equivalence.py``.)

Errors raised by this layer live in :mod:`repro.errors` and are
re-exported here: :class:`SessionError` (base of the session
taxonomy), :class:`UnknownSessionError`, :class:`SubmissionError`.

This surface is snapshot-tested (``tests/api_surface.txt``): additions
and signature changes must update the snapshot deliberately.
"""

from ..errors import SessionError, SubmissionError, UnknownSessionError
from .deployment import Deployment
from .driver import EpochDriver
from .handle import SessionHandle, SessionState
from .interventions import ChurnIntervention, Intervention

__all__ = [
    "Deployment",
    "EpochDriver",
    "SessionHandle",
    "SessionState",
    "Intervention",
    "ChurnIntervention",
    "SessionError",
    "UnknownSessionError",
    "SubmissionError",
]
