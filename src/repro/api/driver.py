"""Epoch drivers: the shared clock and step loop of the public API.

An :class:`EpochDriver` advances a :class:`~repro.api.Deployment` one
shared epoch at a time: it holds the deployment clock while every
active session executes, so the per-engine ``advance_epoch`` calls
coalesce into a single real tick and each sensor board samples at most
once per epoch no matter how many sessions consume the reading.

Driving policy lives here, not on the deployment:

* **interventions** — pluggable :class:`~repro.api.Intervention`
  objects (node churn, fault injection) hooked around every epoch;
* **max_epochs** — a lifetime budget after which the driver refuses to
  step (a runaway-loop guard for service-style callers);
* **max_events** — the event-core twin of ``max_epochs``: a budget on
  the network's fired delivery events
  (:attr:`~repro.network.simulator.Network.events_processed`), for
  callers that meter simulated work rather than epochs;
* **stop_when_idle** — :meth:`stream` / :meth:`run` end as soon as no
  session remains active (on by default);
* **per-step hooks** — ``on_step(driver, outcomes)`` observers for
  dashboards and logging.
"""

from __future__ import annotations

from contextlib import ExitStack
from typing import TYPE_CHECKING, Callable, Iterable, Iterator

from ..errors import ConfigurationError, SessionError
from .interventions import Intervention

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.results import EpochResult
    from ..core.tja import TjaResult
    from ..core.tput import TputResult
    from .deployment import Deployment

    #: What one shared epoch yields per session: the epoch result for
    #: monitoring sessions, None for still-acquiring historic sessions,
    #: and the one-shot answer on a historic session's completing epoch.
    Outcome = EpochResult | TjaResult | TputResult | None


class EpochDriver:
    """Drives every active session of one deployment in lock-step."""

    def __init__(self, deployment: "Deployment",
                 interventions: Iterable[Intervention] = (),
                 max_epochs: int | None = None,
                 max_events: int | None = None,
                 stop_when_idle: bool = True,
                 on_step: "Callable[[EpochDriver, dict], None] | None" = None):
        """Args:
            deployment: The deployment whose sessions to drive.
            interventions: Hooked around every epoch, in order.
            max_epochs: Lifetime step budget; :meth:`step` raises
                :class:`~repro.errors.SessionError` once exhausted
                (None: unlimited).
            max_events: Budget on the network's fired event-core
                deliveries; once ``events_processed`` reaches it,
                :meth:`step` raises and :meth:`stream` ends. Only
                meaningful with the event core enabled (the inline
                ship path fires no events; None: unlimited).
            stop_when_idle: End :meth:`stream`/:meth:`run` once no
                session remains active.
            on_step: Observer called as ``on_step(driver, outcomes)``
                after every epoch (more via :meth:`add_hook`).
        """
        self.deployment = deployment
        self.interventions = list(interventions)
        self.max_epochs = max_epochs
        self.max_events = max_events
        self.stop_when_idle = stop_when_idle
        self._hooks: "list[Callable[[EpochDriver, dict], None]]" = []
        if on_step is not None:
            self._hooks.append(on_step)
        #: Epochs this driver has driven (the network clock counts all
        #: drivers; this counts ours, for the max_epochs policy).
        self.epochs_driven = 0

    @property
    def epoch(self) -> int:
        """The deployment's current shared-clock epoch."""
        return self.deployment.network.epoch

    def add_hook(self, hook: "Callable[[EpochDriver, dict], None]") -> None:
        """Register one more per-step observer."""
        self._hooks.append(hook)

    def add_intervention(self, intervention: Intervention) -> None:
        """Register one more intervention (applies from the next step)."""
        self.interventions.append(intervention)

    # ------------------------------------------------------------------
    # Stepping
    # ------------------------------------------------------------------

    def step(self) -> "dict[int, Outcome]":
        """Run one shared epoch across every active session.

        Interventions' ``before_epoch`` hooks run first (churn due now
        is applied, sessions will detect and recover), then the clock
        is held while the sessions execute, then ``after_epoch`` hooks
        and per-step observers fire. Returns ``{session_id: outcome}``.

        Raises :class:`~repro.errors.SessionError` when no session is
        active or the ``max_epochs`` budget is spent.
        """
        if self.max_epochs is not None and self.epochs_driven >= self.max_epochs:
            raise SessionError(
                f"driver exhausted its max_epochs budget ({self.max_epochs})")
        if (self.max_events is not None
                and self.deployment.network.events_processed
                >= self.max_events):
            raise SessionError(
                f"driver exhausted its max_events budget ({self.max_events})")
        deployment = self.deployment
        network = deployment.network
        # Validate before intervening: a refused step must not mutate
        # the world (churn applied with nobody listening would kill
        # nodes no session ever detects or recovers from).
        if not deployment.active_sessions():
            raise SessionError("no active sessions (nothing submitted?)")
        for intervention in self.interventions:
            intervention.before_epoch(deployment, network.epoch)
        active = deployment.active_sessions()
        outcomes: "dict[int, Outcome]" = {}
        shadows: "list" = []
        seen: set[int] = set()
        for session in active:
            shadow = session.baseline_network
            if shadow is not None and id(shadow) not in seen:
                seen.add(id(shadow))
                shadows.append(shadow)
        with ExitStack() as stack:
            stack.enter_context(network.shared_epoch())
            for shadow in shadows:
                stack.enter_context(shadow.shared_epoch())
            for session in active:
                outcomes[session.session_id] = session.step()
        self.epochs_driven += 1
        for intervention in self.interventions:
            intervention.after_epoch(deployment, network.epoch, outcomes)
        for hook in self._hooks:
            hook(self, outcomes)
        return outcomes

    def stream(self, epochs: int | None = None
               ) -> "Iterator[dict[int, Outcome]]":
        """Yield :meth:`step` outcomes for up to ``epochs`` epochs.

        Stops early once no session remains active (with
        ``stop_when_idle``, the default) or the ``max_epochs`` budget
        is spent. ``epochs=None`` streams until one of those policies
        ends the loop — so it requires at least one bound, or an
        all-historic workload that *will* go idle; see :meth:`run`.
        The bound check raises at the call site, not at the first
        ``next()``.
        """
        self._check_bounded(epochs)
        return self._stream(epochs)

    def _stream(self, epochs: int | None
                ) -> "Iterator[dict[int, Outcome]]":
        driven = 0
        while epochs is None or driven < epochs:
            if self.max_epochs is not None \
                    and self.epochs_driven >= self.max_epochs:
                return
            if self.max_events is not None \
                    and self.deployment.network.events_processed \
                    >= self.max_events:
                return
            if self.stop_when_idle \
                    and not self.deployment.active_sessions():
                return
            yield self.step()
            driven += 1

    def run(self, epochs: int | None = None
            ) -> "dict[int, tuple[EpochResult, ...]]":
        """Drive up to ``epochs`` shared epochs and collect every
        session's result stream, keyed by session id (historic answers
        land on the handles' ``historic_result``).

        ``epochs=None`` runs until idle — valid only when something
        bounds the loop (``max_epochs``, or a workload of historic
        sessions, which finish by themselves); a continuous monitoring
        session with no bound raises
        :class:`~repro.errors.ConfigurationError` instead of spinning
        forever.
        """
        for _ in self.stream(epochs):
            pass
        return {handle.id: handle.results
                for handle in self.deployment.sessions()}

    def _check_bounded(self, epochs: int | None) -> None:
        if (epochs is not None or self.max_epochs is not None
                or self.max_events is not None):
            return
        if not self.stop_when_idle:
            raise ConfigurationError(
                "unbounded drive: give stream()/run() an epoch count, "
                "set max_epochs, or enable stop_when_idle")
        if any(not s.is_historic for s in self.deployment.active_sessions()):
            raise ConfigurationError(
                "unbounded drive: continuous monitoring sessions never "
                "go idle — give stream()/run() an epoch count or set "
                "max_epochs")

    def __repr__(self) -> str:
        return (f"EpochDriver(epoch {self.epoch}, "
                f"driven {self.epochs_driven}, "
                f"{len(self.interventions)} interventions)")
