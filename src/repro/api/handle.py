"""Session handles: the user-facing, read-only view of a query.

A :class:`SessionHandle` is what :meth:`repro.api.Deployment.submit`
returns: a stable facade over the engine-room
:class:`~repro.server.session.QuerySession` that exposes *state*
(:class:`SessionState`), *results* (typed accessors plus a
:meth:`~SessionHandle.watch` iterator), and *push subscriptions*
(:meth:`~SessionHandle.on_result` / :meth:`~SessionHandle.on_recovery`)
— so callers react to answers and churn recoveries as they happen
instead of polling the registry.

Handles never mutate execution: stepping belongs to
:class:`~repro.api.EpochDriver`, cancellation to
:meth:`~repro.api.Deployment.cancel`.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Callable, Iterator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.results import EpochResult
    from ..core.tja import TjaResult
    from ..core.tput import TputResult
    from ..gui.stats import RecoveryLog, RecoveryRecord, SystemPanel
    from ..network.stats import NetworkStats
    from ..query.plan import Algorithm, LogicalPlan
    from ..server.session import QuerySession
    from .driver import EpochDriver


class SessionState(enum.Enum):
    """Lifecycle of a submitted query session."""

    #: Registered but never stepped by a driver yet.
    PENDING = "pending"
    #: Stepped at least once and still riding the shared clock.
    RUNNING = "running"
    #: Produced its one-shot answer (historic sessions only).
    FINISHED = "finished"
    #: Deactivated before finishing; results remain readable.
    CANCELLED = "cancelled"

    @property
    def terminal(self) -> bool:
        """True once the session will never produce another result."""
        return self in (SessionState.FINISHED, SessionState.CANCELLED)


class SessionHandle:
    """Read-only facade over one registered query session."""

    def __init__(self, session: "QuerySession"):
        self._session = session

    # ------------------------------------------------------------------
    # Identity and plan
    # ------------------------------------------------------------------

    @property
    def id(self) -> int:
        """The session's registry id (stable for the deployment's life)."""
        return self._session.session_id

    @property
    def query_text(self) -> str:
        """The submitted SQL-like query text."""
        return self._session.query_text

    @property
    def plan(self) -> "LogicalPlan":
        """The compiled logical plan the session executes."""
        return self._session.plan

    @property
    def algorithm(self) -> "Algorithm":
        """The routed in-network algorithm."""
        return self._session.plan.algorithm

    @property
    def is_historic(self) -> bool:
        """True for one-shot TJA/TPUT sessions."""
        return self._session.is_historic

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------

    @property
    def state(self) -> SessionState:
        """The session's lifecycle state, derived live."""
        session = self._session
        if session.finished:
            return SessionState.FINISHED
        if not session.active:
            return SessionState.CANCELLED
        if session.steps_taken == 0:
            return SessionState.PENDING
        return SessionState.RUNNING

    # ------------------------------------------------------------------
    # Typed accessors
    # ------------------------------------------------------------------

    @property
    def results(self) -> "tuple[EpochResult, ...]":
        """Every epoch result produced so far (read-only snapshot)."""
        return tuple(self._session.results)

    @property
    def last_result(self) -> "EpochResult | None":
        """The most recent epoch result, if any."""
        return self._session.results[-1] if self._session.results else None

    @property
    def historic_result(self) -> "TjaResult | TputResult | None":
        """The one-shot answer of a historic session (None until it
        finishes; always None for epoch-mode sessions)."""
        return self._session.historic_result

    @property
    def stats(self) -> "NetworkStats":
        """This session's share of the deployment's traffic."""
        return self._session.stats

    @property
    def recovery(self) -> "RecoveryLog":
        """The session's churn-recovery log (one record per absorbed
        event batch)."""
        return self._session.recovery

    @property
    def system_panel(self) -> "SystemPanel | None":
        """The session's System Panel, when it runs a shadow baseline."""
        return self._session.system_panel

    # ------------------------------------------------------------------
    # Push subscriptions
    # ------------------------------------------------------------------

    def on_result(self, callback: Callable[[object], None]) -> None:
        """Call ``callback(result)`` for every result this session
        produces from now on — each :class:`EpochResult`, plus the
        one-shot answer of a historic session."""
        self._session.add_result_callback(callback)

    def on_recovery(self, callback: "Callable[[RecoveryRecord], None]"
                    ) -> None:
        """Call ``callback(record)`` for every churn-recovery pass.

        Ordering guarantee: on an epoch that absorbs churn, the
        recovery callback fires *before* that epoch's result callback
        (recovery runs pre-acquisition)."""
        self._session.add_recovery_callback(callback)

    # ------------------------------------------------------------------
    # Watching
    # ------------------------------------------------------------------

    def watch(self, driver: "EpochDriver | None" = None,
              epochs: int | None = None) -> Iterator[object]:
        """Iterate this session's results as they arrive.

        Already-produced results the iterator has not seen yet are
        yielded first. Given a ``driver``, the iterator then keeps
        stepping the shared clock (driving *every* active session, as
        the driver always does) until this session reaches a terminal
        state or ``epochs`` further epochs have been driven. Without a
        driver it simply drains and returns — the synchronous
        equivalent of a non-blocking poll.

        Historic sessions yield their one-shot answer as the final
        item.

        Like :meth:`EpochDriver.run`, an unbounded watch of a session
        that never terminates by itself (a continuous monitoring query,
        no ``epochs``, no driver ``max_epochs``) raises
        :class:`~repro.errors.ConfigurationError` — at the call site,
        not at the first ``next()`` — instead of spinning forever.
        """
        from ..errors import ConfigurationError

        if (driver is not None
                and driver.deployment.network is not self._session.network):
            raise ConfigurationError(
                "watch() was given a driver for a different deployment — "
                "it would step that deployment's sessions while this one "
                "never advances")
        if (driver is not None and epochs is None
                and driver.max_epochs is None
                and not self._session.is_historic
                and not self.state.terminal):
            raise ConfigurationError(
                "unbounded watch: a continuous monitoring session never "
                "finishes — pass epochs= or set the driver's max_epochs")
        return self._watch(driver, epochs)

    def _watch(self, driver: "EpochDriver | None",
               epochs: int | None) -> Iterator[object]:
        session = self._session
        seen = 0
        historic_seen = False
        stepped = 0
        while True:
            while seen < len(session.results):
                yield session.results[seen]
                seen += 1
            if session.historic_result is not None and not historic_seen:
                historic_seen = True
                yield session.historic_result
            if self.state.terminal or driver is None:
                return
            if epochs is not None and stepped >= epochs:
                return
            if driver.max_epochs is not None \
                    and driver.epochs_driven >= driver.max_epochs:
                return
            driver.step()
            stepped += 1

    def __repr__(self) -> str:
        return (f"SessionHandle({self.id}, {self.algorithm.value}, "
                f"{self.state.value}, results={len(self._session.results)})")
