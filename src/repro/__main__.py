"""``python -m repro`` — forwards to the CLI.

The guard matters: ``runpy`` executes this module as ``__main__`` so
the CLI still runs, but importing ``repro.__main__`` (pickling, doc
tools, the import-hygiene audit) stays side-effect free.
"""

import sys

from .cli import main

if __name__ == "__main__":
    sys.exit(main())
