"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``demo figure1`` / ``demo conference`` — the paper's two canned
  deployments, with answers and traffic printed;
* ``run`` — execute a query over a scenario configuration file;
* ``scenario-init`` — write a template scenario file to edit;
* ``savings`` — a quick MINT-vs-TAG savings table for a grid
  deployment (the System Panel, in one shot).
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from . import __version__
from .errors import KSpotError
from .gui.render import render_table
from .gui.scenario import ScenarioConfig, load_scenario, save_scenario
from .query.plan import Algorithm, QueryClass
from .sensing.generators import RoomField
from .server import KSpotServer


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="KSpot: in-network top-k query processing (ICDE 2009 "
                    "reproduction)")
    parser.add_argument("--version", action="version",
                        version=f"kspot-repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="run a canned demo deployment")
    demo.add_argument("name", choices=("figure1", "conference"))
    demo.add_argument("--epochs", type=int, default=20)

    run = sub.add_parser("run", help="run a query over a scenario file")
    run.add_argument("scenario", help="path to a scenario JSON file")
    run.add_argument("query", help="the SQL-like query text")
    run.add_argument("--epochs", type=int, default=10)
    run.add_argument("--seed", type=int, default=0,
                     help="seed for the synthetic field")
    run.add_argument("--algorithm",
                     choices=[a.value for a in Algorithm], default=None,
                     help="override the routed algorithm")

    init = sub.add_parser("scenario-init",
                          help="write a template scenario file")
    init.add_argument("path")

    savings = sub.add_parser("savings",
                             help="MINT vs TAG savings on a grid")
    savings.add_argument("--side", type=int, default=8)
    savings.add_argument("--rooms", type=int, default=4,
                         help="rooms per axis")
    savings.add_argument("--k", type=int, default=1)
    savings.add_argument("--epochs", type=int, default=30)
    savings.add_argument("--seed", type=int, default=0)
    return parser


def _print_results(results, stats) -> None:
    rows = [
        [result.epoch,
         ", ".join(f"{item.key}={item.score:.2f}" for item in result.items),
         "yes" if result.exact else "NO",
         result.probed]
        for result in results
    ]
    print(render_table(["epoch", "top-k", "exact", "probes"], rows))
    print()
    summary = stats.summary()
    print(f"traffic: {summary['messages']} messages, "
          f"{summary['packets']} packets, "
          f"{summary['payload_bytes']} payload bytes, "
          f"{summary['radio_joules'] * 1e3:.2f} mJ radio")


def _cmd_demo(args) -> int:
    from .scenarios import conference_scenario, figure1_scenario

    if args.name == "figure1":
        scenario = figure1_scenario()
        query = ("SELECT TOP 1 roomid, AVERAGE(sound) FROM sensors "
                 "GROUP BY roomid EPOCH DURATION 1 min")
    else:
        scenario = conference_scenario()
        query = ("SELECT TOP 3 roomid, AVERAGE(sound) FROM sensors "
                 "GROUP BY roomid EPOCH DURATION 1 min")
    server = KSpotServer(scenario.network, group_of=scenario.group_of)
    plan = server.submit(query)
    print(f"query:  {query}")
    print(f"routed: {plan.algorithm.value} ({plan.query_class.value})")
    results = server.run(args.epochs)
    _print_results(results[-10:], scenario.network.stats)
    return 0


def _cmd_run(args) -> int:
    config = load_scenario(args.scenario)
    field = RoomField(config.cluster_of or
                      {n: n for n in config.positions},
                      seed=args.seed)
    network = config.deploy(field)
    server = KSpotServer(network, group_of=config.cluster_of or None)
    algorithm = Algorithm(args.algorithm) if args.algorithm else None
    plan = server.submit(args.query, algorithm=algorithm)
    print(f"scenario: {config.name} ({len(config.positions)} sensors)")
    print(f"routed:   {plan.algorithm.value} ({plan.query_class.value})")
    if plan.query_class is QueryClass.HISTORIC_VERTICAL:
        result = server.run_historic()
        rows = [[rank, item.key, item.score]
                for rank, item in enumerate(result.items, start=1)]
        print(render_table(["rank", "epoch", "score"], rows))
        print(f"candidates: {result.candidates}, "
              f"clean-up rounds: {result.cleanup_rounds}")
    else:
        results = server.run(args.epochs)
        _print_results(results, network.stats)
    return 0


def _cmd_scenario_init(args) -> int:
    template = ScenarioConfig(
        name="my-deployment",
        map_width=100.0,
        map_height=60.0,
        radio_range=35.0,
        sink_position=(50.0, 30.0),
        positions={1: (15.0, 15.0), 2: (25.0, 15.0),
                   3: (70.0, 15.0), 4: (80.0, 15.0),
                   5: (45.0, 45.0), 6: (55.0, 45.0)},
        cluster_of={1: "RoomA", 2: "RoomA", 3: "RoomB", 4: "RoomB",
                    5: "Hallway", 6: "Hallway"},
    )
    save_scenario(template, args.path)
    print(f"wrote template scenario to {args.path}")
    print("edit positions/clusters, then:")
    print(f"  python -m repro run {args.path} \"SELECT TOP 1 roomid, "
          f"AVERAGE(sound) FROM sensors GROUP BY roomid\"")
    return 0


def _cmd_savings(args) -> int:
    from .core import Mint, MintConfig, Tag
    from .core.aggregates import make_aggregate
    from .scenarios import grid_rooms_scenario

    rows = []
    for name in ("mint", "tag"):
        scenario = grid_rooms_scenario(side=args.side,
                                       rooms_per_axis=args.rooms,
                                       seed=args.seed)
        aggregate = make_aggregate("AVG", 0, 100)
        if name == "mint":
            algorithm = Mint(scenario.network, aggregate, args.k,
                             scenario.group_of,
                             config=MintConfig(slack=min(args.k, 4)))
        else:
            algorithm = Tag(scenario.network, aggregate, args.k,
                            scenario.group_of)
        for _ in range(args.epochs):
            algorithm.run_epoch()
        stats = scenario.network.stats
        rows.append([name, stats.messages, stats.payload_bytes,
                     stats.radio_joules * 1e3])
    saving = 100.0 * (1 - rows[0][2] / rows[1][2])
    print(render_table(["algorithm", "messages", "bytes", "radio mJ"],
                       rows))
    print(f"\nMINT saves {saving:.1f}% of TAG's bytes "
          f"({args.side * args.side} sensors, "
          f"{args.rooms * args.rooms} rooms, K={args.k}, "
          f"{args.epochs} epochs)")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "demo": _cmd_demo,
        "run": _cmd_run,
        "scenario-init": _cmd_scenario_init,
        "savings": _cmd_savings,
    }
    try:
        return handlers[args.command](args)
    except KSpotError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
