"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``demo figure1`` / ``demo conference`` — the paper's two canned
  deployments, with answers and traffic printed;
* ``run`` — execute a query over a scenario configuration file;
* ``workload`` — run a file of mixed queries (MINT / TJA / TPUT /
  FILA classes) *concurrently* over one deployment on the shared
  epoch clock, with per-session and aggregate savings; several files
  are independent deployments, sharded across ``--jobs`` worker
  processes with fleet-wide savings merged across them;
* ``sweep`` — a parameter grid (fleet size × churn preset × query
  mix) of independent deployments, sharded across ``--jobs`` workers
  with deterministic per-cell seed derivation (results are identical
  for any worker count);
* ``scenario-init`` — write a template scenario file to edit;
* ``savings`` — a quick MINT-vs-TAG savings table for a grid
  deployment (the System Panel, in one shot).

``run`` and ``workload`` speak two output formats: the human tables
(default) and ``--format json`` — machine-readable per-session
results, traffic stats and recovery summaries for scripting.

Everything drives the layered :mod:`repro.api` facade: a
:class:`~repro.api.Deployment` owns the network and sessions, an
:class:`~repro.api.EpochDriver` (with a
:class:`~repro.api.ChurnIntervention` under ``--churn``) advances the
shared clock, and :class:`~repro.api.SessionHandle` accessors feed the
reports.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass
from typing import Sequence

from . import __version__
from .api import ChurnIntervention, Deployment, EpochDriver, SessionHandle
from .errors import KSpotError
from .gui.render import render_table
from .gui.scenario import ScenarioConfig, load_scenario, save_scenario
from .query.plan import Algorithm, QueryClass
from .sensing.generators import RoomField


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="KSpot: in-network top-k query processing (ICDE 2009 "
                    "reproduction)")
    parser.add_argument("--version", action="version",
                        version=f"kspot-repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="run a canned demo deployment")
    demo.add_argument("name", choices=("figure1", "conference"))
    demo.add_argument("--epochs", type=int, default=20)

    run = sub.add_parser("run", help="run a query over a scenario file")
    run.add_argument("scenario", help="path to a scenario JSON file")
    run.add_argument("query", help="the SQL-like query text")
    run.add_argument("--epochs", type=int, default=10)
    run.add_argument("--seed", type=int, default=0,
                     help="seed for the synthetic field")
    run.add_argument("--algorithm",
                     choices=[a.value for a in Algorithm], default=None,
                     help="override the routed algorithm")
    _add_format_argument(run)
    _add_churn_arguments(run)
    _add_event_core_arguments(run)

    workload = sub.add_parser(
        "workload",
        help="run one or more query files, each concurrently over its "
             "own deployment")
    workload.add_argument(
        "files", nargs="+", metavar="file",
        help="query file(s): one query per line; '#' comments and "
             "blank lines ignored; an 'algorithm:' prefix (e.g. "
             "'fila: SELECT ...') overrides the routing; several "
             "files run as independent deployments across --jobs "
             "worker processes")
    workload.add_argument("--scenario", default=None,
                          help="scenario JSON file (default: a grid "
                               "deployment)")
    workload.add_argument("--epochs", type=int, default=20)
    workload.add_argument("--side", type=int, default=6,
                          help="grid side when no scenario file is given")
    workload.add_argument("--rooms", type=int, default=3,
                          help="rooms per axis for the default grid")
    workload.add_argument("--seed", type=int, default=0)
    workload.add_argument("--baseline", action="store_true",
                          help="run a TAG shadow per top-k session and "
                               "report per-session + aggregate savings")
    _add_format_argument(workload)
    _add_churn_arguments(workload)
    _add_jobs_argument(workload)
    _add_event_core_arguments(workload)

    sweep = sub.add_parser(
        "sweep",
        help="run a parameter grid (fleet size x churn preset x query "
             "mix) of independent deployments across worker processes")
    sweep.add_argument("--sizes", default="25,100",
                       help="comma-separated fleet sizes")
    sweep.add_argument("--churn", default="none",
                       help="comma-separated churn presets "
                            "('none', 'calm', 'lively', 'harsh')")
    sweep.add_argument("--mixes", default="e11",
                       help="comma-separated query mixes "
                            "(see repro.parallel.QUERY_MIXES)")
    sweep.add_argument("--epochs", type=int, default=10)
    sweep.add_argument("--seed", type=int, default=11,
                       help="root seed; every cell derives its own "
                            "streams from it and the cell identity")
    sweep.add_argument("--baseline", action="store_true",
                       help="shadow each top-k session with TAG and "
                            "report merged fleet-wide savings")
    sweep.add_argument("--output", default=None,
                       help="also write the merged JSON report here")
    _add_format_argument(sweep)
    _add_jobs_argument(sweep)

    init = sub.add_parser("scenario-init",
                          help="write a template scenario file")
    init.add_argument("path")

    lint = sub.add_parser(
        "lint",
        help="statically enforce the architecture book (docs/LINT.md): "
             "RNG discipline, the layer DAG, switch-and-prove pairing "
             "and friends; exit 0 clean, 1 findings, 2 on error")
    lint.add_argument("paths", nargs="*", metavar="path",
                      help="files or directories to lint "
                           "(default: src/repro)")
    lint.add_argument("--list-rules", action="store_true",
                      help="print the rule catalog and exit")
    lint.add_argument("--output", default=None,
                      help="also write the report to this file")
    _add_format_argument(lint)

    perf = sub.add_parser(
        "perf",
        help="measure epochs/sec, messages/sec and RSS across fleet "
             "sizes; writes a schema-versioned BENCH_perf.json")
    perf.add_argument("--sizes", default=None,
                      help="comma-separated fleet sizes "
                           "(default: 25,100,400,1000)")
    perf.add_argument("--repeats", type=int, default=3,
                      help="repetitions per configuration (best-of-R, "
                           "interleaved)")
    perf.add_argument("--seed", type=int, default=11)
    perf.add_argument("--quick", action="store_true",
                      help="CI smoke: N <= 100 only, fewer repeats")
    perf.add_argument("--compare-reference", action="store_true",
                      help="also time the unoptimized reference path "
                           "and report the machine-normalized speedup")
    perf.add_argument("--output", default="BENCH_perf.json",
                      help="where to write the JSON report")
    _add_churn_arguments(perf)
    _add_jobs_argument(perf)

    savings = sub.add_parser("savings",
                             help="MINT vs TAG savings on a grid")
    savings.add_argument("--side", type=int, default=8)
    savings.add_argument("--rooms", type=int, default=4,
                         help="rooms per axis")
    savings.add_argument("--k", type=int, default=1)
    savings.add_argument("--epochs", type=int, default=30)
    savings.add_argument("--seed", type=int, default=0)
    return parser


def _add_format_argument(parser) -> None:
    parser.add_argument("--format", choices=("table", "json"),
                        default="table",
                        help="output format: human tables (default) or "
                             "machine-readable JSON")


def _add_jobs_argument(parser) -> None:
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes to shard independent "
                             "deployments across (default 1: in-"
                             "process; results are identical for any "
                             "value)")


def _add_event_core_arguments(parser) -> None:
    parser.add_argument("--event-core", action="store_true",
                        help="ship messages through the discrete-event "
                             "queue core (repro.network.eventsim) "
                             "instead of inline handler calls; at zero "
                             "latency this is proven byte-identical to "
                             "the inline path")
    parser.add_argument("--latency", type=float, default=0.0,
                        metavar="SECONDS",
                        help="per-link propagation latency in seconds; "
                             "> 0 runs the event core in timestamped "
                             "delay mode (implies --event-core)")


def _event_core_context(event_core: bool, latency: float, *networks):
    """The eventsim switch context for ``--event-core``/``--latency``
    (a no-op context when neither is given). A positive latency also
    swaps each network's radio for the delayed variant — validated by
    :class:`~repro.network.link.RadioModel`, so a negative or
    non-finite value surfaces as a configuration error."""
    from contextlib import nullcontext
    from dataclasses import replace

    from .network import eventsim

    if latency:
        for network in networks:
            network.radio = replace(network.radio,
                                    propagation_latency_s=latency)
    if event_core or latency > 0:
        return eventsim.event_core()
    return nullcontext()


def _add_churn_arguments(parser) -> None:
    from .scenarios import CHURN_PRESETS

    parser.add_argument("--churn", choices=sorted(CHURN_PRESETS),
                        default=None,
                        help="subject the deployment to seeded Poisson "
                             "node churn (deaths + births); live "
                             "sessions recover and keep answering")
    parser.add_argument("--churn-seed", type=int, default=0,
                        help="seed for the churn process")


def _churn_for(churn: str | None, churn_seed: int, network, attribute,
               field, group_of, epochs: int) -> ChurnIntervention | None:
    """A :class:`ChurnIntervention` from explicit parameters, or None
    (shared by the inline commands and the picklable shard workers)."""
    if not churn:
        return None
    from .scenarios import preset_churn
    from .sensing.board import SensorBoard

    schedule = preset_churn(
        network.topology, epochs, preset=churn, seed=churn_seed,
        group_for=(group_of or {}).get, field=field)
    return ChurnIntervention(
        schedule, board_for=lambda _nid: SensorBoard({attribute: field}))


def _make_churn(args, network, attribute, field, group_of,
                epochs=None) -> ChurnIntervention | None:
    """A :class:`ChurnIntervention` for ``--churn``, or None.

    ``epochs`` is the horizon the run will actually drive (historic
    queries run their window length, not ``--epochs``).
    """
    return _churn_for(getattr(args, "churn", None),
                      getattr(args, "churn_seed", 0),
                      network, attribute, field, group_of,
                      epochs if epochs is not None else args.epochs)


# ----------------------------------------------------------------------
# Reporting (tables + JSON)
# ----------------------------------------------------------------------


def _churn_summary(network, deployment) -> dict:
    """Fleet + per-session churn/recovery accounting, JSON-ready."""
    alive = len(network.alive_sensor_ids())
    total = len(network.nodes)
    recovery = network.stats.by_phase.get("recovery")
    return {
        "dead": total - alive,
        "alive": alive,
        "deployed": total,
        "repair_traffic": None if recovery is None else {
            "messages": recovery.messages,
            "payload_bytes": recovery.payload_bytes,
        },
        "sessions": {
            handle.id: handle.recovery.summary()
            for handle in deployment.sessions()
            if handle.recovery.records
        },
    }


def _print_churn_summary(summary: dict) -> None:
    line = (f"churn: {summary['dead']} dead, {summary['alive']} alive of "
            f"{summary['deployed']} ever deployed")
    repair = summary["repair_traffic"]
    if repair is not None:
        line += (f"; tree repair traffic {repair['messages']} messages / "
                 f"{repair['payload_bytes']} bytes")
    print(line)
    for sid, log in sorted(summary["sessions"].items()):
        print(f"  session {sid}: recovered from {log['failures']} "
              f"failures + {log['joins']} joins, re-primed "
              f"{log['reprimed']} node states")


def _items_json(items) -> list[dict]:
    return [{"key": item.key, "score": item.score} for item in items]


def _session_json(handle: SessionHandle) -> dict:
    """One session's machine-readable report: identity, state, answers,
    traffic share, recovery log, and savings when a panel runs."""
    data = {
        "id": handle.id,
        "query": handle.query_text,
        "algorithm": handle.algorithm.value,
        "query_class": handle.plan.query_class.value,
        "state": handle.state.value,
        "stats": handle.stats.summary(),
        "recovery": handle.recovery.summary(),
    }
    if handle.is_historic:
        result = handle.historic_result
        data["historic_result"] = None if result is None else {
            "items": _items_json(result.items),
            "candidates": getattr(result, "candidates", None),
            "cleanup_rounds": getattr(result, "cleanup_rounds", None),
        }
    else:
        data["results"] = [
            {"epoch": r.epoch, "exact": r.exact, "probed": r.probed,
             "items": _items_json(r.items),
             "certification": (None if r.certification is None
                               else r.certification.as_dict())}
            for r in handle.results
        ]
    panel = handle.system_panel
    if panel is not None and panel.samples:
        data["savings"] = panel.cumulative.as_dict()
    return data


def _deployment_json(network) -> dict:
    samples = sum(network.node(n).samples_taken
                  for n in network.tree.sensor_ids)
    summary = network.stats.summary()
    summary["epoch"] = network.epoch
    summary["sensor_samples"] = samples
    return summary


def _print_results(results, stats) -> None:
    rows = [
        [result.epoch,
         ", ".join(f"{item.key}={item.score:.2f}" for item in result.items),
         "yes" if result.exact else "NO",
         result.probed]
        for result in results
    ]
    print(render_table(["epoch", "top-k", "exact", "probes"], rows))
    print()
    summary = stats.summary()
    print(f"traffic: {summary['messages']} messages, "
          f"{summary['packets']} packets, "
          f"{summary['payload_bytes']} payload bytes, "
          f"{summary['radio_joules'] * 1e3:.2f} mJ radio")


# ----------------------------------------------------------------------
# Commands
# ----------------------------------------------------------------------


def _cmd_demo(args) -> int:
    from .scenarios import conference_scenario, figure1_scenario

    if args.name == "figure1":
        scenario = figure1_scenario()
        query = ("SELECT TOP 1 roomid, AVERAGE(sound) FROM sensors "
                 "GROUP BY roomid EPOCH DURATION 1 min")
    else:
        scenario = conference_scenario()
        query = ("SELECT TOP 3 roomid, AVERAGE(sound) FROM sensors "
                 "GROUP BY roomid EPOCH DURATION 1 min")
    deployment = scenario.deployment()
    handle = deployment.submit(query)
    print(f"query:  {query}")
    print(f"routed: {handle.algorithm.value} "
          f"({handle.plan.query_class.value})")
    EpochDriver(deployment).run(args.epochs)
    _print_results(handle.results[-10:], scenario.network.stats)
    return 0


def _deploy_from_config(config, seed: int):
    """(network, field) for a scenario file over a seeded room field."""
    field = RoomField(config.cluster_of or
                      {n: n for n in config.positions},
                      seed=seed)
    return config.deploy(field), field


def _cmd_run(args) -> int:
    config = load_scenario(args.scenario)
    network, field = _deploy_from_config(config, args.seed)
    deployment = Deployment(network, group_of=config.cluster_of or None)
    algorithm = Algorithm(args.algorithm) if args.algorithm else None
    handle = deployment.submit(args.query, algorithm=algorithm)
    plan = handle.plan
    # Historic queries run their window length, not --epochs: the
    # churn schedule must cover the horizon actually driven.
    historic = plan.query_class is QueryClass.HISTORIC_VERTICAL
    horizon = (plan.window_epochs or args.epochs) if historic \
        else args.epochs
    churn = _make_churn(args, network, config.attribute, field,
                        config.cluster_of, epochs=horizon)
    driver = EpochDriver(deployment,
                         interventions=[churn] if churn else ())
    as_json = args.format == "json"
    if not as_json:
        print(f"scenario: {config.name} ({len(config.positions)} sensors)")
        print(f"routed:   {plan.algorithm.value} ({plan.query_class.value})")
    event_core = _event_core_context(args.event_core, args.latency,
                                     network)
    if historic:
        # Historic sessions finish by themselves; run() until idle.
        with event_core:
            driver.run()
        result = handle.historic_result
        if not as_json:
            rows = [[rank, item.key, item.score]
                    for rank, item in enumerate(result.items, start=1)]
            print(render_table(["rank", "epoch", "score"], rows))
            # TJA reports clean-up rounds; TPUT's protocol has none.
            cleanup = getattr(result, "cleanup_rounds", None)
            line = f"candidates: {result.candidates}"
            if cleanup is not None:
                line += f", clean-up rounds: {cleanup}"
            print(line)
    else:
        with event_core:
            driver.run(args.epochs)
        if not as_json:
            _print_results(handle.results, network.stats)
    churn_summary = (_churn_summary(network, deployment)
                     if churn is not None else None)
    if as_json:
        print(json.dumps({
            "scenario": {"name": config.name,
                         "sensors": len(config.positions)},
            "session": _session_json(handle),
            "deployment": _deployment_json(network),
            "churn": churn_summary,
        }, indent=2))
    elif churn_summary is not None:
        _print_churn_summary(churn_summary)
    return 0


def _parse_workload_line(line: str):
    """``(algorithm | None, query_text)`` for one workload file line."""
    head, sep, rest = line.partition(":")
    if sep and head.strip().lower() in {a.value for a in Algorithm}:
        return Algorithm(head.strip().lower()), rest.strip()
    return None, line


def _load_workload(path: str):
    """Parse a workload file into (algorithm, query) pairs."""
    entries = []
    try:
        with open(path, encoding="utf-8") as handle:
            lines = handle.readlines()
    except OSError as error:
        raise KSpotError(f"cannot read workload file: {error}") from None
    for raw in lines:
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        entries.append(_parse_workload_line(line))
    if not entries:
        raise KSpotError(f"workload file {path!r} contains no queries")
    return entries


def _workload_row(handle: SessionHandle):
    if handle.historic_result is not None:
        answer = ", ".join(f"{i.key}={i.score:.2f}"
                           for i in handle.historic_result.items[:3])
        epochs_run = "one-shot"
    elif handle.results:
        last = handle.results[-1]
        answer = ", ".join(f"{i.key}={i.score:.2f}" for i in last.items)
        epochs_run = len(handle.results)
    else:
        answer = "(still acquiring)"
        epochs_run = 0
    return [handle.id, handle.algorithm.value, epochs_run, answer,
            handle.stats.messages, handle.stats.payload_bytes]


@dataclass(frozen=True)
class _WorkloadSpec:
    """One workload file as an independent, picklable deployment spec
    (the ``workload`` shard worker's input)."""

    file: str
    scenario: str | None
    side: int
    rooms: int
    seed: int
    epochs: int
    baseline: bool
    churn: str | None
    churn_seed: int
    event_core: bool = False
    latency: float = 0.0


def _workload_shard(spec: _WorkloadSpec) -> dict:
    """Run one workload file over its own deployment (shard worker).

    Module-level and spec-driven — the spawn contract — returning the
    same JSON payload shape the single-file ``--format json`` mode
    prints, plus the file it came from.
    """
    from .gui.stats import SystemPanel
    from .scenarios import grid_rooms_scenario

    if spec.scenario:
        config = load_scenario(spec.scenario)
        network, field = _deploy_from_config(config, spec.seed)
        group_of = config.cluster_of or None
        attribute = config.attribute

        def factory():
            return _deploy_from_config(config, spec.seed)[0]
    else:
        scenario = grid_rooms_scenario(side=spec.side,
                                       rooms_per_axis=spec.rooms,
                                       seed=spec.seed)
        network = scenario.network
        group_of = scenario.group_of
        field = scenario.field
        attribute = scenario.attribute

        def factory():
            return grid_rooms_scenario(side=spec.side,
                                       rooms_per_axis=spec.rooms,
                                       seed=spec.seed).network
    deployment = Deployment(
        network, group_of=group_of,
        baseline_factory=factory if spec.baseline else None)
    rejected = []
    for algorithm, query in _load_workload(spec.file):
        try:
            deployment.submit(query, algorithm=algorithm)
        except KSpotError as error:
            rejected.append({"query": query, "error": str(error)})
    if not deployment.sessions():
        raise KSpotError(
            f"every workload query in {spec.file!r} was rejected")
    churn = _churn_for(spec.churn, spec.churn_seed, network, attribute,
                       field, group_of, spec.epochs)
    driver = EpochDriver(deployment,
                         interventions=[churn] if churn else ())
    # Workers re-assert the eventsim switch from the spec: the shard
    # pool only re-asserts the hot-path switch in spawned interpreters.
    with _event_core_context(spec.event_core, spec.latency, network):
        driver.run(spec.epochs)
    panels = [handle.system_panel for handle in deployment.sessions()
              if handle.system_panel is not None
              and handle.system_panel.samples]
    aggregate = SystemPanel.aggregate(panels) if panels else None
    return {
        "file": spec.file,
        "sessions": [_session_json(handle)
                     for handle in deployment.sessions()],
        "rejected": rejected,
        "deployment": _deployment_json(network),
        "churn": (_churn_summary(network, deployment)
                  if churn is not None else None),
        "aggregate_savings": (aggregate.as_dict()
                              if aggregate is not None else None),
    }


def _print_workload_shard(payload: dict) -> None:
    """The compact per-file report of a sharded workload run."""
    print(f"== {payload['file']} ==")
    rows = []
    for session in payload["sessions"]:
        if session.get("historic_result") is not None:
            items = session["historic_result"]["items"][:3]
            epochs_run = "one-shot"
        else:
            results = session.get("results") or []
            items = results[-1]["items"] if results else []
            epochs_run = len(results)
        answer = ", ".join(f"{i['key']}={i['score']:.2f}" for i in items)
        rows.append([session["id"], session["algorithm"], epochs_run,
                     answer, session["stats"]["messages"],
                     session["stats"]["payload_bytes"]])
    print(render_table(
        ["session", "algorithm", "epochs", "latest answer",
         "messages", "bytes"], rows))
    summary = payload["deployment"]
    print(f"deployment: epoch {summary['epoch']}, "
          f"{summary['sensor_samples']} sensor samples, "
          f"{summary['messages']} messages, "
          f"{summary['payload_bytes']} payload bytes"
          + (f" ({len(payload['rejected'])} queries rejected)"
             if payload["rejected"] else ""))
    if payload["churn"] is not None:
        _print_churn_summary(payload["churn"])
    print()


def _cmd_workload_sharded(args) -> int:
    """Several workload files: independent deployments across workers."""
    from .gui.stats import RecordedPanel, SystemPanel
    from .parallel import run_sharded, shard_errors

    specs = [
        _WorkloadSpec(file=path, scenario=args.scenario, side=args.side,
                      rooms=args.rooms, seed=args.seed,
                      epochs=args.epochs, baseline=args.baseline,
                      churn=args.churn, churn_seed=args.churn_seed,
                      event_core=args.event_core, latency=args.latency)
        for path in args.files
    ]
    results = run_sharded(_workload_shard, specs, jobs=args.jobs,
                          keys=list(args.files))
    errors = shard_errors(results)
    payloads = [result.payload for result in results if result.ok]
    panels = [
        RecordedPanel.from_dicts([session["savings"]])
        for payload in payloads
        for session in payload["sessions"]
        if session.get("savings")
    ]
    aggregate = SystemPanel.aggregate(panels) if panels else None
    if args.format == "json":
        print(json.dumps({
            "shards": payloads,
            "aggregate_savings": (aggregate.as_dict()
                                  if aggregate is not None else None),
            "shard_errors": errors,
        }, indent=2))
    else:
        for payload in payloads:
            _print_workload_shard(payload)
        if aggregate is not None:
            print(f"aggregate savings vs per-query TAG shadows: "
                  f"{aggregate.message_saving_pct:.1f}% messages, "
                  f"{aggregate.byte_saving_pct:.1f}% bytes, "
                  f"{aggregate.energy_saving_pct:.1f}% radio energy")
    for entry in errors:
        print(f"shard failed: {entry['key']}\n{entry['error']}",
              file=sys.stderr)
    return 2 if errors else 0


def _cmd_workload(args) -> int:
    if len(args.files) > 1:
        return _cmd_workload_sharded(args)
    from .gui.stats import SystemPanel
    from .scenarios import grid_rooms_scenario

    if args.scenario:
        config = load_scenario(args.scenario)

        def deploy():
            return _deploy_from_config(config, args.seed)[0]

        network, field = _deploy_from_config(config, args.seed)
        group_of = config.cluster_of or None
        attribute = config.attribute
        factory = deploy
    else:
        def deploy():
            return grid_rooms_scenario(side=args.side,
                                       rooms_per_axis=args.rooms,
                                       seed=args.seed)

        scenario = deploy()
        network = scenario.network
        group_of = scenario.group_of
        field = scenario.field
        attribute = scenario.attribute
        factory = lambda: deploy().network  # noqa: E731

    as_json = args.format == "json"
    deployment = Deployment(
        network, group_of=group_of,
        baseline_factory=factory if args.baseline else None)
    entries = _load_workload(args.files[0])
    rejected = []
    for algorithm, query in entries:
        try:
            handle = deployment.submit(query, algorithm=algorithm)
        except KSpotError as error:
            rejected.append({"query": query, "error": str(error)})
            print(f"rejected: {query!r} — {error}", file=sys.stderr)
            continue
        if not as_json:
            print(f"session {handle.id}: routed {handle.algorithm.value} "
                  f"({handle.plan.query_class.value}) — {query}")
    if not deployment.sessions():
        raise KSpotError("every workload query was rejected")
    if not as_json:
        print()

    churn = _make_churn(args, network, attribute, field, group_of)
    driver = EpochDriver(deployment,
                         interventions=[churn] if churn else ())
    with _event_core_context(args.event_core, args.latency, network):
        driver.run(args.epochs)

    churn_summary = (_churn_summary(network, deployment)
                     if churn is not None else None)
    panels = [handle.system_panel for handle in deployment.sessions()
              if handle.system_panel is not None
              and handle.system_panel.samples]
    aggregate = SystemPanel.aggregate(panels) if panels else None

    if as_json:
        print(json.dumps({
            "sessions": [_session_json(handle)
                         for handle in deployment.sessions()],
            "rejected": rejected,
            "deployment": _deployment_json(network),
            "churn": churn_summary,
            "aggregate_savings": (aggregate.as_dict()
                                  if aggregate is not None else None),
        }, indent=2))
        return 0

    rows = [_workload_row(handle) for handle in deployment.sessions()]
    print(render_table(
        ["session", "algorithm", "epochs", "latest answer",
         "messages", "bytes"], rows))
    print()
    summary = _deployment_json(network)
    print(f"deployment: epoch {summary['epoch']}, "
          f"{summary['sensor_samples']} sensor samples, "
          f"{summary['messages']} messages, "
          f"{summary['payload_bytes']} payload bytes, "
          f"{summary['radio_joules'] * 1e3:.2f} mJ radio"
          + (f" ({len(rejected)} queries rejected)" if rejected else ""))
    if churn_summary is not None:
        _print_churn_summary(churn_summary)
    if aggregate is not None:
        print(f"aggregate savings vs per-query TAG shadows: "
              f"{aggregate.message_saving_pct:.1f}% messages, "
              f"{aggregate.byte_saving_pct:.1f}% bytes, "
              f"{aggregate.energy_saving_pct:.1f}% radio energy")
    return 0


def _cmd_sweep(args) -> int:
    from .errors import ConfigurationError
    from .parallel import run_sweep, sweep_grid

    try:
        sizes = tuple(int(part) for part in args.sizes.split(","))
    except ValueError:
        raise ConfigurationError(
            f"--sizes wants comma-separated integers, got "
            f"{args.sizes!r}") from None
    churns = tuple(part.strip() for part in args.churn.split(","))
    mixes = tuple(part.strip() for part in args.mixes.split(","))
    cells = sweep_grid(sizes, churns, mixes, epochs=args.epochs,
                       seed=args.seed, baseline=args.baseline)
    if args.format != "json":
        print(f"sweep: {len(cells)} cells "
              f"(sizes {list(sizes)} x churn {list(churns)} x mixes "
              f"{list(mixes)}), {args.epochs} epochs, "
              f"jobs {args.jobs}")
    merged = run_sweep(cells, jobs=args.jobs)
    if args.output:
        from pathlib import Path

        Path(args.output).write_text(
            json.dumps(merged, indent=2, sort_keys=True) + "\n",
            encoding="utf-8")
    if args.format == "json":
        print(json.dumps(merged, indent=2))
    else:
        rows = [
            [cell["cell"]["n_nodes"], cell["cell"]["churn"],
             cell["cell"]["mix"], len(cell["sessions"]),
             cell["deployment"]["messages"],
             cell["deployment"]["payload_bytes"],
             f"{cell['epochs_per_sec']:.1f}"]
            for cell in merged["cells"]
        ]
        print(render_table(
            ["N", "churn", "mix", "sessions", "messages", "bytes",
             "epochs/s"], rows))
        totals = merged["totals"]
        print(f"\ntotals: {totals['cells']} cells, "
              f"{totals['sessions']} sessions, "
              f"{totals['messages']} messages, "
              f"{totals['sensor_samples']} sensor samples")
        aggregate = merged["aggregate_savings"]
        if aggregate is not None:
            print(f"aggregate savings vs per-query TAG shadows: "
                  f"{aggregate['message_saving_pct']:.1f}% messages, "
                  f"{aggregate['byte_saving_pct']:.1f}% bytes, "
                  f"{aggregate['energy_saving_pct']:.1f}% radio energy")
        if args.output:
            print(f"wrote {args.output}")
    for entry in merged["shard_errors"]:
        print(f"shard failed: {entry['key']}\n{entry['error']}",
              file=sys.stderr)
    return 2 if merged["shard_errors"] else 0


def _cmd_scenario_init(args) -> int:
    template = ScenarioConfig(
        name="my-deployment",
        map_width=100.0,
        map_height=60.0,
        radio_range=35.0,
        sink_position=(50.0, 30.0),
        positions={1: (15.0, 15.0), 2: (25.0, 15.0),
                   3: (70.0, 15.0), 4: (80.0, 15.0),
                   5: (45.0, 45.0), 6: (55.0, 45.0)},
        cluster_of={1: "RoomA", 2: "RoomA", 3: "RoomB", 4: "RoomB",
                    5: "Hallway", 6: "Hallway"},
    )
    save_scenario(template, args.path)
    print(f"wrote template scenario to {args.path}")
    print("edit positions/clusters, then:")
    print(f"  python -m repro run {args.path} \"SELECT TOP 1 roomid, "
          f"AVERAGE(sound) FROM sensors GROUP BY roomid\"")
    return 0


def _cmd_lint(args) -> int:
    from .analysis import lint_paths, rule_catalog

    if args.list_rules:
        catalog = rule_catalog()
        if args.format == "json":
            print(json.dumps({"schema": "kspot-lint/1", "rules": catalog},
                             indent=2, sort_keys=True))
        else:
            width = max(len(rule["id"]) for rule in catalog)
            for rule in catalog:
                print(f"{rule['id']:<{width}}  {rule['summary']}")
        return 0

    report = lint_paths(args.paths or ["src/repro"])
    rendered = report.to_json() if args.format == "json" \
        else report.to_text()
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(rendered + "\n")
        if args.format == "json":
            # Keep stdout human-scannable when the JSON went to a file.
            print(report.to_text())
        else:
            print(rendered)
    else:
        print(rendered)
    return report.exit_code


def _cmd_perf(args) -> int:
    from .errors import ConfigurationError
    from .perf import FLEET_SIZES, run_perf

    if args.sizes:
        try:
            sizes = tuple(int(part) for part in args.sizes.split(","))
        except ValueError:
            raise ConfigurationError(
                f"--sizes wants comma-separated integers, got "
                f"{args.sizes!r}") from None
        if any(n < 1 for n in sizes):
            raise ConfigurationError("fleet sizes must be positive")
    else:
        sizes = FLEET_SIZES

    def progress(sample):
        line = (f"N={sample.n_nodes:>5}: "
                f"{sample.hot.epochs_per_sec:8.2f} epochs/s, "
                f"{sample.hot.messages_per_sec:10.0f} msgs/s, "
                f"rss {sample.peak_rss_bytes / 1e6:6.1f} MB")
        if sample.speedup is not None:
            line += (f"  ({sample.reference.epochs_per_sec:.2f} eps "
                     f"reference, {sample.speedup:.2f}x)")
        print(line)

    # Mirror run_perf's --quick adjustments so the banner states what
    # will actually run (default ladder trimmed, repeats clamped).
    from .perf import QUICK_SIZES

    shown_sizes = list(sizes)
    shown_repeats = args.repeats
    if args.quick:
        if tuple(sizes) == FLEET_SIZES:
            shown_sizes = list(QUICK_SIZES)
        shown_repeats = min(shown_repeats, 2)
    print(f"perf: e11 workload, sizes {shown_sizes}, "
          f"best of {shown_repeats}"
          + (f", churn={args.churn}" if args.churn else "")
          + (", vs reference path" if args.compare_reference else "")
          + (f", {args.jobs} workers" if args.jobs > 1 else ""))
    report = run_perf(
        sizes=sizes, repeats=args.repeats, seed=args.seed,
        churn=args.churn, churn_seed=args.churn_seed,
        compare_reference=args.compare_reference, quick=args.quick,
        progress=progress, jobs=args.jobs)
    if report.aggregate is not None:
        aggregate = report.aggregate
        line = (f"aggregate: {aggregate['workers']} workers x "
                f"N={aggregate['n_nodes']}: "
                f"{aggregate['epochs_per_sec']:8.2f} epochs/s "
                f"({aggregate['scaleout']:.2f}x scale-out)")
        print(line)
    path = report.write(args.output)
    print(f"wrote {path}")
    for entry in report.shard_errors:
        print(f"shard failed: {entry['key']}\n{entry['error']}",
              file=sys.stderr)
    return 2 if report.shard_errors else 0


def _cmd_savings(args) -> int:
    from .core import Mint, MintConfig, Tag
    from .core.aggregates import make_aggregate
    from .scenarios import grid_rooms_scenario

    rows = []
    for name in ("mint", "tag"):
        scenario = grid_rooms_scenario(side=args.side,
                                       rooms_per_axis=args.rooms,
                                       seed=args.seed)
        aggregate = make_aggregate("AVG", 0, 100)
        if name == "mint":
            algorithm = Mint(scenario.network, aggregate, args.k,
                             scenario.group_of,
                             config=MintConfig(slack=min(args.k, 4)))
        else:
            algorithm = Tag(scenario.network, aggregate, args.k,
                            scenario.group_of)
        for _ in range(args.epochs):
            algorithm.run_epoch()
        stats = scenario.network.stats
        rows.append([name, stats.messages, stats.payload_bytes,
                     stats.radio_joules * 1e3])
    saving = 100.0 * (1 - rows[0][2] / rows[1][2])
    print(render_table(["algorithm", "messages", "bytes", "radio mJ"],
                       rows))
    print(f"\nMINT saves {saving:.1f}% of TAG's bytes "
          f"({args.side * args.side} sensors, "
          f"{args.rooms * args.rooms} rooms, K={args.k}, "
          f"{args.epochs} epochs)")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "demo": _cmd_demo,
        "run": _cmd_run,
        "workload": _cmd_workload,
        "sweep": _cmd_sweep,
        "scenario-init": _cmd_scenario_init,
        "savings": _cmd_savings,
        "perf": _cmd_perf,
        "lint": _cmd_lint,
    }
    try:
        return handlers[args.command](args)
    except KSpotError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
