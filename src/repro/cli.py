"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``demo figure1`` / ``demo conference`` — the paper's two canned
  deployments, with answers and traffic printed;
* ``run`` — execute a query over a scenario configuration file;
* ``workload`` — run a file of mixed queries (MINT / TJA / TPUT /
  FILA classes) *concurrently* over one deployment on the shared
  epoch clock, with per-session and aggregate savings;
* ``scenario-init`` — write a template scenario file to edit;
* ``savings`` — a quick MINT-vs-TAG savings table for a grid
  deployment (the System Panel, in one shot).
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from . import __version__
from .errors import KSpotError
from .gui.render import render_table
from .gui.scenario import ScenarioConfig, load_scenario, save_scenario
from .query.plan import Algorithm, QueryClass
from .sensing.generators import RoomField
from .server import KSpotServer


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="KSpot: in-network top-k query processing (ICDE 2009 "
                    "reproduction)")
    parser.add_argument("--version", action="version",
                        version=f"kspot-repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="run a canned demo deployment")
    demo.add_argument("name", choices=("figure1", "conference"))
    demo.add_argument("--epochs", type=int, default=20)

    run = sub.add_parser("run", help="run a query over a scenario file")
    run.add_argument("scenario", help="path to a scenario JSON file")
    run.add_argument("query", help="the SQL-like query text")
    run.add_argument("--epochs", type=int, default=10)
    run.add_argument("--seed", type=int, default=0,
                     help="seed for the synthetic field")
    run.add_argument("--algorithm",
                     choices=[a.value for a in Algorithm], default=None,
                     help="override the routed algorithm")
    _add_churn_arguments(run)

    workload = sub.add_parser(
        "workload",
        help="run a file of queries concurrently over one deployment")
    workload.add_argument(
        "file",
        help="query file: one query per line; '#' comments and blank "
             "lines ignored; an 'algorithm:' prefix (e.g. 'fila: "
             "SELECT ...') overrides the routing")
    workload.add_argument("--scenario", default=None,
                          help="scenario JSON file (default: a grid "
                               "deployment)")
    workload.add_argument("--epochs", type=int, default=20)
    workload.add_argument("--side", type=int, default=6,
                          help="grid side when no scenario file is given")
    workload.add_argument("--rooms", type=int, default=3,
                          help="rooms per axis for the default grid")
    workload.add_argument("--seed", type=int, default=0)
    workload.add_argument("--baseline", action="store_true",
                          help="run a TAG shadow per top-k session and "
                               "report per-session + aggregate savings")
    _add_churn_arguments(workload)

    init = sub.add_parser("scenario-init",
                          help="write a template scenario file")
    init.add_argument("path")

    savings = sub.add_parser("savings",
                             help="MINT vs TAG savings on a grid")
    savings.add_argument("--side", type=int, default=8)
    savings.add_argument("--rooms", type=int, default=4,
                         help="rooms per axis")
    savings.add_argument("--k", type=int, default=1)
    savings.add_argument("--epochs", type=int, default=30)
    savings.add_argument("--seed", type=int, default=0)
    return parser


def _add_churn_arguments(parser) -> None:
    from .scenarios import CHURN_PRESETS

    parser.add_argument("--churn", choices=sorted(CHURN_PRESETS),
                        default=None,
                        help="subject the deployment to seeded Poisson "
                             "node churn (deaths + births); live "
                             "sessions recover and keep answering")
    parser.add_argument("--churn-seed", type=int, default=0,
                        help="seed for the churn process")


def _make_churn(args, network, attribute, field, group_of,
                epochs=None):
    """(schedule, board_for) for ``--churn``, or (None, None).

    ``epochs`` is the horizon the run will actually drive (historic
    queries run their window length, not ``--epochs``).
    """
    if not getattr(args, "churn", None):
        return None, None
    from .scenarios import preset_churn
    from .sensing.board import SensorBoard

    schedule = preset_churn(
        network.topology, epochs if epochs is not None else args.epochs,
        preset=args.churn, seed=args.churn_seed,
        group_for=(group_of or {}).get, field=field)
    return schedule, lambda _nid: SensorBoard({attribute: field})


def _print_churn_summary(network, server) -> None:
    """Fleet + per-session churn/recovery accounting."""
    alive = len(network.alive_sensor_ids())
    total = len(network.nodes)
    recovery = network.stats.by_phase.get("recovery")
    line = (f"churn: {total - alive} dead, {alive} alive of {total} "
            f"ever deployed")
    if recovery is not None:
        line += (f"; tree repair traffic {recovery.messages} messages / "
                 f"{recovery.payload_bytes} bytes")
    print(line)
    for sid in sorted(server.sessions):
        log = server.sessions[sid].recovery
        if log.records:
            print(f"  session {sid}: recovered from {log.failures} "
                  f"failures + {log.joins} joins, re-primed "
                  f"{log.reprimed} node states")


def _print_results(results, stats) -> None:
    rows = [
        [result.epoch,
         ", ".join(f"{item.key}={item.score:.2f}" for item in result.items),
         "yes" if result.exact else "NO",
         result.probed]
        for result in results
    ]
    print(render_table(["epoch", "top-k", "exact", "probes"], rows))
    print()
    summary = stats.summary()
    print(f"traffic: {summary['messages']} messages, "
          f"{summary['packets']} packets, "
          f"{summary['payload_bytes']} payload bytes, "
          f"{summary['radio_joules'] * 1e3:.2f} mJ radio")


def _cmd_demo(args) -> int:
    from .scenarios import conference_scenario, figure1_scenario

    if args.name == "figure1":
        scenario = figure1_scenario()
        query = ("SELECT TOP 1 roomid, AVERAGE(sound) FROM sensors "
                 "GROUP BY roomid EPOCH DURATION 1 min")
    else:
        scenario = conference_scenario()
        query = ("SELECT TOP 3 roomid, AVERAGE(sound) FROM sensors "
                 "GROUP BY roomid EPOCH DURATION 1 min")
    server = KSpotServer(scenario.network, group_of=scenario.group_of)
    plan = server.submit(query)
    print(f"query:  {query}")
    print(f"routed: {plan.algorithm.value} ({plan.query_class.value})")
    results = server.run(args.epochs)
    _print_results(results[-10:], scenario.network.stats)
    return 0


def _deploy_from_config(config, seed: int):
    """(network, field) for a scenario file over a seeded room field."""
    field = RoomField(config.cluster_of or
                      {n: n for n in config.positions},
                      seed=seed)
    return config.deploy(field), field


def _cmd_run(args) -> int:
    config = load_scenario(args.scenario)
    network, field = _deploy_from_config(config, args.seed)
    server = KSpotServer(network, group_of=config.cluster_of or None)
    algorithm = Algorithm(args.algorithm) if args.algorithm else None
    plan = server.submit(args.query, algorithm=algorithm)
    # Historic queries run their window length, not --epochs: the
    # churn schedule must cover the horizon actually driven.
    horizon = (plan.window_epochs or args.epochs
               if plan.query_class is QueryClass.HISTORIC_VERTICAL
               else args.epochs)
    schedule, board_for = _make_churn(args, network, config.attribute,
                                      field, config.cluster_of,
                                      epochs=horizon)
    print(f"scenario: {config.name} ({len(config.positions)} sensors)")
    print(f"routed:   {plan.algorithm.value} ({plan.query_class.value})")
    if plan.query_class is QueryClass.HISTORIC_VERTICAL:
        if schedule is not None:
            for _ in server.stream_all(horizon, churn=schedule,
                                       board_for=board_for):
                pass
        result = (server.current_session.historic_result
                  or server.run_historic())
        rows = [[rank, item.key, item.score]
                for rank, item in enumerate(result.items, start=1)]
        print(render_table(["rank", "epoch", "score"], rows))
        print(f"candidates: {result.candidates}, "
              f"clean-up rounds: {result.cleanup_rounds}")
    else:
        if schedule is not None:
            for _ in server.stream_all(args.epochs, churn=schedule,
                                       board_for=board_for):
                pass
            results = server.results
        else:
            results = server.run(args.epochs)
        _print_results(results, network.stats)
    if schedule is not None:
        _print_churn_summary(network, server)
    return 0


def _parse_workload_line(line: str):
    """``(algorithm | None, query_text)`` for one workload file line."""
    head, sep, rest = line.partition(":")
    if sep and head.strip().lower() in {a.value for a in Algorithm}:
        return Algorithm(head.strip().lower()), rest.strip()
    return None, line


def _load_workload(path: str):
    """Parse a workload file into (algorithm, query) pairs."""
    entries = []
    try:
        with open(path, encoding="utf-8") as handle:
            lines = handle.readlines()
    except OSError as error:
        raise KSpotError(f"cannot read workload file: {error}") from None
    for raw in lines:
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        entries.append(_parse_workload_line(line))
    if not entries:
        raise KSpotError(f"workload file {path!r} contains no queries")
    return entries


def _cmd_workload(args) -> int:
    from .gui.stats import SystemPanel
    from .scenarios import grid_rooms_scenario

    if args.scenario:
        config = load_scenario(args.scenario)

        def deploy():
            return _deploy_from_config(config, args.seed)[0]

        network, field = _deploy_from_config(config, args.seed)
        group_of = config.cluster_of or None
        attribute = config.attribute
        factory = deploy
    else:
        def deploy():
            return grid_rooms_scenario(side=args.side,
                                       rooms_per_axis=args.rooms,
                                       seed=args.seed)

        scenario = deploy()
        network = scenario.network
        group_of = scenario.group_of
        field = scenario.field
        attribute = scenario.attribute
        factory = lambda: deploy().network  # noqa: E731

    server = KSpotServer(network, group_of=group_of,
                         baseline_factory=factory if args.baseline else None)
    entries = _load_workload(args.file)
    rejected = 0
    for algorithm, query in entries:
        try:
            sid = server.submit_session(query, algorithm=algorithm)
        except KSpotError as error:
            rejected += 1
            print(f"rejected: {query!r} — {error}", file=sys.stderr)
            continue
        session = server.session(sid)
        print(f"session {sid}: routed {session.plan.algorithm.value} "
              f"({session.plan.query_class.value}) — {query}")
    if not server.sessions:
        raise KSpotError("every workload query was rejected")
    print()

    schedule, board_for = _make_churn(args, network, attribute, field,
                                      group_of)
    for _ in server.stream_all(args.epochs, churn=schedule,
                               board_for=board_for):
        pass

    rows = []
    for sid in sorted(server.sessions):
        session = server.sessions[sid]
        if session.historic_result is not None:
            answer = ", ".join(f"{i.key}={i.score:.2f}"
                               for i in session.historic_result.items[:3])
            epochs_run = "one-shot"
        elif session.results:
            last = session.results[-1]
            answer = ", ".join(f"{i.key}={i.score:.2f}" for i in last.items)
            epochs_run = len(session.results)
        else:
            answer = "(still acquiring)"
            epochs_run = 0
        rows.append([sid, session.plan.algorithm.value, epochs_run, answer,
                     session.stats.messages, session.stats.payload_bytes])
    print(render_table(
        ["session", "algorithm", "epochs", "latest answer",
         "messages", "bytes"], rows))
    print()
    stats = network.stats
    samples = sum(network.node(n).samples_taken
                  for n in network.tree.sensor_ids)
    print(f"deployment: epoch {network.epoch}, {samples} sensor samples, "
          f"{stats.messages} messages, {stats.payload_bytes} payload bytes, "
          f"{stats.radio_joules * 1e3:.2f} mJ radio"
          + (f" ({rejected} queries rejected)" if rejected else ""))
    if schedule is not None:
        _print_churn_summary(network, server)
    if args.baseline:
        panels = [s.system_panel for s in server.sessions.values()
                  if s.system_panel is not None and s.system_panel.samples]
        if panels:
            total = SystemPanel.aggregate(panels)
            print(f"aggregate savings vs per-query TAG shadows: "
                  f"{total.message_saving_pct:.1f}% messages, "
                  f"{total.byte_saving_pct:.1f}% bytes, "
                  f"{total.energy_saving_pct:.1f}% radio energy")
    return 0


def _cmd_scenario_init(args) -> int:
    template = ScenarioConfig(
        name="my-deployment",
        map_width=100.0,
        map_height=60.0,
        radio_range=35.0,
        sink_position=(50.0, 30.0),
        positions={1: (15.0, 15.0), 2: (25.0, 15.0),
                   3: (70.0, 15.0), 4: (80.0, 15.0),
                   5: (45.0, 45.0), 6: (55.0, 45.0)},
        cluster_of={1: "RoomA", 2: "RoomA", 3: "RoomB", 4: "RoomB",
                    5: "Hallway", 6: "Hallway"},
    )
    save_scenario(template, args.path)
    print(f"wrote template scenario to {args.path}")
    print("edit positions/clusters, then:")
    print(f"  python -m repro run {args.path} \"SELECT TOP 1 roomid, "
          f"AVERAGE(sound) FROM sensors GROUP BY roomid\"")
    return 0


def _cmd_savings(args) -> int:
    from .core import Mint, MintConfig, Tag
    from .core.aggregates import make_aggregate
    from .scenarios import grid_rooms_scenario

    rows = []
    for name in ("mint", "tag"):
        scenario = grid_rooms_scenario(side=args.side,
                                       rooms_per_axis=args.rooms,
                                       seed=args.seed)
        aggregate = make_aggregate("AVG", 0, 100)
        if name == "mint":
            algorithm = Mint(scenario.network, aggregate, args.k,
                             scenario.group_of,
                             config=MintConfig(slack=min(args.k, 4)))
        else:
            algorithm = Tag(scenario.network, aggregate, args.k,
                            scenario.group_of)
        for _ in range(args.epochs):
            algorithm.run_epoch()
        stats = scenario.network.stats
        rows.append([name, stats.messages, stats.payload_bytes,
                     stats.radio_joules * 1e3])
    saving = 100.0 * (1 - rows[0][2] / rows[1][2])
    print(render_table(["algorithm", "messages", "bytes", "radio mJ"],
                       rows))
    print(f"\nMINT saves {saving:.1f}% of TAG's bytes "
          f"({args.side * args.side} sensors, "
          f"{args.rooms * args.rooms} rooms, K={args.k}, "
          f"{args.epochs} epochs)")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "demo": _cmd_demo,
        "run": _cmd_run,
        "workload": _cmd_workload,
        "scenario-init": _cmd_scenario_init,
        "savings": _cmd_savings,
    }
    try:
        return handlers[args.command](args)
    except KSpotError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
