"""Simplified MicroHash index over the flash model.

MicroHash (Zeinalipour-Yazti et al., USENIX FAST 2005 — reference [10]
of the paper) indexes time-series readings on flash so that a mote can
answer value-range and time-range queries without scanning its whole
history. The structure reproduced here keeps its two essential ideas:

* readings are batched into *data pages* written strictly sequentially
  (flash-friendly: no in-place updates); and
* a *directory* of value buckets maps each bucket to the chain of data
  pages containing readings in that bucket, so a value-range lookup
  touches only the relevant chains.

Historic queries use it for the "local search and filtering in the
respective history window" step of §III-B, with page reads charged to
the flash energy meter.
"""

from __future__ import annotations

from dataclasses import dataclass
from ..errors import ConfigurationError, StorageError
from .flash import FlashModel
from .window import WindowEntry


@dataclass(frozen=True)
class _DataPage:
    """One flash page of buffered readings (kept sorted by epoch)."""

    entries: tuple[WindowEntry, ...]
    min_epoch: int
    max_epoch: int
    min_value: float
    max_value: float


class MicroHashIndex:
    """Value-bucket directory over sequentially written data pages."""

    def __init__(self, flash: FlashModel, lo: float, hi: float,
                 buckets: int = 16, entries_per_page: int | None = None):
        if lo >= hi:
            raise ConfigurationError("MicroHash needs lo < hi")
        if buckets < 1:
            raise ConfigurationError("need at least one value bucket")
        self._flash = flash
        self._lo = lo
        self._hi = hi
        self._buckets = buckets
        # A WindowEntry costs ~8 bytes on flash (4-byte epoch + 4-byte value).
        self._entries_per_page = entries_per_page or max(1, flash.page_bytes // 8)
        self._directory: list[list[int]] = [[] for _ in range(buckets)]
        self._pending: list[WindowEntry] = []
        self._count = 0

    @property
    def entry_count(self) -> int:
        """Total readings stored (flushed and pending)."""
        return self._count

    @property
    def flash(self) -> FlashModel:
        """The underlying device (exposes operation counters)."""
        return self._flash

    def bucket_of(self, value: float) -> int:
        """The directory bucket a value hashes (range-partitions) into."""
        if not self._lo <= value <= self._hi:
            raise StorageError(
                f"value {value} outside indexed range [{self._lo}, {self._hi}]"
            )
        if value == self._hi:
            return self._buckets - 1
        width = (self._hi - self._lo) / self._buckets
        return int((value - self._lo) / width)

    def insert(self, epoch: int, value: float) -> None:
        """Buffer one reading; flushes a full page to flash."""
        self.bucket_of(value)  # validates the range
        if self._pending and epoch < self._pending[-1].epoch:
            raise StorageError("out-of-order insert")
        self._pending.append(WindowEntry(epoch, value))
        self._count += 1
        if len(self._pending) >= self._entries_per_page:
            self.flush()

    def flush(self) -> None:
        """Write pending readings as one data page and index it."""
        if not self._pending:
            return
        entries = tuple(self._pending)
        page = _DataPage(
            entries=entries,
            min_epoch=entries[0].epoch,
            max_epoch=entries[-1].epoch,
            min_value=min(e.value for e in entries),
            max_value=max(e.value for e in entries),
        )
        page_number = self._flash.append_page(page)
        touched = {self.bucket_of(e.value) for e in entries}
        for bucket in touched:
            self._directory[bucket].append(page_number)
        self._pending.clear()

    def _pages_for_value_range(self, lo: float, hi: float) -> list[int]:
        lo = max(lo, self._lo)
        hi = min(hi, self._hi)
        if lo > hi:
            return []
        first = self.bucket_of(lo)
        last = self.bucket_of(hi)
        pages: set[int] = set()
        for bucket in range(first, last + 1):
            pages.update(self._directory[bucket])
        return sorted(pages)

    def value_range(self, lo: float, hi: float) -> list[WindowEntry]:
        """All readings with value in ``[lo, hi]``, charged per page read."""
        results = [e for e in self._pending if lo <= e.value <= hi]
        for page_number in self._pages_for_value_range(lo, hi):
            page = self._flash.read_page(page_number)
            assert isinstance(page, _DataPage)
            results.extend(e for e in page.entries if lo <= e.value <= hi)
        results.sort(key=lambda e: e.epoch)
        return results

    def epoch_range(self, start: int, end: int) -> list[WindowEntry]:
        """All readings with epoch in ``[start, end]``.

        Data pages are time-ordered, so the scan binary-searches the
        page sequence by epoch bounds instead of using the directory.
        """
        if start > end:
            return []
        results = [e for e in self._pending if start <= e.epoch <= end]
        for page_number in range(len(self._flash)):
            page = self._flash.read_page(page_number)
            assert isinstance(page, _DataPage)
            if page.max_epoch < start:
                continue
            if page.min_epoch > end:
                break
            results.extend(e for e in page.entries if start <= e.epoch <= end)
        results.sort(key=lambda e: e.epoch)
        return results

    def top_k(self, k: int) -> list[WindowEntry]:
        """The k highest-valued readings, probing buckets top-down.

        This is the MicroHash access pattern that makes local top-k
        cheap: start from the highest value bucket and stop as soon as
        k readings from buckets strictly above the remaining ones are
        in hand.
        """
        if k < 0:
            raise StorageError("k must be non-negative")
        if k == 0:
            return []
        results: list[WindowEntry] = list(self._pending)
        width = (self._hi - self._lo) / self._buckets
        seen_pages: set[int] = set()
        for bucket in range(self._buckets - 1, -1, -1):
            for page_number in self._directory[bucket]:
                if page_number in seen_pages:
                    continue
                seen_pages.add(page_number)
                page = self._flash.read_page(page_number)
                assert isinstance(page, _DataPage)
                results.extend(page.entries)
            # Every stored reading >= this bucket's floor is now in hand;
            # anything still on flash is strictly smaller, so k hits from
            # this level upward certify the answer.
            bucket_floor = self._lo + bucket * width
            certain = sum(1 for e in results if e.value >= bucket_floor)
            if certain >= k:
                break
        ranked = sorted(results, key=lambda e: (-e.value, e.epoch))
        return ranked[:k]
