"""Page-based NAND flash model.

Mote flash (e.g. the AT45DB on MICA2-class hardware) is written in
whole pages, sequentially, and erased in blocks; page reads and writes
have fixed energy costs that dominate local-storage budgets. The model
exposes exactly the operations MicroHash needs — append a page, read a
page — and meters them.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError, StorageFullError, StorageError


@dataclass
class FlashStats:
    """Operation counters and energy for one flash device."""

    page_writes: int = 0
    page_reads: int = 0
    joules: float = 0.0


class FlashModel:
    """A sequential-append flash device holding fixed-size pages.

    Attributes:
        page_bytes: Page size (AT45DB-style 264/512-byte pages).
        pages: Device capacity in pages.
        write_joules / read_joules: Per-page operation energy (values
            follow the MicroHash paper's measurements: writes cost
            several times reads).
    """

    def __init__(self, page_bytes: int = 512, pages: int = 2048,
                 write_joules: float = 76e-6, read_joules: float = 24e-6):
        if page_bytes < 1 or pages < 1:
            raise ConfigurationError("flash geometry must be positive")
        if write_joules < 0 or read_joules < 0:
            raise ConfigurationError("flash energy costs must be non-negative")
        self.page_bytes = page_bytes
        self.capacity_pages = pages
        self.write_joules = write_joules
        self.read_joules = read_joules
        self.stats = FlashStats()
        self._pages: list[object] = []

    def __len__(self) -> int:
        return len(self._pages)

    @property
    def free_pages(self) -> int:
        """Pages still writable before the device is full."""
        return self.capacity_pages - len(self._pages)

    def append_page(self, payload: object) -> int:
        """Write one page at the append point, returning its page number."""
        if not self._pages and self.capacity_pages == 0:
            raise StorageFullError("flash device has zero capacity")
        if len(self._pages) >= self.capacity_pages:
            raise StorageFullError(
                f"flash full: {self.capacity_pages} pages written"
            )
        self._pages.append(payload)
        self.stats.page_writes += 1
        self.stats.joules += self.write_joules
        return len(self._pages) - 1

    def read_page(self, page_number: int) -> object:
        """Read one page by number, charging read energy."""
        if not 0 <= page_number < len(self._pages):
            raise StorageError(f"page {page_number} has not been written")
        self.stats.page_reads += 1
        self.stats.joules += self.read_joules
        return self._pages[page_number]

    def erase(self) -> None:
        """Bulk erase (new deployment); counters keep accumulating."""
        self._pages.clear()
