"""In-memory sliding window of (epoch, value) readings.

The main-memory history buffer of §III-B: bounded capacity, oldest
entries evicted first. Supports the local search and filtering a
historic-horizontal query performs before transmitting (windowed
aggregates, local top-k, threshold scans).
"""

from __future__ import annotations

from collections import deque
from typing import Iterator, NamedTuple

from ..errors import ConfigurationError, StorageError


class WindowEntry(NamedTuple):
    """One buffered reading.

    A NamedTuple rather than a frozen dataclass: the acquisition loop
    allocates one per node per epoch, and tuple construction is ~5x
    cheaper than a frozen dataclass ``__init__`` (which pays two
    ``object.__setattr__`` calls). Field access, equality and repr are
    unchanged.
    """

    epoch: int
    value: float


class SlidingWindow:
    """Bounded FIFO buffer of readings, newest last."""

    def __init__(self, capacity: int = 1024):
        if capacity < 1:
            raise ConfigurationError("window capacity must be >= 1")
        self._capacity = capacity
        self._entries: deque[WindowEntry] = deque(maxlen=capacity)

    @property
    def capacity(self) -> int:
        """Maximum number of buffered readings."""
        return self._capacity

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[WindowEntry]:
        return iter(self._entries)

    def append(self, epoch: int, value: float) -> None:
        """Buffer a reading; evicts the oldest when full.

        Epochs must be appended in non-decreasing order (the
        acquisition loop is the only writer).
        """
        if self._entries and epoch < self._entries[-1].epoch:
            raise StorageError(
                f"out-of-order append: epoch {epoch} after "
                f"{self._entries[-1].epoch}"
            )
        self._entries.append(WindowEntry(epoch, value))

    def latest(self) -> WindowEntry:
        """The most recent reading."""
        if not self._entries:
            raise StorageError("window is empty")
        return self._entries[-1]

    def last(self, n: int) -> list[WindowEntry]:
        """The most recent ``n`` readings (fewer if not yet buffered)."""
        if n < 0:
            raise StorageError("n must be non-negative")
        if n >= len(self._entries):
            return list(self._entries)
        return list(self._entries)[len(self._entries) - n:]

    def since(self, epoch: int) -> list[WindowEntry]:
        """Readings with ``entry.epoch >= epoch``."""
        return [e for e in self._entries if e.epoch >= epoch]

    def values_in_range(self, lo: float, hi: float) -> list[WindowEntry]:
        """Readings whose value lies in ``[lo, hi]`` (a filter scan)."""
        return [e for e in self._entries if lo <= e.value <= hi]

    def top_k(self, k: int) -> list[WindowEntry]:
        """The ``k`` highest-valued readings, best first.

        Ties break toward the earlier epoch — the same deterministic
        order MicroHash and the ranking helpers use.
        """
        if k < 0:
            raise StorageError("k must be non-negative")
        ranked = sorted(self._entries, key=lambda e: (-e.value, e.epoch))
        return ranked[:k]

    def aggregate(self, op: str, last_n: int | None = None) -> float:
        """A windowed aggregate over the last ``n`` readings (or all).

        Supported ops: avg, sum, min, max, count.
        """
        entries = self.last(last_n) if last_n is not None else list(self._entries)
        if not entries and op != "count":
            raise StorageError("cannot aggregate an empty window")
        values = [e.value for e in entries]
        if op == "avg":
            return sum(values) / len(values)
        if op == "sum":
            return sum(values)
        if op == "min":
            return min(values)
        if op == "max":
            return max(values)
        if op == "count":
            return float(len(values))
        raise StorageError(f"unknown window aggregate {op!r}")
