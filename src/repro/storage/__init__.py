"""Local storage substrate: sliding windows, flash model, MicroHash.

Historic top-k queries (§III-B) require each sensor to "buffer sensor
readings locally in a sliding window fashion (either in main memory or
on flash)". :class:`~repro.storage.window.SlidingWindow` is the
main-memory path (IMote2-class SRAM); :mod:`repro.storage.flash` +
:mod:`repro.storage.microhash` model the flash path of the cited
MicroHash index (USENIX FAST 2005), with page-level cost accounting.
"""

from .flash import FlashModel, FlashStats
from .microhash import MicroHashIndex
from .window import SlidingWindow, WindowEntry

__all__ = [
    "SlidingWindow",
    "WindowEntry",
    "FlashModel",
    "FlashStats",
    "MicroHashIndex",
]
