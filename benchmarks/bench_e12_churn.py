"""E12 — churn-tolerant sessions: correctness and recovery cost.

The churn subsystem (PR: node failure/join lifecycle) promises two
things, and this benchmark measures both:

1. **Correctness through churn.** Live query sessions survive a seeded
   :class:`~repro.network.churn.ChurnSchedule` of deaths and births via
   the detect → quiesce → repair → resume protocol, and once the fleet
   settles, every session's per-epoch top-k equals a fault-free run
   deployed over the surviving population from the start (answers are
   certified-exact either way, so they must agree bit-for-bit).

2. **Sub-linear recovery cost.** Incremental tree repair re-homes only
   the orphaned subtrees and MINT re-primes only the dirty ancestor
   paths, so absorbing a *fixed* amount of churn must cost far less
   than linearly more as the network grows — unlike the restart
   baseline, which re-creates every view in the deployment.
"""

import _bootstrap  # noqa: F401  src/ path wiring for script runs

from repro.api import ChurnIntervention, Deployment, EpochDriver
from repro.network.churn import ChurnEvent, ChurnKind, ChurnSchedule
from repro.network.simulator import Network
from repro.network.topology import Topology
from repro.scenarios import grid_rooms_scenario
from repro.sensing.board import SensorBoard

from conftest import once

QUERIES = [
    "SELECT TOP 2 roomid, AVG(sound) FROM sensors "
    "GROUP BY roomid EPOCH DURATION 1 min",
    "SELECT TOP 3 roomid, MAX(sound) FROM sensors "
    "GROUP BY roomid EPOCH DURATION 1 min",
]

EPOCHS = 14
SEED = 5


def make_schedule(network, group_of):
    """A fixed churn burden, structural not size-dependent: one relay
    (a sink child with children), one leaf, one deep node die; one mote
    is born next to the first sensor."""
    tree = network.tree
    relay = next(n for n in tree.children(tree.root) if tree.children(n))
    leaf = next(n for n in tree.sensor_ids
                if tree.is_leaf(n) and n != relay)
    deep = max(tree.sensor_ids, key=lambda n: (tree.depth(n), n))
    anchor = min(n for n in tree.sensor_ids if n not in {relay, leaf, deep})
    ax, ay = network.topology.positions[anchor]
    born = max(tree.sensor_ids) + 1
    victims = []
    seen = set()
    for node in (relay, leaf, deep):
        if node not in seen:
            victims.append(node)
            seen.add(node)
    events = [ChurnEvent(3 + 2 * i, ChurnKind.DEATH, v)
              for i, v in enumerate(victims)]
    events.append(ChurnEvent(4, ChurnKind.BIRTH, born,
                             position=(ax + 3.0, ay + 2.0),
                             group=group_of.get(anchor)))
    return ChurnSchedule(sorted(events, key=lambda e: e.epoch))


def run_churned(side):
    """Drive the workload under churn; returns (scenario, deployment,
    schedule, per-session answer streams)."""
    scenario = grid_rooms_scenario(side=side, rooms_per_axis=3, seed=SEED)
    deployment = Deployment.from_scenario(scenario)
    handles = [deployment.submit(q) for q in QUERIES]
    schedule = make_schedule(scenario.network, scenario.group_of)
    EpochDriver(deployment,
                interventions=[ChurnIntervention(schedule)]).run(EPOCHS)
    answers = {
        handle.id: [(r.epoch, tuple((i.key, i.score) for i in r.items))
                    for r in handle.results]
        for handle in handles
    }
    return scenario, deployment, schedule, answers


def run_fault_free_survivors(scenario, schedule):
    """The oracle: the surviving population deployed from epoch 0,
    no churn, same field — per-epoch answers over the same live set."""
    network = scenario.network
    survivors = {
        n for n in network.nodes
        if network.nodes[n].alive
    }
    positions = {network.sink_id: network.topology.positions[network.sink_id]}
    group_of = {}
    boards = {}
    for node_id in sorted(survivors):
        positions[node_id] = network.topology.positions[node_id]
        group = network.nodes[node_id].group
        if group is not None:
            group_of[node_id] = group
        boards[node_id] = SensorBoard({scenario.attribute: scenario.field})
    topology = Topology(positions=positions,
                        radio_range=network.topology.radio_range,
                        sink_id=network.sink_id)
    oracle_net = Network(topology, boards=boards, group_of=group_of)
    deployment = Deployment(oracle_net, group_of=group_of)
    handles = [deployment.submit(q) for q in QUERIES]
    EpochDriver(deployment).run(EPOCHS)
    return {
        handle.id: [(r.epoch, tuple((i.key, i.score) for i in r.items))
                    for r in handle.results]
        for handle in handles
    }


def recovery_cost(deployment, network):
    """Messages + re-primed states the churn actually cost."""
    phase = network.stats.by_phase.get("recovery")
    repair_messages = phase.messages if phase else 0
    reprimed = sum(handle.recovery.reprimed
                   for handle in deployment.sessions())
    return repair_messages + reprimed, repair_messages, reprimed


def run_experiment():
    # -- part 1: answers through churn == fault-free survivor run ------
    scenario, _deployment, schedule, churned = run_churned(side=6)
    oracle = run_fault_free_survivors(scenario, schedule)
    settle = schedule.last_epoch + 1
    agreements = []
    for sid, stream in churned.items():
        tail = [entry for entry in stream if entry[0] >= settle]
        oracle_tail = [entry for entry in oracle[sid]
                       if entry[0] >= settle]
        agreements.append((sid, tail, oracle_tail))

    # -- part 2: recovery cost vs network size -------------------------
    rows = []
    costs = {}
    for side in (4, 6, 8):
        sc, dep, sched, _ = run_churned(side=side)
        total, repair, reprimed = recovery_cost(dep, sc.network)
        sensors = side * side
        # The restart baseline re-creates every view per event batch.
        restart = len(sched.events) * sensors * len(QUERIES)
        costs[sensors] = total
        rows.append([sensors, len(sched.events), repair, reprimed, total,
                     restart, f"{total / sensors:.2f}"])
    return agreements, rows, costs


def test_e12_churn_recovery(benchmark, table):
    agreements, rows, costs = once(benchmark, run_experiment)

    table("E12: recovery cost under a fixed churn burden "
          f"(3 deaths + 1 birth, {EPOCHS} epochs)",
          ["sensors", "events", "repair msgs", "re-primed states",
           "recovery total", "restart baseline", "cost / sensor"],
          rows)

    # Every live session's settled answers equal the fault-free run
    # over the surviving population — churn never corrupts a top-k.
    # (Scores agree to float merge-order noise: the repaired tree sums
    # the same partials in a different order than the BFS oracle tree.)
    for sid, tail, oracle_tail in agreements:
        assert tail, f"session {sid} produced no settled answers"
        assert len(tail) == len(oracle_tail)
        for (epoch, items), (o_epoch, o_items) in zip(tail, oracle_tail):
            assert epoch == o_epoch
            assert [k for k, _ in items] == [k for k, _ in o_items], (
                f"session {sid} ranked differently from the fault-free "
                f"survivor run at epoch {epoch}"
            )
            for (_, score), (_, o_score) in zip(items, o_items):
                assert abs(score - o_score) < 1e-6, (
                    f"session {sid} diverged from the fault-free "
                    f"survivor run at epoch {epoch}"
                )

    # Recovery traffic grows sub-linearly in network size: quadrupling
    # the fleet (16 → 64 sensors) must far less than quadruple the cost
    # of absorbing the same churn burden.
    small, large = costs[16], costs[64]
    assert small > 0, "churn burden was absorbed for free?"
    assert large / small < 2.5, (
        f"recovery cost scaled {large / small:.2f}x over a 4x fleet — "
        f"not sub-linear"
    )
    # And it beats the restart baseline outright at every size.
    for sensors, _events, _repair, _reprimed, total, restart, _ in rows:
        assert total < restart, (
            f"incremental recovery ({total}) should undercut the "
            f"restart baseline ({restart}) at {sensors} sensors"
        )


if __name__ == "__main__":
    raise SystemExit(_bootstrap.main(__file__))
