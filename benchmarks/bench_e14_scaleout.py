"""E14 — multicore scale-out: the process-sharded executor vs serial.

The simulator is single-threaded by design, so ``repro.parallel``
scales *horizontally*: independent deployments (here, an e11-workload
sweep over fleet size × churn preset) shard across worker processes.
This benchmark prices that claim and pins its correctness contract:

* **byte-identical merges** — the merged sweep report (answers, stats,
  savings, recovery; wall clocks excluded) is a pure function of the
  cell grid: serial, 2-worker and 4-worker runs must produce the same
  canonical JSON byte for byte (deterministic per-cell seed derivation
  makes shard results independent of scheduling);
* **near-linear aggregate throughput** — with W workers on >= W CPUs,
  aggregate epochs/sec approaches W× the serial rate. The gate demands
  >= 3x at 4 workers when 4+ CPUs are visible, scaling down honestly
  on smaller hosts (a 1-CPU container can only prove overhead stays
  bounded).
"""

import _bootstrap  # noqa: F401  src/ path wiring for script runs

import json
import os
import time

from repro.parallel import (
    canonical,
    merge_sweep,
    run_sharded,
    run_sweep_cell,
    shard_errors,
    sweep_grid,
)

from conftest import once

#: The sweep: 16 independent e11-workload deployments (the horizontal
#: unit of work) — enough cells for the pool's dynamic scheduling to
#: balance unequal cell costs, each long enough to amortize worker
#: start-up, the whole grid short enough for CI.
SIZES = (25, 36, 49, 64)
CHURNS = ("none", "calm")
MIXES = ("e11", "mint")
EPOCHS = 60
SEED = 11

WORKER_COUNTS = (2, 4)


def run_scaleout():
    cells = sweep_grid(SIZES, CHURNS, MIXES, epochs=EPOCHS, seed=SEED)
    keys = [cell.key for cell in cells]
    epochs_total = sum(cell.epochs for cell in cells)

    def measured(jobs):
        started = time.perf_counter()
        results = run_sharded(run_sweep_cell, cells, jobs=jobs, keys=keys)
        wall = time.perf_counter() - started
        return results, wall

    serial_results, serial_wall = measured(1)
    serial_canonical = json.dumps(canonical(merge_sweep(serial_results)),
                                  sort_keys=True)
    rows = [[1, f"{serial_wall:.2f}", f"{epochs_total / serial_wall:.1f}",
             "1.00x", "yes"]]
    outcomes = []
    for jobs in WORKER_COUNTS:
        results, wall = measured(jobs)
        merged_canonical = json.dumps(canonical(merge_sweep(results)),
                                      sort_keys=True)
        identical = merged_canonical == serial_canonical
        scaling = serial_wall / wall
        rows.append([jobs, f"{wall:.2f}",
                     f"{epochs_total / wall:.1f}", f"{scaling:.2f}x",
                     "yes" if identical else "NO"])
        outcomes.append((jobs, scaling, identical,
                         shard_errors(results)))
    return rows, outcomes, serial_wall, epochs_total


def test_e14_scaleout(benchmark, table):
    rows, outcomes, serial_wall, epochs_total = once(benchmark,
                                                     run_scaleout)
    cpus = os.cpu_count() or 1
    table(f"E14: process-sharded sweep scale-out "
          f"({len(SIZES) * len(CHURNS) * len(MIXES)} cells x "
          f"{EPOCHS} epochs, e11 workload, {cpus} CPUs visible)",
          ["workers", "wall s", "agg epochs/s", "scale-out",
           "merge identical"],
          rows)

    for jobs, scaling, identical, errors in outcomes:
        # The executor's correctness contract: no silent worker
        # crashes, and the merged report is byte-identical to serial.
        assert errors == []
        assert identical, f"{jobs}-worker merge diverged from serial"
        usable = min(jobs, cpus)
        if usable >= 4:
            # The acceptance bar: >= 3x aggregate throughput at 4
            # workers on a 4-CPU host.
            assert scaling >= 3.0, (
                f"{jobs} workers on {cpus} CPUs scaled only "
                f"{scaling:.2f}x (need >= 3x)")
        elif usable > 1:
            assert scaling >= 0.6 * usable, (
                f"{jobs} workers on {cpus} CPUs scaled only "
                f"{scaling:.2f}x (need >= {0.6 * usable:.1f}x)")
        else:
            # Single CPU: parallelism cannot help; prove the pool
            # overhead stays bounded instead.
            assert scaling >= 0.5, (
                f"pool overhead ate {1 - scaling:.0%} of serial "
                f"throughput on a single CPU")


if __name__ == "__main__":
    raise SystemExit(_bootstrap.main(__file__))
