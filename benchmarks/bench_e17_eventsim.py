"""E17 — discrete-event shipping core: event queue vs the inline path.

The eventsim PR reroutes every ship through a discrete-event queue
(:mod:`repro.network.eventsim`): ``_ship_unicast``/``_ship_broadcast``
post delivery events keyed on ``(time, seq, node_id)`` instead of
invoking receive handlers inline. In zero-delay mode the queue drains
at the post site in exact inline order — byte-identical streams, which
:func:`repro.perf.measure_eventsim` asserts on fresh deployments
before timing anything — so the whole event layer must price as pure
overhead on the epoch-synchronous workload. This benchmark holds that
overhead bounded and prices the partitioned mode:

* **zero-delay ratio** — event-core epochs/sec over inline epochs/sec
  on the :func:`repro.perf.columnar_fleet` Zipf/FILA workload,
  chunked-min with modes interleaved (``docs/PERF.md``). The bound at
  N = 400 is **>= 0.9x** (measured ~0.99x: the queue indirection costs
  about a percent);
* **partitioned throughput** — per-subtree event streams let
  independent replicas shard across worker processes, with the
  serial-vs-worker signature equality asserted inside
  ``measure_eventsim`` (cross-process determinism). With W workers on
  >= W CPUs aggregate throughput must scale; a smaller host only
  proves the partition/spawn overhead stays bounded.
"""

import _bootstrap  # noqa: F401  src/ path wiring for script runs

import os

from repro.perf import measure_eventsim

from conftest import once

#: Fleet sizes priced (400 is the gated size).
SIZES = (100, 400)
CHUNKS = 20
CHUNK_EPOCHS = 10
SEED = 11

#: Zero-delay acceptance bound at N=400: the event queue may cost at
#: most 10% of inline throughput on the epoch-synchronous workload.
MIN_EVENT_RATIO = 0.9


def run_experiment():
    return [measure_eventsim(n=n, chunks=CHUNKS,
                             chunk_epochs=CHUNK_EPOCHS, seed=SEED)
            for n in SIZES]


def test_e17_eventsim_core(benchmark, table):
    measurements = once(benchmark, run_experiment)
    cpus = os.cpu_count() or 1

    rows = []
    for m in measurements:
        part = m["partitioned"]
        rows.append([m["n_nodes"],
                     f"{m['epochs_per_sec_inline']:.0f}",
                     f"{m['epochs_per_sec_event']:.0f}",
                     f"{m['speedup']:.2f}x",
                     f"{m['events_per_epoch']:.0f}",
                     f"{part['jobs']}w/{part['partitions']}p",
                     f"{part['partition_speedup']:.2f}x"])
    table(f"E17: event-core shipping (Zipf FILA, min over {CHUNKS} "
          f"chunks of {CHUNK_EPOCHS} epochs, {cpus} CPUs visible)",
          ["nodes", "inline epochs/s", "event epochs/s", "ratio",
           "events/epoch", "partitioned", "part. scale"],
          rows)

    # measure_eventsim raises if the event-core stream diverges from
    # the inline ship path's, or a partitioned worker's signature from
    # the in-process run's — reaching here already proves both; the
    # gates below price the overhead.
    at_400 = next(m for m in measurements if m["n_nodes"] == 400)
    assert at_400["speedup"] >= MIN_EVENT_RATIO, (
        f"event core at N=400 runs at {at_400['speedup']:.2f}x inline "
        f"throughput (floor {MIN_EVENT_RATIO:.1f}x)"
    )

    part = at_400["partitioned"]
    usable = min(part["jobs"], cpus)
    if usable >= 4:
        # Independent replicas across >= 4 real CPUs must scale.
        assert part["partition_speedup"] >= 1.5, (
            f"{part['jobs']} partitioned workers on {cpus} CPUs "
            f"scaled only {part['partition_speedup']:.2f}x "
            f"(need >= 1.5x)")
    elif usable > 1:
        assert part["partition_speedup"] >= 0.5 * usable, (
            f"{part['jobs']} partitioned workers on {cpus} CPUs "
            f"scaled only {part['partition_speedup']:.2f}x "
            f"(need >= {0.5 * usable:.1f}x)")
    else:
        # Single CPU: parallelism cannot help; prove the partition
        # bookkeeping plus worker spawn stays bounded instead.
        assert part["partition_speedup"] >= 0.25, (
            f"partitioned overhead ate "
            f"{1 - part['partition_speedup']:.0%} of serial "
            f"throughput on a single CPU")


if __name__ == "__main__":
    raise SystemExit(_bootstrap.main(__file__))
