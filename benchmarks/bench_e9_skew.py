"""E9 — data-skew ablation: pruning efficacy vs room-loudness skew.

Zipf-distributed room levels (skew 0 = all rooms equally loud, skew 1.5
= a few rooms dominate). Separated groups certify without probes and
the γ bounds bite early; near-ties force probe rounds. The γ framework
keeps answers exact at every skew.
"""

import _bootstrap  # noqa: F401  src/ path wiring for script runs

from repro.core import Mint, MintConfig, Tag, is_valid_top_k, oracle_scores
from repro.core.aggregates import make_aggregate
from repro.scenarios import grid_rooms_scenario
from repro.sensing.modalities import get_modality

from conftest import once

SKEWS = (0.0, 0.5, 1.0, 1.5)
EPOCHS = 30
K = 1


def run_sweep():
    rows = []
    probe_counts = []
    for skew in SKEWS:
        scenario = grid_rooms_scenario(side=8, rooms_per_axis=4, seed=9,
                                       skew=skew)
        shadow = grid_rooms_scenario(side=8, rooms_per_axis=4, seed=9,
                                     skew=skew)
        aggregate = make_aggregate("AVG", 0, 100)
        mint = Mint(scenario.network, aggregate, K, scenario.group_of,
                    config=MintConfig(slack=0))
        tag = Tag(shadow.network, aggregate, K, shadow.group_of)
        modality = get_modality("sound")
        exact_epochs = 0
        for epoch in range(EPOCHS):
            result = mint.run_epoch()
            tag.run_epoch()
            readings = {n: modality.quantize(scenario.field.value(n, epoch))
                        for n in scenario.group_of}
            truth = oracle_scores(readings, scenario.group_of, aggregate)
            exact_epochs += is_valid_top_k(result.items, truth, K,
                                           tolerance=1e-6)
        saving = 100.0 * (1 - scenario.network.stats.payload_bytes
                          / shadow.network.stats.payload_bytes)
        rows.append([skew, scenario.network.stats.payload_bytes,
                     mint.probes_run, saving, f"{exact_epochs}/{EPOCHS}"])
        probe_counts.append(mint.probes_run)
        assert exact_epochs == EPOCHS
    return rows, probe_counts


def test_e9_skew_ablation(benchmark, table):
    rows, probe_counts = once(benchmark, run_sweep)
    table(f"E9: skew ablation — TOP-{K} of 16 rooms, slack 0, "
          f"{EPOCHS} epochs",
          ["zipf skew", "mint bytes", "probe rounds", "saving vs tag %",
           "exact epochs"], rows)

    # Separation reduces ambiguity: heavy skew needs no more probing
    # than the all-ties regime (usually far less).
    assert probe_counts[-1] <= probe_counts[0]
    # Exactness held everywhere (asserted inside the sweep).


if __name__ == "__main__":
    raise SystemExit(_bootstrap.main(__file__))
