"""E15 — incremental certification: TopKView vs cold certify_top_k.

The incremental-view PR threads a maintained :class:`~repro.core.delta.
TopKView` through the sinks so every certification call stops re-ranking
all N groups from scratch. This benchmark prices that claim on the real
workload: :func:`repro.perf.certifier_streams` records every cold
``certify_top_k`` call FILA's sink makes over the e11 fleet deployment
(monitor pass, probe loop, answer-time pass), and
:func:`repro.perf.measure_certifier` replays the stream twice —

* **cold**: ``certify_top_k`` per recorded snapshot (O(N log N) each),
* **incremental**: one persistent view applying the consecutive
  weighted deltas (O(|delta| · log N) each) and answering
  ``outcome()``,

with the two outcome sequences asserted equal (dataclass equality) on
the measured stream itself before anything is timed. The acceptance
bound holds the incremental path to **≥ 2× certification throughput at
N = 400** — the floor the ISSUE sets and the CI regression gate
(``check_perf_regression.py``) keeps honest thereafter.
"""

import _bootstrap  # noqa: F401  src/ path wiring for script runs

from repro.perf import measure_certifier

from conftest import once

#: Fleet sizes priced (400 is the gated size).
SIZES = (100, 400)
EPOCHS = 30
SEED = 11
K = 5
REPEATS = 3

#: The acceptance bound at N=400 (the ISSUE's floor).
MIN_SPEEDUP = 2.0


def run_experiment():
    return [measure_certifier(n=n, epochs=EPOCHS, seed=SEED, k=K,
                              repeats=REPEATS)
            for n in SIZES]


def test_e15_incremental_certification(benchmark, table):
    measurements = once(benchmark, run_experiment)

    rows = []
    for m in measurements:
        rows.append([m["n_groups"], m["certifications"],
                     m["delta_entries"],
                     f"{m['cold_per_sec']:.0f}",
                     f"{m['incremental_per_sec']:.0f}",
                     f"{m['speedup']:.2f}x"])
    table(f"E15: incremental certification (FILA stream, {EPOCHS} epochs, "
          f"k={K}, best of {REPEATS})",
          ["groups", "certifications", "delta entries",
           "cold certify/s", "incremental/s", "speedup"],
          rows)

    # measure_certifier raises if the incremental outcomes diverge from
    # the cold certifier's, so reaching here already proves equivalence
    # on the measured stream; the gate below is the throughput floor.
    at_400 = next(m for m in measurements if m["n_groups"] == 400)
    assert at_400["speedup"] >= MIN_SPEEDUP, (
        f"incremental certification at N=400 is only "
        f"{at_400['speedup']:.2f}x over cold certify_top_k "
        f"(floor {MIN_SPEEDUP:.1f}x)"
    )


if __name__ == "__main__":
    raise SystemExit(_bootstrap.main(__file__))
