"""E10 — design ablations: naive error rate, slack, FILA crossover.

Three studies behind DESIGN.md's design choices:

(a) the naive greedy pruning of §III-A is measurably wrong — its
    error rate over random clustered deployments is the paper's
    motivation for γ descriptors;
(b) MINT's slack knob trades view size against probe traffic (the
    adaptive controller should land near the per-scenario best); and
(c) FILA vs MINT on node ranking: filters win on quiet fields, view
    updates win on volatile ones — the "no universal algorithm"
    observation that justifies KSpot's per-class routing.
"""

import _bootstrap  # noqa: F401  src/ path wiring for script runs

from repro.core import (
    Fila,
    Mint,
    MintConfig,
    NaiveTopK,
    is_valid_top_k,
    oracle_scores,
)
from repro.core.aggregates import make_aggregate
from repro.scenarios import grid_rooms_scenario, random_rooms_scenario
from repro.sensing.modalities import get_modality

from conftest import once

SCENARIOS = 60
EPOCHS = 25


def naive_error_rate():
    aggregate = make_aggregate("AVG", 0, 100)
    modality = get_modality("sound")
    wrong = 0
    for seed in range(SCENARIOS):
        scenario = random_rooms_scenario(rooms=5, sensors_per_room=3,
                                         seed=seed)
        naive = NaiveTopK(scenario.network, aggregate, 1, scenario.group_of)
        result = naive.run_epoch()
        readings = {n: modality.quantize(scenario.field.value(n, 0))
                    for n in scenario.group_of}
        truth = oracle_scores(readings, scenario.group_of, aggregate)
        wrong += not is_valid_top_k(result.items, truth, 1, tolerance=1e-6)
    return wrong


def slack_sweep():
    aggregate = make_aggregate("AVG", 0, 100)
    k = 2
    rows = []
    for label, config in (
        ("slack 0", MintConfig(slack=0)),
        ("slack k", MintConfig(slack=k)),
        ("slack 2k", MintConfig(slack=2 * k)),
        ("adaptive", MintConfig(slack=0, adaptive=True)),
    ):
        scenario = grid_rooms_scenario(side=8, rooms_per_axis=4, seed=10)
        mint = Mint(scenario.network, aggregate, k, scenario.group_of,
                    config=config)
        for _ in range(EPOCHS):
            mint.run_epoch()
        rows.append([label, scenario.network.stats.payload_bytes,
                     mint.probes_run, mint.slack])
    return rows


def fila_crossover():
    aggregate = make_aggregate("AVG", 0, 100)
    rows = []
    ratios = {}
    for label, step, sigma in (("quiet", 0.2, 0.05),
                               ("volatile", 12.0, 6.0)):
        byte_counts = {}
        for name in ("fila", "mint"):
            scenario = grid_rooms_scenario(side=6, rooms_per_axis=3,
                                           seed=11, room_step=step,
                                           sensor_sigma=sigma)
            nodes = {n: n for n in scenario.group_of}
            if name == "fila":
                algorithm = Fila(scenario.network, aggregate, 2)
            else:
                algorithm = Mint(scenario.network, aggregate, 2, nodes,
                                 config=MintConfig(slack=2))
            for _ in range(EPOCHS):
                algorithm.run_epoch()
            byte_counts[name] = scenario.network.stats.payload_bytes
        ratios[label] = byte_counts["fila"] / byte_counts["mint"]
        rows.append([label, byte_counts["fila"], byte_counts["mint"],
                     ratios[label]])
    return rows, ratios


def test_e10a_naive_error_rate(benchmark, table):
    wrong = once(benchmark, naive_error_rate)
    table("E10a: naive greedy pruning — TOP-1 over random deployments",
          ["scenarios", "wrong answers", "error rate %"],
          [[SCENARIOS, wrong, 100.0 * wrong / SCENARIOS]])
    # It fails often enough to motivate γ descriptors, but is not
    # degenerate (if it were always wrong nobody would be tempted).
    assert 0 < wrong < SCENARIOS


def test_e10b_slack_tradeoff(benchmark, table):
    rows = once(benchmark, slack_sweep)
    table(f"E10b: slack ablation — TOP-2 of 16 rooms, {EPOCHS} epochs",
          ["configuration", "bytes", "probe rounds", "final slack"], rows)
    by_label = {row[0]: row for row in rows}
    # More slack, fewer probes.
    assert by_label["slack 2k"][2] <= by_label["slack 0"][2]
    # The adaptive controller never probes more than fixed slack 0.
    assert by_label["adaptive"][2] <= by_label["slack 0"][2]


def test_e10c_fila_crossover(benchmark, table):
    rows, ratios = once(benchmark, fila_crossover)
    table(f"E10c: FILA vs MINT — TOP-2 nodes, {EPOCHS} epochs",
          ["field", "fila bytes", "mint bytes", "fila/mint"], rows)
    # Filters beat views when the field is quiet and lose when it is
    # volatile: the reason KSpot routes per query class, not globally.
    assert ratios["quiet"] < 1.0
    assert ratios["volatile"] > ratios["quiet"]


if __name__ == "__main__":
    raise SystemExit(_bootstrap.main(__file__))
