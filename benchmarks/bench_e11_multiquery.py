"""E11 — multi-query sessions: N concurrent queries vs N serial runs.

The multi-query server (PR: session layer) serves every user's query
over ONE deployment on a shared epoch clock: each sensor board samples
once per epoch and every session consumes that same reading. This
benchmark quantifies the claim against the obvious alternative — run
the same N queries one after another, each driving its own epochs —
and checks the answers are bit-identical either way.

Reported per workload size N:

* total physical sensor samples (the shared clock should pay the
  per-epoch sampling cost once, not N times);
* total radio messages / payload bytes (unchanged per query — pruning
  state is per-session — so totals match serial);
* wall-clock for the concurrent pass vs the serial pass.
"""

import _bootstrap  # noqa: F401  src/ path wiring for script runs

import time

from repro.api import Deployment, EpochDriver
from repro.scenarios import grid_rooms_scenario

from conftest import once

#: The mixed per-user workload: ranking rooms by different aggregates
#: plus a historic TJA pass — all over the same sound field.
QUERIES = [
    "SELECT TOP 2 roomid, AVG(sound) FROM sensors "
    "GROUP BY roomid EPOCH DURATION 1 min",
    "SELECT TOP 1 roomid, MAX(sound) FROM sensors "
    "GROUP BY roomid EPOCH DURATION 1 min",
    "SELECT TOP 3 roomid, SUM(sound) FROM sensors "
    "GROUP BY roomid EPOCH DURATION 1 min",
    "SELECT TOP 1 roomid, MIN(sound) FROM sensors "
    "GROUP BY roomid EPOCH DURATION 1 min",
    "SELECT TOP 3 epoch, AVG(sound) FROM sensors "
    "GROUP BY epoch WITH HISTORY 10 s EPOCH DURATION 1 s",
]

EPOCHS = 25
SIDE = 6
ROOMS = 3
SEED = 11


def total_samples(network):
    return sum(network.node(n).samples_taken
               for n in network.tree.sensor_ids)


def outcome_of(handle):
    if handle.is_historic:
        return tuple((i.key, i.score)
                     for i in handle.historic_result.items)
    return tuple((i.key, i.score) for i in handle.last_result.items)


def run_serial(queries):
    """Each query gets the deployment to itself, one after another."""
    samples = messages = payload = 0
    outcomes = []
    started = time.perf_counter()
    for query in queries:
        scenario = grid_rooms_scenario(side=SIDE, rooms_per_axis=ROOMS,
                                       seed=SEED)
        deployment = Deployment.from_scenario(scenario)
        driver = EpochDriver(deployment)
        handle = deployment.submit(query)
        if handle.is_historic:
            driver.run()  # historic sessions finish by themselves
        else:
            driver.run(EPOCHS)
        outcomes.append(outcome_of(handle))
        samples += total_samples(scenario.network)
        messages += scenario.network.stats.messages
        payload += scenario.network.stats.payload_bytes
    elapsed = time.perf_counter() - started
    return samples, messages, payload, elapsed, outcomes


def run_concurrent(queries):
    """All queries share one deployment and one epoch clock."""
    scenario = grid_rooms_scenario(side=SIDE, rooms_per_axis=ROOMS,
                                   seed=SEED)
    deployment = Deployment.from_scenario(scenario)
    driver = EpochDriver(deployment)
    handles = [deployment.submit(query) for query in queries]
    started = time.perf_counter()
    driver.run(EPOCHS)
    elapsed = time.perf_counter() - started
    outcomes = [outcome_of(handle) for handle in handles]
    network = scenario.network
    return (total_samples(network), network.stats.messages,
            network.stats.payload_bytes, elapsed, outcomes)


def run_scaling():
    rows = []
    checks = []
    for n in (1, 2, 3, 5):
        queries = [QUERIES[i % len(QUERIES)] for i in range(n)]
        s_samples, s_msgs, s_bytes, s_time, s_out = run_serial(queries)
        c_samples, c_msgs, c_bytes, c_time, c_out = run_concurrent(queries)
        rows.append([n, s_samples, c_samples,
                     f"{s_samples / c_samples:.2f}x",
                     s_msgs, c_msgs,
                     f"{s_time * 1e3:.0f}", f"{c_time * 1e3:.0f}"])
        checks.append((n, s_out, c_out, s_samples, c_samples))
    return rows, checks


def test_e11_concurrent_vs_serial(benchmark, table):
    rows, checks = once(benchmark, run_scaling)
    table("E11: N concurrent queries vs N serial runs "
          f"({SIDE * SIDE} sensors, {EPOCHS} epochs)",
          ["N", "samples serial", "samples conc", "sampling gain",
           "msgs serial", "msgs conc", "ms serial", "ms conc"],
          rows)

    for n, serial_out, concurrent_out, s_samples, c_samples in checks:
        # Identical answers either way — the session layer is purely an
        # execution-sharing optimisation.
        assert serial_out == concurrent_out
        if n > 1:
            # The shared clock samples each board once per epoch,
            # serial runs pay it once per query.
            assert c_samples < s_samples
    # Sampling cost is flat in N for the epoch-mode queries: the N=5
    # workload re-uses the N=1 deployment's samples.
    n5 = [r for r in rows if r[0] == 5][0]
    n1 = [r for r in rows if r[0] == 1][0]
    assert n5[2] == n1[2]


if __name__ == "__main__":
    raise SystemExit(_bootstrap.main(__file__))
