"""E13 — facade overhead: the layered API vs driving engines directly.

The ``repro.api`` facade (PR: layered public API) wraps every epoch in
bookkeeping the raw engine loop does not pay: the driver's shared-epoch
context and intervention/hook dispatch, the session's stats tap and
result append, the handle's push-callback fan-out. This benchmark
prices that wrapper against the floor — a bare
:class:`~repro.core.engine.KSpotEngine` stepped in a plain loop on an
identical deployment — and holds the facade to **< 5 % wall-clock
overhead per epoch**, so "use the clean API" never needs a performance
caveat.

Both sides run the same MINT plan over the same seeded grid, so the
simulated work is identical; answers are checked bit-identical. Each
side is timed best-of-``REPEATS`` on a fresh deployment to damp
scheduler noise.
"""

import _bootstrap  # noqa: F401  src/ path wiring for script runs

import gc
import time

from repro.api import Deployment, EpochDriver
from repro.core.engine import KSpotEngine
from repro.query.plan import compile_query
from repro.query.validator import Schema
from repro.scenarios import grid_rooms_scenario

from conftest import once

QUERY = ("SELECT TOP 3 roomid, AVG(sound) FROM sensors "
         "GROUP BY roomid EPOCH DURATION 1 min")
SIDE = 8
ROOMS = 4
EPOCHS = 40
SEED = 13
REPEATS = 5

#: The acceptance bound: facade per-epoch wall-clock ≤ 1.05× raw.
MAX_OVERHEAD = 0.05
#: Noise floor for shared CI runners: a per-epoch absolute delta under
#: this is scheduler jitter, not facade cost, regardless of the ratio.
NOISE_FLOOR_SECONDS = 150e-6


def fresh_scenario():
    return grid_rooms_scenario(side=SIDE, rooms_per_axis=ROOMS, seed=SEED)


def run_raw():
    """The floor: one engine stepped in a plain loop."""
    scenario = fresh_scenario()
    board = scenario.network.node(
        next(iter(scenario.network.tree.sensor_ids))).board
    schema = Schema.for_deployment(board.attributes,
                                   group_keys=("roomid", "cluster"))
    _, plan = compile_query(QUERY, schema)
    engine = KSpotEngine(scenario.network, plan,
                         group_of=scenario.group_of)
    started = time.perf_counter()
    results = [engine.run_epoch() for _ in range(EPOCHS)]
    elapsed = time.perf_counter() - started
    return elapsed, results


def run_facade():
    """The full stack: Deployment → EpochDriver → SessionHandle."""
    scenario = fresh_scenario()
    deployment = Deployment.from_scenario(scenario)
    driver = EpochDriver(deployment)
    handle = deployment.submit(QUERY)
    started = time.perf_counter()
    driver.run(EPOCHS)
    elapsed = time.perf_counter() - started
    return elapsed, list(handle.results)


def run_experiment():
    """Interleave the two driving styles (raw, facade, raw, facade, …)
    so ambient drift — garbage-collection pressure from earlier
    benchmarks in the same process, CPU frequency changes — lands on
    both sides equally, and keep the best of each."""
    raw_time = api_time = float("inf")
    raw_results = api_results = None
    for _ in range(REPEATS):
        gc.collect()
        elapsed, raw_results = run_raw()
        raw_time = min(raw_time, elapsed)
        gc.collect()
        elapsed, api_results = run_facade()
        api_time = min(api_time, elapsed)
    overhead = api_time / raw_time - 1.0
    return raw_time, api_time, overhead, raw_results, api_results


def test_e13_facade_overhead(benchmark, table):
    raw_time, api_time, overhead, raw_results, api_results = once(
        benchmark, run_experiment)

    per_epoch_raw = raw_time / EPOCHS * 1e6
    per_epoch_api = api_time / EPOCHS * 1e6
    table(f"E13: facade overhead ({SIDE * SIDE} sensors, {EPOCHS} epochs, "
          f"best of {REPEATS})",
          ["driving style", "total ms", "per-epoch µs"],
          [["raw engine loop", f"{raw_time * 1e3:.1f}",
            f"{per_epoch_raw:.0f}"],
           ["Deployment + EpochDriver + SessionHandle",
            f"{api_time * 1e3:.1f}", f"{per_epoch_api:.0f}"],
           ["overhead", f"{(api_time - raw_time) * 1e3:+.1f}",
            f"{overhead * 100:+.1f}%"]])

    # The facade is an organisational layer, not an execution one: the
    # answers are the very same EpochResults...
    assert [r.items for r in api_results] == [r.items for r in raw_results]
    # ...and the wrapper costs less than 5% wall-clock per epoch (a
    # sub-noise-floor absolute delta passes too, so a descheduling
    # blip on a shared CI runner cannot flake the gate).
    per_epoch_delta = (api_time - raw_time) / EPOCHS
    assert overhead < MAX_OVERHEAD \
        or per_epoch_delta < NOISE_FLOOR_SECONDS, (
        f"facade overhead {overhead * 100:.1f}% exceeds the "
        f"{MAX_OVERHEAD * 100:.0f}% budget "
        f"({per_epoch_api:.0f}µs vs {per_epoch_raw:.0f}µs per epoch)"
    )


if __name__ == "__main__":
    raise SystemExit(_bootstrap.main(__file__))
