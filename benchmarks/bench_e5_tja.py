"""E5 — historic top-k: TJA vs TPUT vs centralized, bytes vs K.

The §III-B workload: "Find the K time instances with the highest
average temperature" over a 256-epoch buffered history on 36 nodes.
TJA's hierarchical union/join should beat TPUT's flat three rounds by
a wide margin, and both return exactly the centralized answer.
"""

import _bootstrap  # noqa: F401  src/ path wiring for script runs

from repro.core import Tja, Tput
from repro.core.aggregates import make_aggregate
from repro.network.messages import ObjectScore, ScoreListMessage
from repro.scenarios import grid_rooms_scenario

from conftest import correlated_series, once

WINDOW = 256
KS = (1, 5, 10, 20)


def centralized_bytes(series):
    scenario = grid_rooms_scenario(side=6, rooms_per_axis=2, seed=5)
    for node, column in sorted(series.items()):
        message = ScoreListMessage(items=tuple(
            ObjectScore(t, v) for t, v in sorted(column.items())))
        scenario.network.unicast_to_sink(node, message)
    return scenario.network.stats.payload_bytes


def run_sweep():
    base = grid_rooms_scenario(side=6, rooms_per_axis=2, seed=5)
    nodes = list(base.group_of)
    series = correlated_series(nodes, WINDOW, seed=5, noise=4.0)
    aggregate = make_aggregate("AVG", 0, 100)
    cent = centralized_bytes(series)
    rows = []
    outcomes = []
    for k in KS:
        a = grid_rooms_scenario(side=6, rooms_per_axis=2, seed=5)
        tja_result = Tja(a.network, aggregate, k, series).execute()
        b = grid_rooms_scenario(side=6, rooms_per_axis=2, seed=5)
        tput_result = Tput(b.network, aggregate, k, series).execute()
        assert [i.key for i in tja_result.items] == \
            [i.key for i in tput_result.items]
        rows.append([k, a.network.stats.payload_bytes,
                     b.network.stats.payload_bytes, cent,
                     tja_result.candidates, tja_result.cleanup_rounds])
        outcomes.append((a.network.stats.payload_bytes,
                         b.network.stats.payload_bytes))
    return rows, outcomes, cent


def test_e5_tja_vs_tput(benchmark, table):
    rows, outcomes, cent = once(benchmark, run_sweep)
    table(f"E5: historic TOP-K over {WINDOW}-epoch windows — 36 nodes",
          ["K", "TJA B", "TPUT B", "cent B", "|L|", "CL rounds"], rows)

    for tja_bytes, tput_bytes in outcomes:
        assert tja_bytes < tput_bytes        # hierarchy beats flat
        assert tja_bytes < cent / 2          # and beats shipping it all
        assert tput_bytes <= cent * 1.2      # TPUT ~ centralized at worst
    # Cost grows (weakly) with K for TJA.
    assert rows[0][1] <= rows[-1][1]


if __name__ == "__main__":
    raise SystemExit(_bootstrap.main(__file__))
