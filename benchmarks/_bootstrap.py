"""Script-mode path wiring for the experiment benchmarks.

``import _bootstrap`` as the first import of every ``bench_e*.py`` so
that ``python benchmarks/bench_e1_figure1.py`` finds the ``repro``
package without an exported PYTHONPATH: the repo keeps sources under
``src/``, which this module prepends to ``sys.path`` (no-op when repro
is already importable, e.g. under ``PYTHONPATH=src pytest``).

Also provides :func:`main` — the uniform ``__main__`` runner that
executes a benchmark file's tests through pytest (with the benchmark
fixture provided by pytest-benchmark) and prints the report tables.
"""

from __future__ import annotations

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    try:
        import repro  # noqa: F401
    except ImportError:
        sys.path.insert(0, str(_SRC))


def main(bench_file: str) -> int:
    """Run one benchmark module as a script: ``main(__file__)``."""
    import pytest

    return pytest.main([bench_file, "-q", "-s", "--benchmark-disable"])
