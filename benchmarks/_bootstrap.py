"""Script-mode path wiring for the experiment benchmarks.

``import _bootstrap`` as the first import of every ``bench_e*.py`` so
that ``python benchmarks/bench_e1_figure1.py`` finds the ``repro``
package without an exported PYTHONPATH: the repo keeps sources under
``src/``, which this module prepends to ``sys.path`` (no-op when repro
is already importable, e.g. under ``PYTHONPATH=src pytest``).

Also provides :func:`main` — the uniform ``__main__`` runner that
executes a benchmark file's tests through pytest (with the benchmark
fixture provided by pytest-benchmark) and prints the report tables —
and the shared BENCH writer: every table a benchmark prints through the
``table`` fixture is also recorded into a schema-versioned
``BENCH_<experiment>.json`` (via :func:`record_table` /
:func:`write_bench`), so each e1–e13 run leaves a machine-readable
artifact next to the human-readable report. ``BENCH_OUTPUT_DIR``
overrides the destination directory (default: the repo root).
"""

from __future__ import annotations

import json
import os
import platform
import re
import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    try:
        import repro  # noqa: F401
    except ImportError:
        sys.path.insert(0, str(_SRC))

#: Envelope version for every BENCH_e*.json (bump on layout changes).
BENCH_SCHEMA = "kspot-bench/1"

_REPO_ROOT = Path(__file__).resolve().parent.parent

#: Experiment tag at the head of a report title ("E11: ..." → e11).
_EXPERIMENT_RE = re.compile(r"^(E\d+)[a-z]?\b")

#: Tables accumulated per experiment over one process (a benchmark may
#: print several tables; the file is rewritten with all of them).
_tables: dict[str, list[dict]] = {}


def bench_output_dir() -> Path:
    """Where BENCH_*.json files land (``BENCH_OUTPUT_DIR`` or repo root)."""
    return Path(os.environ.get("BENCH_OUTPUT_DIR", _REPO_ROOT))


def write_bench(experiment: str, data: dict) -> Path:
    """Write one experiment's machine-readable report.

    ``data`` is wrapped in the schema envelope (schema tag, experiment
    id, python/platform) and written to ``BENCH_<experiment>.json``.
    """
    payload = {
        "schema": BENCH_SCHEMA,
        "experiment": experiment,
        "platform": {
            "python": platform.python_version(),
            "system": platform.system(),
            "machine": platform.machine(),
        },
        **data,
    }
    path = bench_output_dir() / f"BENCH_{experiment}.json"
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True, default=str) + "\n",
        encoding="utf-8")
    return path


def record_table(title: str, headers, rows) -> Path | None:
    """Record one printed report table into its experiment's BENCH file.

    Called by the benchmarks' shared ``table`` fixture; titles that do
    not start with an experiment tag ("E7: ...") are ignored.
    """
    match = _EXPERIMENT_RE.match(title.strip())
    if match is None:
        return None
    experiment = match.group(1).lower()
    tables = _tables.setdefault(experiment, [])
    entry = {"title": title, "headers": list(headers),
             "rows": [list(row) for row in rows]}
    for index, existing in enumerate(tables):
        if existing["title"] == title:  # re-run: replace, don't append
            tables[index] = entry
            break
    else:
        tables.append(entry)
    return write_bench(experiment, {"tables": tables})


def main(bench_file: str) -> int:
    """Run one benchmark module as a script: ``main(__file__)``."""
    import pytest

    return pytest.main([bench_file, "-q", "-s", "--benchmark-disable"])
