"""CI gate: fail when the hot path regresses against the committed
perf trajectory.

Usage::

    python benchmarks/check_perf_regression.py BENCH_perf.json \
        [--trajectory benchmarks/perf_trajectory.json] \
        [--at 100,400] [--tolerance 0.20]

The committed trajectory stores, per fleet size, the hot path's
epochs/sec and its speedup over the in-tree reference path, as measured
when the trajectory was last refreshed. Absolute epochs/sec are not
comparable across machines (a cold CI runner is easily 2× slower than
the laptop that wrote the file), so the gate is **machine-normalized**:
the fresh run's ``speedup_vs_reference`` at the gated fleet size must
not fall more than ``--tolerance`` (default 20 %) below the committed
speedup. Both runs execute on the same host within the same process,
so the ratio cancels host speed and isolates genuine hot-path
regressions. Absolute epochs/sec are printed for the record.

Refresh the trajectory deliberately with::

    PYTHONPATH=src python -m repro perf --compare-reference
    python benchmarks/check_perf_regression.py BENCH_perf.json --write
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

DEFAULT_TRAJECTORY = Path(__file__).resolve().parent / "perf_trajectory.json"

#: /4: the eventsim section (event-core throughput ratio over the
#: inline ship path at the anchor size).
TRAJECTORY_SCHEMA = "kspot-perf-trajectory/4"


def load(path: Path) -> dict:
    try:
        return json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        sys.exit(f"error: {path} not found")
    except json.JSONDecodeError as error:
        sys.exit(f"error: {path} is not valid JSON: {error}")


def sample_at(report: dict, n_nodes: int) -> dict:
    for sample in report.get("results", ()):
        if sample.get("n_nodes") == n_nodes:
            return sample
    sys.exit(f"error: report has no sample at N={n_nodes} "
             f"(sizes: {[s.get('n_nodes') for s in report.get('results', ())]})")


def write_trajectory(report: dict, path: Path) -> None:
    trajectory = {
        "schema": TRAJECTORY_SCHEMA,
        "source_schema": report.get("schema"),
        "workload": report.get("workload"),
        "results": [
            {
                "n_nodes": sample["n_nodes"],
                "epochs_per_sec": sample["epochs_per_sec"],
                "speedup_vs_reference": sample.get("speedup_vs_reference"),
            }
            for sample in report.get("results", ())
        ],
    }
    certifier = report.get("certifier")
    if certifier is not None:
        trajectory["certifier"] = {
            "n_groups": certifier["n_groups"],
            "speedup": certifier["speedup"],
        }
    columnar = report.get("columnar")
    if columnar is not None:
        trajectory["columnar"] = {
            "n_nodes": columnar["n_nodes"],
            "speedup": columnar["speedup"],
        }
    eventsim = report.get("eventsim")
    if eventsim is not None:
        trajectory["eventsim"] = {
            "n_nodes": eventsim["n_nodes"],
            "speedup": eventsim["speedup"],
        }
    path.write_text(json.dumps(trajectory, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    print(f"wrote {path}")


def gate_at(report: dict, trajectory: dict, n_nodes: int,
            tolerance: float) -> bool:
    """Gate one fleet size; returns True when it passes.

    A size absent from the committed trajectory is skipped with a note
    (the trajectory predates it — refresh with ``--write``); a gated
    size absent from the fresh *report* is a hard error, so the gate
    can never silently stop gating.
    """
    committed = None
    for sample in trajectory.get("results", ()):
        if sample.get("n_nodes") == n_nodes:
            committed = sample
            break
    if committed is None:
        print(f"N={n_nodes}: not in the committed trajectory — "
              f"skipped (refresh with --write to start gating it)")
        return True
    fresh = sample_at(report, n_nodes)

    fresh_speedup = fresh.get("speedup_vs_reference")
    committed_speedup = committed.get("speedup_vs_reference")
    print(f"N={n_nodes}: fresh {fresh['epochs_per_sec']:.2f} epochs/s "
          f"(committed {committed['epochs_per_sec']:.2f} on its host)")
    if fresh_speedup is None:
        sys.exit("error: report lacks speedup_vs_reference — run "
                 "`repro perf --compare-reference`")
    if committed_speedup is None:
        sys.exit("error: trajectory lacks speedup_vs_reference — refresh "
                 "it with --write from a --compare-reference run")

    floor = (1.0 - tolerance) * committed_speedup
    print(f"N={n_nodes}: speedup vs reference {fresh_speedup:.2f}x "
          f"(committed {committed_speedup:.2f}x, floor {floor:.2f}x)")
    if fresh_speedup < floor:
        print(f"FAIL: hot path regressed more than "
              f"{tolerance:.0%} against the committed trajectory "
              f"at N={n_nodes}")
        return False
    return True


def gate_certifier(report: dict, trajectory: dict,
                   tolerance: float) -> bool:
    """Gate the certifier microbench's cold-vs-incremental speedup.

    Mirrors :func:`gate_at`: absent from the committed trajectory →
    skipped with a note; present there but missing from the fresh
    report → hard error (the gate never silently stops gating). The
    speedup is machine-normalized by construction (both replays run
    interleaved on the same host over the same recorded stream).
    """
    committed = trajectory.get("certifier")
    if committed is None:
        print("certifier: not in the committed trajectory — "
              "skipped (refresh with --write to start gating it)")
        return True
    fresh = report.get("certifier")
    if fresh is None:
        sys.exit("error: report lacks the certifier section — run "
                 "a kspot-perf/3 `repro perf`")
    if fresh.get("n_groups") != committed.get("n_groups"):
        print(f"certifier: fresh run measured N={fresh.get('n_groups')} "
              f"groups, trajectory holds N={committed.get('n_groups')} — "
              f"skipped (size mismatch)")
        return True

    floor = (1.0 - tolerance) * committed["speedup"]
    print(f"certifier: incremental speedup {fresh['speedup']:.2f}x over "
          f"cold certify at N={fresh['n_groups']} "
          f"(committed {committed['speedup']:.2f}x, floor {floor:.2f}x)")
    if fresh["speedup"] < floor:
        print(f"FAIL: incremental certification regressed more than "
              f"{tolerance:.0%} against the committed trajectory")
        return False
    return True


def gate_columnar(report: dict, trajectory: dict,
                  tolerance: float) -> bool:
    """Gate the columnar microbench's kernel-vs-scalar speedup.

    Mirrors :func:`gate_certifier`: absent from the committed
    trajectory → skipped with a note; present there but missing from
    the fresh report → hard error. The speedup is machine-normalized
    by construction (columnar and scalar chunks run interleaved on the
    same host over the same deployment).
    """
    committed = trajectory.get("columnar")
    if committed is None:
        print("columnar: not in the committed trajectory — "
              "skipped (refresh with --write to start gating it)")
        return True
    fresh = report.get("columnar")
    if fresh is None:
        sys.exit("error: report lacks the columnar section — run "
                 "a kspot-perf/4 `repro perf`")
    if fresh.get("n_nodes") != committed.get("n_nodes"):
        print(f"columnar: fresh run measured N={fresh.get('n_nodes')} "
              f"nodes, trajectory holds N={committed.get('n_nodes')} — "
              f"skipped (size mismatch)")
        return True

    floor = (1.0 - tolerance) * committed["speedup"]
    print(f"columnar: kernel speedup {fresh['speedup']:.2f}x over the "
          f"scalar hot path at N={fresh['n_nodes']} "
          f"(committed {committed['speedup']:.2f}x, floor {floor:.2f}x)")
    if fresh["speedup"] < floor:
        print(f"FAIL: columnar kernel regressed more than "
              f"{tolerance:.0%} against the committed trajectory")
        return False
    return True


def gate_eventsim(report: dict, trajectory: dict,
                  tolerance: float) -> bool:
    """Gate the event-core microbench's zero-delay throughput ratio.

    Mirrors :func:`gate_columnar`: absent from the committed
    trajectory → skipped with a note; present there but missing from
    the fresh report → hard error. The ratio (event-core epochs/sec
    over inline epochs/sec, ~1.0 when the queue costs nothing) is
    machine-normalized by construction: both modes run interleaved on
    the same host over the same deployment, so a drop means the event
    layer itself got more expensive.
    """
    committed = trajectory.get("eventsim")
    if committed is None:
        print("eventsim: not in the committed trajectory — "
              "skipped (refresh with --write to start gating it)")
        return True
    fresh = report.get("eventsim")
    if fresh is None:
        sys.exit("error: report lacks the eventsim section — run "
                 "a kspot-perf/5 `repro perf`")
    if fresh.get("n_nodes") != committed.get("n_nodes"):
        print(f"eventsim: fresh run measured N={fresh.get('n_nodes')} "
              f"nodes, trajectory holds N={committed.get('n_nodes')} — "
              f"skipped (size mismatch)")
        return True

    floor = (1.0 - tolerance) * committed["speedup"]
    print(f"eventsim: event-core throughput {fresh['speedup']:.2f}x of "
          f"the inline ship path at N={fresh['n_nodes']} "
          f"(committed {committed['speedup']:.2f}x, floor {floor:.2f}x)")
    if fresh["speedup"] < floor:
        print(f"FAIL: event-core shipping regressed more than "
              f"{tolerance:.0%} against the committed trajectory")
        return False
    return True


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("report", help="fresh BENCH_perf.json to check")
    parser.add_argument("--trajectory", type=Path,
                        default=DEFAULT_TRAJECTORY)
    parser.add_argument("--at", default="100,400",
                        help="comma-separated fleet sizes the gate "
                             "inspects")
    parser.add_argument("--tolerance", type=float, default=0.20,
                        help="allowed fractional speedup regression")
    parser.add_argument("--write", action="store_true",
                        help="refresh the trajectory from the report "
                             "instead of gating")
    args = parser.parse_args(argv)

    report = load(Path(args.report))
    if args.write:
        write_trajectory(report, args.trajectory)
        return 0

    trajectory = load(args.trajectory)
    try:
        sizes = [int(part) for part in str(args.at).split(",")]
    except ValueError:
        sys.exit(f"error: --at wants comma-separated integers, "
                 f"got {args.at!r}")

    passed = all([gate_at(report, trajectory, n, args.tolerance)
                  for n in sizes]
                 + [gate_certifier(report, trajectory, args.tolerance),
                    gate_columnar(report, trajectory, args.tolerance),
                    gate_eventsim(report, trajectory, args.tolerance)])
    if not passed:
        return 1
    print("OK: hot path within the committed trajectory")
    return 0


if __name__ == "__main__":
    sys.exit(main())
