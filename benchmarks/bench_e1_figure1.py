"""E1 — Figure 1 / §III-A: the correctness walkthrough.

Regenerates the paper's motivating example: room averages, the naive
greedy answer (D, 76.5), and the correct answer (C, 75) from MINT, TAG
and the centralized oracle, with per-algorithm traffic.
"""

import _bootstrap  # noqa: F401  src/ path wiring for script runs

from repro.core import Centralized, Mint, MintConfig, NaiveTopK, Tag
from repro.core.aggregates import make_aggregate
from repro.scenarios import figure1_scenario

from conftest import once


def run_figure1():
    rows = []
    answers = {}
    for name, factory in (
        ("naive", lambda net, g: NaiveTopK(net, make_aggregate("AVG", 0, 100),
                                           1, g)),
        ("mint", lambda net, g: Mint(net, make_aggregate("AVG", 0, 100), 1,
                                     g, config=MintConfig(slack=0))),
        ("tag", lambda net, g: Tag(net, make_aggregate("AVG", 0, 100), 1, g)),
        ("centralized", lambda net, g: Centralized(
            net, make_aggregate("AVG", 0, 100), 1, g)),
    ):
        scenario = figure1_scenario()
        algorithm = factory(scenario.network, scenario.group_of)
        result = algorithm.run_epoch()
        if name == "mint":
            result = algorithm.run_epoch()  # the pruned update epoch
        stats = scenario.network.stats
        answers[name] = (result.top.key, result.top.score)
        rows.append([name, str(result.top.key), result.top.score,
                     "yes" if result.exact else "NO",
                     stats.messages, stats.payload_bytes])
    return rows, answers


def test_e1_figure1_walkthrough(benchmark, table):
    rows, answers = once(benchmark, run_figure1)
    table("E1: Figure 1 — TOP-1 room by AVERAGE(sound)",
          ["algorithm", "answer", "score", "exact", "messages", "bytes"],
          rows)
    print("   ground truth: A=74.5  B=41.0  C=75.0  D=64.0")

    # The paper's exact claims.
    assert answers["naive"] == ("D", 76.5)
    assert answers["mint"] == ("C", 75.0)
    assert answers["tag"] == ("C", 75.0)
    assert answers["centralized"] == ("C", 75.0)


if __name__ == "__main__":
    raise SystemExit(_bootstrap.main(__file__))
