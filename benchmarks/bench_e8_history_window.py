"""E8 — historic-horizontal queries: the WITH HISTORY window sweep.

"SELECT TOP K roomid, AVERAGE(sound) … WITH HISTORY {interval}": each
node reduces its local window before transmitting (§III-B), so the
radio cost is independent of the window length — only local storage
and sampling pay for deeper history. The bench verifies that, and that
windowed answers still match a windowed oracle.
"""

import _bootstrap  # noqa: F401  src/ path wiring for script runs

from repro.core import KSpotEngine, is_valid_top_k, oracle_scores
from repro.core.aggregates import make_aggregate
from repro.query.plan import compile_query
from repro.query.validator import Schema
from repro.scenarios import grid_rooms_scenario
from repro.sensing.modalities import get_modality

from conftest import once

WINDOWS = (8, 32, 128)
EPOCHS = 140
K = 4


def windowed_oracle(scenario, epoch, window, aggregate):
    modality = get_modality("sound")
    averages = {}
    for node in scenario.group_of:
        start = max(0, epoch - window + 1)
        values = [modality.quantize(scenario.field.value(node, t))
                  for t in range(start, epoch + 1)]
        averages[node] = sum(values) / len(values)
    return oracle_scores(averages, scenario.group_of, aggregate)


def run_sweep():
    schema = Schema.for_deployment(("sound",))
    aggregate = make_aggregate("AVG", 0, 100)
    rows = []
    byte_costs = []
    for window in WINDOWS:
        scenario = grid_rooms_scenario(side=6, rooms_per_axis=3, seed=8)
        text = (f"SELECT TOP {K} roomid, AVERAGE(sound) FROM sensors "
                f"GROUP BY roomid WITH HISTORY {window} s "
                f"EPOCH DURATION 1 s")
        _, plan = compile_query(text, schema)
        engine = KSpotEngine(scenario.network, plan,
                             group_of=scenario.group_of)
        results = engine.run(EPOCHS)
        final = results[-1]
        truth = windowed_oracle(scenario, EPOCHS - 1, window, aggregate)
        correct = is_valid_top_k(final.items, truth, K, tolerance=1e-6)
        stats = scenario.network.stats
        rows.append([window, stats.messages, stats.payload_bytes,
                     "yes" if correct else "NO"])
        byte_costs.append(stats.payload_bytes)
        assert correct
    return rows, byte_costs


def test_e8_history_window(benchmark, table):
    rows, byte_costs = once(benchmark, run_sweep)
    table(f"E8: WITH HISTORY window sweep — TOP-{K} rooms, {EPOCHS} epochs",
          ["window (epochs)", "messages", "bytes", "matches oracle"], rows)

    # Local reduction: radio cost does not grow with the window. (It
    # usually shrinks slightly — longer windows smooth the aggregate, so
    # cached views change less.)
    assert max(byte_costs) <= min(byte_costs) * 1.15


if __name__ == "__main__":
    raise SystemExit(_bootstrap.main(__file__))
