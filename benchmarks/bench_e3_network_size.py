"""E3 — scalability: traffic vs network size.

Fixed K, growing deployments (16 → 144 sensors). Views deepen with the
tree, so in-network pruning removes more tuples per epoch as the
network grows: the MINT/TAG saving should widen (and the centralized
cost should blow up superlinearly — readings cross more hops).
"""

import _bootstrap  # noqa: F401  src/ path wiring for script runs

from repro.core import Centralized, Mint, MintConfig, Tag
from repro.core.aggregates import make_aggregate
from repro.scenarios import grid_rooms_scenario

from conftest import once

EPOCHS = 20
SIDES = (4, 6, 8, 10, 12)


def run_sweep():
    rows = []
    savings = []
    centralized_per_node = []
    for side in SIDES:
        n = side * side
        byte_counts = {}
        for name in ("mint", "tag", "centralized"):
            scenario = grid_rooms_scenario(side=side, rooms_per_axis=4,
                                           seed=3)
            groups = {node: node for node in scenario.group_of}
            aggregate = make_aggregate("AVG", 0, 100)
            if name == "mint":
                algorithm = Mint(scenario.network, aggregate, 1, groups,
                                 config=MintConfig(slack=1))
            elif name == "tag":
                algorithm = Tag(scenario.network, aggregate, 1, groups)
            else:
                algorithm = Centralized(scenario.network, aggregate, 1,
                                        groups)
            for _ in range(EPOCHS):
                algorithm.run_epoch()
            byte_counts[name] = scenario.network.stats.payload_bytes
        saving = 100.0 * (1 - byte_counts["mint"] / byte_counts["tag"])
        savings.append(saving)
        centralized_per_node.append(byte_counts["centralized"] / n)
        rows.append([n, byte_counts["mint"], byte_counts["tag"],
                     byte_counts["centralized"], saving])
    return rows, savings, centralized_per_node


def test_e3_network_size(benchmark, table):
    rows, savings, centralized_per_node = once(benchmark, run_sweep)
    table(f"E3: traffic vs network size — TOP-1 node ranking, "
          f"{EPOCHS} epochs",
          ["sensors", "mint B", "tag B", "cent B", "saving %"], rows)

    # Savings widen with scale…
    assert savings[-1] > savings[0]
    assert savings[-1] > 40.0
    # …while the centralized baseline's per-node cost keeps growing
    # (each reading pays ever more hops).
    assert centralized_per_node[-1] > centralized_per_node[0]
    # MINT always beats TAG, and beats the centralized collection from
    # 36 sensors up. (At 16 sensors the creation-phase full views cost
    # about what they save — the crossover is real and reported. TAG ≥
    # centralized throughout: with one group per sensor, 8-byte view
    # tuples never beat 6-byte raw readings, which is exactly why the
    # sink-side top-k operator of §I is not enough.)
    for row in rows:
        assert row[1] < row[2]
        if row[0] >= 36:
            assert row[1] < row[3]


if __name__ == "__main__":
    raise SystemExit(_bootstrap.main(__file__))
