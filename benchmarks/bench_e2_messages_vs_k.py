"""E2 — System Panel: traffic vs K (MINT vs TAG vs centralized).

The ranking depth K is the user's main knob (the demo lets attendees
adapt it). This bench sweeps K on a 64-node / 16-room grid (cluster
ranking) and on the same grid ranking individual nodes, reporting
messages and payload bytes per algorithm over 30 epochs.

Shape expectations: MINT ⪅ TAG ≪ centralized; MINT's edge over TAG
shrinks as K approaches the number of groups (nothing left to prune).
"""

import _bootstrap  # noqa: F401  src/ path wiring for script runs

from repro.core import Centralized, Mint, MintConfig, Tag
from repro.core.aggregates import make_aggregate
from repro.scenarios import grid_rooms_scenario

from conftest import once

EPOCHS = 30
KS = (1, 2, 4, 8, 16)


def run_sweep(node_ranking):
    rows = []
    savings = {}
    for k in KS:
        cells = [k]
        byte_counts = {}
        for name in ("mint", "tag", "centralized"):
            scenario = grid_rooms_scenario(side=8, rooms_per_axis=4, seed=2)
            groups = ({n: n for n in scenario.group_of} if node_ranking
                      else scenario.group_of)
            aggregate = make_aggregate("AVG", 0, 100)
            if name == "mint":
                algorithm = Mint(scenario.network, aggregate, k, groups,
                                 config=MintConfig(slack=min(k, 4)))
            elif name == "tag":
                algorithm = Tag(scenario.network, aggregate, k, groups)
            else:
                algorithm = Centralized(scenario.network, aggregate, k,
                                        groups)
            for _ in range(EPOCHS):
                algorithm.run_epoch()
            stats = scenario.network.stats
            byte_counts[name] = stats.payload_bytes
            cells.extend([stats.messages, stats.payload_bytes])
        saving = 100.0 * (1 - byte_counts["mint"] / byte_counts["tag"])
        savings[k] = saving
        cells.append(saving)
        rows.append(cells)
    return rows, savings


def check_shape(rows, savings):
    for row in rows:
        k, mint_bytes, tag_bytes, centralized_bytes = (row[0], row[2],
                                                       row[4], row[6])
        assert mint_bytes <= tag_bytes * 1.01
        # Ranking *nodes* means one group per sensor: aggregation cannot
        # compress, so TAG's 8-byte view tuples exceed the centralized
        # 6-byte raw readings. MINT beats both while K stays small; the
        # crossover where keep-count ≈ subtree sizes (large K) is real
        # and reported, not hidden.
        if k <= 4:
            assert mint_bytes < centralized_bytes
    # Pruning pays most at small K.
    assert savings[1] > savings[16]
    assert savings[1] > 5.0


HEADERS = ["K", "mint msgs", "mint B", "tag msgs", "tag B",
           "cent msgs", "cent B", "saving %"]


def test_e2_cluster_ranking(benchmark, table):
    rows, savings = once(benchmark, lambda: run_sweep(node_ranking=False))
    table(f"E2a: traffic vs K — 64 nodes, 16 rooms, {EPOCHS} epochs",
          HEADERS, rows)
    for row in rows:
        assert row[2] <= row[4] * 1.01   # MINT ⪅ TAG
        assert row[4] < row[6]           # TAG ≪ centralized
    assert savings[1] > savings[16]


def test_e2_node_ranking(benchmark, table):
    rows, savings = once(benchmark, lambda: run_sweep(node_ranking=True))
    table(f"E2b: traffic vs K — 64 nodes, ranking nodes, {EPOCHS} epochs",
          HEADERS, rows)
    check_shape(rows, savings)
    assert savings[1] > 40.0  # the 'enormous savings' regime


if __name__ == "__main__":
    raise SystemExit(_bootstrap.main(__file__))
