"""E6 — TJA phase breakdown (LB / HJ / CL) and candidate-set growth.

Decomposes the TJA cost of E5 by protocol phase, sweeping the noise of
the shared signal: the more the nodes disagree on which instants were
hot, the larger L_sink grows, the more the Hierarchical-Join phase
pays, and the more often Clean-Up must expand.
"""

import _bootstrap  # noqa: F401  src/ path wiring for script runs

from repro.core import Tja
from repro.core.aggregates import make_aggregate
from repro.scenarios import grid_rooms_scenario

from conftest import correlated_series, once

WINDOW = 192
K = 10
NOISES = (1.0, 4.0, 8.0, 16.0)


def run_breakdown():
    rows = []
    candidate_counts = []
    for noise in NOISES:
        scenario = grid_rooms_scenario(side=6, rooms_per_axis=2, seed=6)
        nodes = list(scenario.group_of)
        series = correlated_series(nodes, WINDOW, seed=6, noise=noise)
        aggregate = make_aggregate("AVG", 0, 100)
        result = Tja(scenario.network, aggregate, K, series).execute()
        phases = dict(result.per_phase_bytes)
        rows.append([noise, phases.get("LB", 0), phases.get("HJ", 0),
                     phases.get("CL", 0), result.candidates,
                     result.cleanup_rounds])
        candidate_counts.append(result.candidates)
    return rows, candidate_counts


def test_e6_phase_breakdown(benchmark, table):
    rows, candidate_counts = once(benchmark, run_breakdown)
    table(f"E6: TJA phase bytes vs node disagreement — K={K}, "
          f"{WINDOW}-epoch windows",
          ["noise σ", "LB B", "HJ B", "CL B", "|candidates|", "CL rounds"],
          rows)

    # Candidate sets grow with disagreement…
    assert candidate_counts[-1] > candidate_counts[0]
    for row in rows:
        lb_bytes, hj_bytes = row[1], row[2]
        # …and the join phase always dominates the id union.
        assert hj_bytes > lb_bytes
        # Candidates can never be fewer than K.
        assert row[4] >= K


if __name__ == "__main__":
    raise SystemExit(_bootstrap.main(__file__))
