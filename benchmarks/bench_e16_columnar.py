"""E16 — columnar epoch kernel: vectorized sensing vs the scalar hot path.

The columnar PR restructures the epoch inner loop around
structure-of-arrays batch sampling (:mod:`repro.network.columnar`):
one ``batch_values`` call per field covers the whole fleet, the
per-``(field, modality)`` sampling plan is cached against the alive
tuple's identity, and ``ZipfEventField`` jitter comes from a
counter-based hash RNG that vectorizes bit-identically under numpy.
This benchmark prices that claim on the workload the kernel was built
for: :func:`repro.perf.columnar_fleet` builds a square grid over one
shared Zipf field monitored by a FILA MAX top-25 session, and
:func:`repro.perf.measure_columnar` drives it twice —

* **scalar** (``columnar.scalar_path()``): the PR 6 fused hot path,
  one ``field.value`` call per node per epoch,
* **columnar** (the default): the batched kernel,

with byte-identical result streams (items, exactness, bounds), energy
ledgers and sample counts asserted on fresh deployments before
anything is timed. Timing is chunked-min with modes interleaved chunk
by chunk, the noise discipline ``docs/PERF.md`` documents. The
acceptance bound holds the columnar kernel to **≥ 2× epochs/sec at
N = 400** over the scalar hot path — the floor the ISSUE sets and the
CI regression gate (``check_perf_regression.py``) keeps honest
thereafter.
"""

import _bootstrap  # noqa: F401  src/ path wiring for script runs

from repro.perf import measure_columnar

from conftest import once

#: Fleet sizes priced (400 is the gated size).
SIZES = (100, 400)
CHUNKS = 20
CHUNK_EPOCHS = 10
SEED = 11

#: The acceptance bound at N=400 (the ISSUE's floor).
MIN_SPEEDUP = 2.0


def run_experiment():
    return [measure_columnar(n=n, chunks=CHUNKS,
                             chunk_epochs=CHUNK_EPOCHS, seed=SEED)
            for n in SIZES]


def test_e16_columnar_kernel(benchmark, table):
    measurements = once(benchmark, run_experiment)

    rows = []
    for m in measurements:
        rows.append([m["n_nodes"], m["backend"],
                     f"{m['epochs_per_sec_scalar']:.0f}",
                     f"{m['epochs_per_sec_columnar']:.0f}",
                     f"{m['speedup']:.2f}x"])
    table(f"E16: columnar epoch kernel (Zipf FILA, min over {CHUNKS} "
          f"chunks of {CHUNK_EPOCHS} epochs)",
          ["nodes", "backend", "scalar epochs/s",
           "columnar epochs/s", "speedup"],
          rows)

    # measure_columnar raises if the columnar stream diverges from the
    # scalar hot path's, so reaching here already proves equivalence
    # on the measured workload; the gate below is the throughput floor.
    at_400 = next(m for m in measurements if m["n_nodes"] == 400)
    assert at_400["speedup"] >= MIN_SPEEDUP, (
        f"columnar kernel at N=400 is only {at_400['speedup']:.2f}x "
        f"over the scalar hot path (floor {MIN_SPEEDUP:.1f}x)"
    )


if __name__ == "__main__":
    raise SystemExit(_bootstrap.main(__file__))
