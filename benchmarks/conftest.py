"""Shared helpers for the experiment benchmarks (E1–E10).

Every benchmark regenerates one table/figure of the evaluation plan in
DESIGN.md §3: it prints the series the paper's System Panel (or the
constituent algorithms' papers) report, asserts the qualitative shape,
and times the run under pytest-benchmark.

Run:  pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import math
import random

import pytest

import _bootstrap
from repro.gui.render import render_table


def report(title: str, headers, rows) -> None:
    """Print one regenerated table, paper-style — and record it into
    the experiment's ``BENCH_<e*>.json`` (see `_bootstrap.record_table`)."""
    print()
    print(f"== {title} ==")
    print(render_table(headers, rows))
    _bootstrap.record_table(title, headers, rows)


def once(benchmark, fn):
    """Time ``fn`` exactly once (simulations are deterministic; there
    is nothing to average) and return its result."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def correlated_series(nodes, epochs, seed=0, noise=3.0, lo=0.0, hi=100.0):
    """A shared diurnal signal plus per-node noise — the temperature
    workload historic queries rank (hot instants are hot everywhere)."""
    rng = random.Random(seed)
    base = [
        (lo + hi) / 2
        + (hi - lo) / 3 * math.sin(2 * math.pi * t / max(16, epochs // 4))
        + rng.gauss(0, noise)
        for t in range(epochs)
    ]
    series = {}
    for node in nodes:
        series[node] = {
            t: min(hi, max(lo, base[t] + rng.gauss(0, noise)))
            for t in range(epochs)
        }
    return series


@pytest.fixture
def table():
    """The report helper as a fixture (keeps imports out of benches)."""
    return report
