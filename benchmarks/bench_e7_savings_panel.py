"""E7 — the demo itself: the System Panel's continuous savings feed.

Reproduces what conference attendees see projected on the wall: the
conference deployment (15 motes, 6 clusters) running the TOP-3 acoustic
query with a TAG shadow baseline, and the per-epoch savings series the
System Panel plots. Every reported answer is exact.
"""

import _bootstrap  # noqa: F401  src/ path wiring for script runs

from repro.api import Deployment, EpochDriver
from repro.core.mint import MintConfig
from repro.gui.render import render_savings
from repro.scenarios import conference_scenario

from conftest import once

EPOCHS = 60
QUERY = ("SELECT TOP 3 roomid, AVERAGE(sound) FROM sensors "
         "GROUP BY roomid EPOCH DURATION 1 min")


def run_demo():
    scenario = conference_scenario(seed=7, room_step=2.0, sensor_sigma=0.2)
    shadow = conference_scenario(seed=7, room_step=2.0, sensor_sigma=0.2)
    deployment = Deployment.from_scenario(
        scenario, baseline_network=shadow.network,
        mint_config=MintConfig(slack=0, adaptive=True))
    handle = deployment.submit(QUERY)
    EpochDriver(deployment).run(EPOCHS)
    panel = handle.system_panel
    exact = all(result.exact for result in handle.results)
    return panel, handle.results, exact


def test_e7_savings_panel(benchmark, table):
    panel, results, exact = once(benchmark, run_demo)

    window = 10
    rows = []
    for start in range(0, EPOCHS, window):
        chunk = panel.samples[start:start + window]
        messages = sum(s.messages for s in chunk)
        baseline = sum(s.baseline_messages for s in chunk)
        byte_cost = sum(s.payload_bytes for s in chunk)
        byte_base = sum(s.baseline_payload_bytes for s in chunk)
        rows.append([f"{start}-{start + window - 1}", messages, baseline,
                     byte_cost, byte_base,
                     100.0 * (1 - byte_cost / byte_base)])
    table(f"E7: System Panel feed — conference demo, {EPOCHS} epochs",
          ["epochs", "msgs", "tag msgs", "bytes", "tag bytes", "saving %"],
          rows)
    print(render_savings(panel.samples, metric="bytes"))

    cumulative = panel.cumulative
    assert exact                                  # answers never degrade
    assert cumulative.payload_bytes <= cumulative.baseline_payload_bytes
    assert cumulative.byte_saving_pct >= 0.0
    assert len(panel.samples) == EPOCHS


if __name__ == "__main__":
    raise SystemExit(_bootstrap.main(__file__))
