"""E4 — System Panel: energy savings and network lifetime.

Runs the continuous query for 100 epochs on 64 nodes and reads the
per-node joule ledgers. The network's lifetime is the bottleneck
node's (the first to exhaust its battery — a sink neighbour relaying
everyone's traffic), so the metric that matters is the *maximum*
per-node burn rate, not the average.
"""

import _bootstrap  # noqa: F401  src/ path wiring for script runs

from repro.core import Centralized, Mint, MintConfig, Tag
from repro.core.aggregates import make_aggregate
from repro.network.energy import lifetime_epochs
from repro.scenarios import grid_rooms_scenario

from conftest import once

EPOCHS = 100


def run_energy():
    rows = []
    metrics = {}
    for name in ("mint", "tag", "centralized"):
        scenario = grid_rooms_scenario(side=8, rooms_per_axis=4, seed=4)
        groups = {n: n for n in scenario.group_of}
        aggregate = make_aggregate("AVG", 0, 100)
        if name == "mint":
            algorithm = Mint(scenario.network, aggregate, 2, groups,
                             config=MintConfig(slack=2))
        elif name == "tag":
            algorithm = Tag(scenario.network, aggregate, 2, groups)
        else:
            algorithm = Centralized(scenario.network, aggregate, 2, groups)
        for _ in range(EPOCHS):
            algorithm.run_epoch()
        network = scenario.network
        totals = [network.ledger(n).total for n in network.tree.sensor_ids]
        bottleneck_id, bottleneck_joules = network.bottleneck_energy()
        per_epoch = bottleneck_joules / EPOCHS
        lifetime = lifetime_epochs(network.energy, per_epoch)
        metrics[name] = dict(
            mean_mj=1e3 * sum(totals) / len(totals),
            bottleneck_mj=1e3 * bottleneck_joules,
            bottleneck=bottleneck_id,
            lifetime=lifetime,
            radio_mj=1e3 * network.stats.radio_joules,
        )
        rows.append([name, metrics[name]["radio_mj"],
                     metrics[name]["mean_mj"],
                     metrics[name]["bottleneck_mj"],
                     f"{lifetime:,.0f}"])
    return rows, metrics


def test_e4_energy_and_lifetime(benchmark, table):
    rows, metrics = once(benchmark, run_energy)
    table(f"E4: energy over {EPOCHS} epochs — 64 nodes, TOP-2 nodes",
          ["algorithm", "radio mJ", "mean node mJ", "bottleneck mJ",
           "lifetime (epochs)"], rows)

    assert metrics["mint"]["radio_mj"] < metrics["tag"]["radio_mj"]
    assert metrics["mint"]["radio_mj"] < metrics["centralized"]["radio_mj"]
    # Lifetime is bottleneck-limited; MINT extends it over both
    # baselines. (TAG vs centralized flips in node-ranking mode: one
    # group per sensor defeats aggregation — see E2b/E3.)
    assert metrics["mint"]["lifetime"] > metrics["tag"]["lifetime"]
    assert metrics["mint"]["lifetime"] > metrics["centralized"]["lifetime"]


if __name__ == "__main__":
    raise SystemExit(_bootstrap.main(__file__))
