"""Run the doctests embedded in module documentation."""

import doctest

import pytest

from repro import api, units
from repro.network import packets
from repro.sensing import traces


@pytest.mark.parametrize("module", [api, units, packets, traces],
                         ids=lambda m: m.__name__)
def test_module_doctests(module):
    results = doctest.testmod(module)
    assert results.failed == 0
    assert results.attempted > 0
