"""KSpotServer: submission, streaming, panels, savings."""

import pytest

from repro.errors import PlanError, QueryError
from repro.gui import DisplayPanel
from repro.query.plan import Algorithm
from repro.scenarios import conference_scenario, figure1_scenario
from repro.server import KSpotServer


class TestSubmission:
    def test_schema_derived_from_boards(self):
        scenario = figure1_scenario()
        server = KSpotServer(scenario.network, group_of=scenario.group_of)
        plan = server.submit("SELECT TOP 1 roomid, AVERAGE(sound) "
                             "FROM sensors GROUP BY roomid")
        assert plan.algorithm is Algorithm.MINT

    def test_invalid_query_rejected(self):
        scenario = figure1_scenario()
        server = KSpotServer(scenario.network, group_of=scenario.group_of)
        with pytest.raises(QueryError):
            server.submit("SELECT AVG(humidity) FROM sensors")

    def test_run_before_submit_rejected(self):
        scenario = figure1_scenario()
        server = KSpotServer(scenario.network, group_of=scenario.group_of)
        with pytest.raises(PlanError, match="no query"):
            server.run(1)


class TestStreaming:
    def test_results_collected(self):
        scenario = figure1_scenario()
        server = KSpotServer(scenario.network, group_of=scenario.group_of)
        server.submit("SELECT TOP 2 roomid, AVG(sound) FROM sensors "
                      "GROUP BY roomid EPOCH DURATION 1 min")
        results = server.run(3)
        assert len(results) == 3
        assert [r.top.key for r in results] == ["C", "C", "C"]
        assert server.results == results

    def test_display_panel_rerank(self):
        scenario = figure1_scenario()
        display = DisplayPanel(
            width=50, height=30,
            positions={n: (min(p[0], 50), min(max(p[1], 0), 30))
                       for n, p in scenario.network.topology.positions.items()},
            cluster_of=dict(scenario.group_of))
        server = KSpotServer(scenario.network, group_of=scenario.group_of,
                             display=display)
        server.submit("SELECT TOP 2 roomid, AVG(sound) FROM sensors "
                      "GROUP BY roomid")
        server.run(1)
        assert display.bullets[0].cluster == "C"
        assert display.bullets[0].rank == 1

    def test_resubmit_resets_results(self):
        scenario = figure1_scenario()
        server = KSpotServer(scenario.network, group_of=scenario.group_of)
        server.submit("SELECT TOP 1 roomid, AVG(sound) FROM sensors "
                      "GROUP BY roomid")
        server.run(2)
        server.submit("SELECT TOP 2 roomid, AVG(sound) FROM sensors "
                      "GROUP BY roomid")
        assert server.results == []


class TestSavingsPanel:
    def test_shadow_baseline_feeds_system_panel(self):
        scenario = conference_scenario(seed=7)
        shadow = conference_scenario(seed=7)
        server = KSpotServer(scenario.network, group_of=scenario.group_of,
                             baseline_network=shadow.network)
        server.submit("SELECT TOP 1 roomid, AVG(sound) FROM sensors "
                      "GROUP BY roomid EPOCH DURATION 1 min")
        server.run(6)
        panel = server.system_panel
        assert panel is not None
        assert len(panel.samples) == 6
        # MINT never costs more than TAG on the same readings.
        assert panel.cumulative.payload_bytes <= \
            panel.cumulative.baseline_payload_bytes

    def test_identical_answers_to_baseline(self):
        scenario = conference_scenario(seed=7)
        shadow = conference_scenario(seed=7)
        server = KSpotServer(scenario.network, group_of=scenario.group_of,
                             baseline_network=shadow.network)
        server.submit("SELECT TOP 2 roomid, AVG(sound) FROM sensors "
                      "GROUP BY roomid EPOCH DURATION 1 min")
        for result in server.stream(5):
            baseline_result = server.baseline_engine.algorithm  # noqa: F841
        # The shadow ran the same number of epochs.
        assert shadow.network.epoch == scenario.network.epoch


class TestHistoricLifecycle:
    def test_run_historic(self):
        scenario = conference_scenario(seed=8)
        server = KSpotServer(scenario.network, group_of=scenario.group_of)
        server.submit("SELECT TOP 3 epoch, AVG(sound) FROM sensors "
                      "GROUP BY epoch WITH HISTORY 12 s EPOCH DURATION 1 s")
        result = server.run_historic()
        assert len(result.items) == 3
        assert result.items[0].score >= result.items[-1].score
