"""The deprecated ``KSpotServer`` shim: every legacy entry point still
behaves exactly like the pre-facade server, delegates to the
``repro.api`` layers, and warns — exactly once per entry point per
server instance.

These are the only first-party callers of the legacy facade. The rest
of the repo runs with ``KSpotServer`` deprecation warnings promoted to
errors (see pytest.ini), and that promotion applies *here too*: every
deliberate legacy call that is expected to warn is wrapped in
``pytest.warns`` (via the :func:`legacy` helper), which consumes the
warning. A call that warned unexpectedly — or a wrapped call that went
silent — fails the test, so the suite leaks no warnings and the
once-per-entry-point contract is enforced on every use.
"""

import warnings

import pytest

from repro.errors import PlanError, QueryError, UnknownSessionError
from repro.gui import DisplayPanel
from repro.query.plan import Algorithm
from repro.scenarios import (
    conference_scenario,
    figure1_scenario,
    grid_rooms_scenario,
)
from repro.server import KSpotServer

MONITOR = ("SELECT TOP 2 roomid, AVG(sound) FROM sensors "
           "GROUP BY roomid EPOCH DURATION 1 min")
MONITOR_MAX = ("SELECT TOP 1 roomid, MAX(sound) FROM sensors "
               "GROUP BY roomid EPOCH DURATION 1 min")
HISTORIC = ("SELECT TOP 3 epoch, AVG(sound) FROM sensors "
            "GROUP BY epoch WITH HISTORY 6 s EPOCH DURATION 1 s")


def legacy(name: str):
    """Expect (and consume) the one deprecation warning of an entry
    point's first use on a server instance."""
    return pytest.warns(DeprecationWarning,
                        match=rf"KSpotServer\.{name} is deprecated")


def figure1_server():
    scenario = figure1_scenario()
    return KSpotServer(scenario.network, group_of=scenario.group_of)


def grid_server(seed=5):
    scenario = grid_rooms_scenario(side=4, rooms_per_axis=2, seed=seed)
    return scenario, KSpotServer(scenario.network,
                                 group_of=scenario.group_of)


class TestSubmission:
    def test_schema_derived_from_boards(self):
        server = figure1_server()
        with legacy("submit"):
            plan = server.submit("SELECT TOP 1 roomid, AVERAGE(sound) "
                                 "FROM sensors GROUP BY roomid")
        assert plan.algorithm is Algorithm.MINT

    def test_invalid_query_rejected(self):
        server = figure1_server()
        with legacy("submit"), pytest.raises(QueryError):
            server.submit("SELECT AVG(humidity) FROM sensors")

    def test_run_before_submit_rejected(self):
        server = figure1_server()
        with legacy("run"), pytest.raises(PlanError, match="no query"):
            server.run(1)


class TestStreaming:
    def test_results_collected(self):
        server = figure1_server()
        with legacy("submit"):
            server.submit("SELECT TOP 2 roomid, AVG(sound) FROM sensors "
                          "GROUP BY roomid EPOCH DURATION 1 min")
        with legacy("run"):
            results = server.run(3)
        assert len(results) == 3
        assert [r.top.key for r in results] == ["C", "C", "C"]
        with legacy("results"):
            assert server.results == results

    def test_display_panel_rerank(self):
        scenario = figure1_scenario()
        display = DisplayPanel(
            width=50, height=30,
            positions={n: (min(p[0], 50), min(max(p[1], 0), 30))
                       for n, p in
                       scenario.network.topology.positions.items()},
            cluster_of=dict(scenario.group_of))
        server = KSpotServer(scenario.network, group_of=scenario.group_of,
                             display=display)
        with legacy("submit"):
            server.submit("SELECT TOP 2 roomid, AVG(sound) FROM sensors "
                          "GROUP BY roomid")
        with legacy("run"):
            server.run(1)
        assert display.bullets[0].cluster == "C"
        assert display.bullets[0].rank == 1

    def test_resubmit_resets_results(self):
        server = figure1_server()
        with legacy("submit"):
            server.submit("SELECT TOP 1 roomid, AVG(sound) FROM sensors "
                          "GROUP BY roomid")
        with legacy("run"):
            server.run(2)
        # Second submit on the same instance is deliberately silent.
        server.submit("SELECT TOP 2 roomid, AVG(sound) FROM sensors "
                      "GROUP BY roomid")
        with legacy("results"):
            assert server.results == []


class TestSavingsPanel:
    def test_shadow_baseline_feeds_system_panel(self):
        scenario = conference_scenario(seed=7)
        shadow = conference_scenario(seed=7)
        server = KSpotServer(scenario.network, group_of=scenario.group_of,
                             baseline_network=shadow.network)
        with legacy("submit"):
            server.submit("SELECT TOP 1 roomid, AVG(sound) FROM sensors "
                          "GROUP BY roomid EPOCH DURATION 1 min")
        with legacy("run"):
            server.run(6)
        with legacy("system_panel"):
            panel = server.system_panel
        assert panel is not None
        assert len(panel.samples) == 6
        # MINT never costs more than TAG on the same readings.
        assert panel.cumulative.payload_bytes <= \
            panel.cumulative.baseline_payload_bytes

    def test_identical_answers_to_baseline(self):
        scenario = conference_scenario(seed=7)
        shadow = conference_scenario(seed=7)
        server = KSpotServer(scenario.network, group_of=scenario.group_of,
                             baseline_network=shadow.network)
        with legacy("submit"):
            server.submit("SELECT TOP 2 roomid, AVG(sound) FROM sensors "
                          "GROUP BY roomid EPOCH DURATION 1 min")
        with legacy("stream"), legacy("baseline_engine"):
            for _result in server.stream(5):
                assert server.baseline_engine is not None
        # The shadow ran the same number of epochs.
        assert shadow.network.epoch == scenario.network.epoch


class TestHistoricLifecycle:
    def test_run_historic(self):
        scenario = conference_scenario(seed=8)
        server = KSpotServer(scenario.network, group_of=scenario.group_of)
        with legacy("submit"):
            server.submit("SELECT TOP 3 epoch, AVG(sound) FROM sensors "
                          "GROUP BY epoch WITH HISTORY 12 s "
                          "EPOCH DURATION 1 s")
        with legacy("run_historic"):
            result = server.run_historic()
        assert len(result.items) == 3
        assert result.items[0].score >= result.items[-1].score

    def test_legacy_stream_rejects_historic(self):
        """The old server raised on stream()ing a one-shot query; the
        shim still does."""
        _, server = grid_server()
        with legacy("submit"):
            server.submit(HISTORIC)
        with legacy("run"), pytest.raises(PlanError, match="run_historic"):
            server.run(3)


class TestLegacyFlowSemantics:
    def test_legacy_submit_discards_sessions(self):
        """The single-query facade still behaves like the old server:
        submit replaces everything."""
        _, server = grid_server()
        with legacy("submit_session"):
            server.submit_session(MONITOR)
        server.submit_session(MONITOR_MAX)
        with legacy("submit"):
            plan = server.submit(
                "SELECT TOP 3 roomid, SUM(sound) FROM sensors "
                "GROUP BY roomid EPOCH DURATION 1 min")
        assert plan.algorithm is Algorithm.MINT
        assert len(server.sessions) == 1
        with legacy("results"):
            assert server.results == []
        with legacy("run"):
            server.run(2)
        assert len(server.results) == 2

    def test_failed_resubmit_keeps_previous_query_runnable(self):
        """A rejected submit must not tear down the running query —
        single-engine behaviour."""
        _, server = grid_server()
        with legacy("submit"):
            server.submit(MONITOR)
        with legacy("run"):
            server.run(2)
        with pytest.raises(QueryError):
            server.submit("SELECT AVG(humidity) FROM sensors")
        with legacy("current_session"):
            assert server.current_session.active
        results = server.run(1)
        with legacy("results"):
            assert len(server.results) == 3 and results[0].epoch == 2

    def test_submit_session_does_not_reassign_legacy_accessors(self):
        """Regression: submit_session() used to silently retarget
        ``results``/``plan``/``engine``, changing their meaning
        mid-workload. Legacy accessors track only legacy submit()."""
        _, server = grid_server()
        with legacy("submit"):
            server.submit(MONITOR)
        with legacy("run"):
            server.run(2)
        with legacy("plan"):
            legacy_plan = server.plan
        with legacy("submit_session"):
            sid = server.submit_session(MONITOR_MAX)
        assert server.plan is legacy_plan
        with legacy("session"), legacy("current_session"):
            assert server.current_session is not server.session(sid)
        with legacy("results"):
            assert len(server.results) == 2
        # And with no legacy submit at all, the accessors stay empty.
        _, fresh_server = grid_server()
        with legacy("submit_session"):
            fresh_server.submit_session(MONITOR)
        with legacy("results"):
            assert fresh_server.results == []
        with legacy("plan"):
            assert fresh_server.plan is None
        with legacy("engine"):
            assert fresh_server.engine is None
        with legacy("system_panel"):
            assert fresh_server.system_panel is None

    def test_unknown_session_raises_precise_error(self):
        _, server = grid_server()
        with legacy("session"), \
                pytest.raises(UnknownSessionError, match="unknown session"):
            server.session(99)
        # Legacy handlers that caught PlanError keep working.
        with pytest.raises(PlanError):
            server.session(99)

    def test_churn_kwargs_still_apply(self):
        """stream_all(churn=, board_for=) wraps into a
        ChurnIntervention under the hood."""
        from repro.network.churn import (
            ChurnEvent,
            ChurnKind,
            ChurnSchedule,
        )

        scenario, server = grid_server(seed=23)
        tree = scenario.network.tree
        victim = next(n for n in tree.sensor_ids if tree.is_leaf(n))
        schedule = ChurnSchedule([ChurnEvent(2, ChurnKind.DEATH, victim)])
        with legacy("submit_session"):
            sid = server.submit_session(MONITOR)
        with legacy("run_all"):
            server.run_all(4, churn=schedule, board_for=scenario.board_for)
        with legacy("session"):
            session = server.session(sid)
        assert len(session.results) == 4
        assert session.recovery.failures == 1
        assert not scenario.network.nodes[victim].alive


class TestDeprecationWarnings:
    """Every legacy entry point warns exactly once per server instance
    and still returns correct values."""

    def _warns(self, recorder, name):
        return [w for w in recorder
                if issubclass(w.category, DeprecationWarning)
                and str(w.message).startswith(f"KSpotServer.{name} ")]

    def test_each_entry_point_warns_exactly_once(self):
        scenario, server = grid_server()
        shadow_scenario, _ = grid_server()

        with warnings.catch_warnings(record=True) as recorder:
            warnings.simplefilter("always")
            server.submit(MONITOR)          # 1st use warns...
            server.submit(MONITOR_MAX)      # ...2nd use is silent
            server.run(2)
            server.run(1)
            list(server.stream(1))
            sid = server.submit_session(MONITOR)
            server.submit_session(MONITOR_MAX)
            server.session(sid)
            server.step_all()
            for _ in server.stream_all(1):
                pass
            server.run_all(1)
            server.cancel(sid)
            server.active_sessions()
            _ = server.results
            _ = server.results
            _ = server.plan
            _ = server.engine
            _ = server.baseline_engine
            _ = server.system_panel
            _ = server.current_session

        for name in ("submit", "run", "stream", "submit_session",
                     "session", "step_all", "stream_all", "run_all",
                     "cancel", "active_sessions", "results", "plan",
                     "engine", "baseline_engine", "system_panel",
                     "current_session"):
            assert len(self._warns(recorder, name)) == 1, (
                f"KSpotServer.{name} should warn exactly once")

    def test_fresh_instance_warns_again(self):
        """The once-per-entry-point ledger is per instance, so every
        consumer of the legacy API gets its own nudge."""
        for _ in range(2):
            _, server = grid_server()
            with legacy("submit"):
                server.submit(MONITOR)

    def test_unwrapped_legacy_use_is_promoted_to_an_error(self):
        """The pytest.ini promotion really fires: outside pytest.warns
        a shim warning escalates straight to DeprecationWarning-as-
        error (this is the regression that used to leak 47 warnings
        per run)."""
        _, server = grid_server()
        with pytest.raises(DeprecationWarning,
                           match="KSpotServer.submit is deprecated"):
            server.submit(MONITOR)

    def test_run_historic_warns_and_answers(self):
        _, server = grid_server()
        with legacy("submit"):
            server.submit(HISTORIC)
        with legacy("run_historic"):
            result = server.run_historic()
        assert len(result.items) == 3

    def test_shim_matches_api_answers(self):
        """Delegation is faithful: the shim and the facade produce
        bit-identical results on the same seeded deployment."""
        from repro.api import Deployment, EpochDriver

        _, server = grid_server(seed=31)
        with legacy("submit"):
            server.submit(MONITOR)
        with legacy("run"):
            legacy_results = server.run(4)

        scenario = grid_rooms_scenario(side=4, rooms_per_axis=2, seed=31)
        deployment = Deployment.from_scenario(scenario)
        handle = deployment.submit(MONITOR)
        EpochDriver(deployment).run(4)
        assert tuple(legacy_results) == handle.results
