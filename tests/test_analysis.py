"""`repro lint` — the AST invariant checker (repro.analysis).

Three layers of proof:

1. **Fixture suite** — for every registered rule, a positive fixture
   under ``tests/fixtures/lint/<rule-id>/bad*`` must fire it and a
   negative fixture under ``ok*`` must stay silent (and fully clean);
   a meta-test pins that *every* rule ships both, so a new rule
   cannot land unproven.
2. **Pragma round-trip** — a justified ``# repro: allow[...]``
   suppresses and records its justification; a missing justification
   suppresses nothing and is itself a finding.
3. **Self-application** — ``src/repro`` lints clean (the acceptance
   bar the CI gate enforces), the layer config is an acyclic DAG, and
   the CLI speaks the documented exit codes and JSON schema.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis import (
    ALLOWED_IMPORTS,
    PragmaIndex,
    iter_rules,
    lint_paths,
    rule_ids,
    validate_dag,
)
from repro.cli import main
from repro.errors import KSpotError

REPO = Path(__file__).resolve().parent.parent
FIXTURES = REPO / "tests" / "fixtures" / "lint"
SRC = REPO / "src" / "repro"

ALL_RULE_IDS = sorted(rule_ids())


def fixture_sides(rule_id: str):
    """The (bad, ok) fixture path lists for one rule."""
    root = FIXTURES / rule_id
    bad = sorted(p for p in root.iterdir() if p.name.startswith("bad"))
    ok = sorted(p for p in root.iterdir() if p.name.startswith("ok"))
    return bad, ok


class TestFixtureSuite:
    """Every rule fires on its violation and stays quiet on the fix."""

    @pytest.mark.parametrize("rule_id", ALL_RULE_IDS)
    def test_positive_fixture_fires(self, rule_id):
        bad, _ = fixture_sides(rule_id)
        report = lint_paths(bad)
        fired = {finding.rule for finding in report.findings}
        assert rule_id in fired, (
            f"{rule_id} did not fire on its bad fixture(s); "
            f"got {sorted(fired)}")

    @pytest.mark.parametrize("rule_id", ALL_RULE_IDS)
    def test_negative_fixture_is_clean(self, rule_id):
        _, ok = fixture_sides(rule_id)
        report = lint_paths(ok)
        assert report.findings == [], (
            f"ok fixture(s) for {rule_id} must lint fully clean; got "
            + "; ".join(f.render() for f in report.findings))

    def test_every_rule_has_both_fixtures(self):
        """Meta-test: a rule without fixtures cannot be registered."""
        for rule in iter_rules():
            bad, ok = fixture_sides(rule.id)
            assert bad, f"rule {rule.id} has no positive (bad*) fixture"
            assert ok, f"rule {rule.id} has no negative (ok*) fixture"

    def test_rule_metadata_complete(self):
        for rule in iter_rules():
            assert rule.summary, f"rule {rule.id} lacks a summary"
            assert rule.rationale, f"rule {rule.id} lacks a rationale"

    def test_expected_catalog(self):
        """The ISSUE's eight architecture rules plus pragma enforcement."""
        assert ALL_RULE_IDS == [
            "error-taxonomy", "hot-loop-allocation", "import-hygiene",
            "layer-dag", "no-wall-clock", "pragma-discipline",
            "rng-discipline", "set-iteration-order", "switch-and-prove",
        ]


class TestPragmas:
    def test_justified_pragma_suppresses_and_records(self, tmp_path):
        snippet = tmp_path / "snippet.py"
        snippet.write_text(
            "import time\n\n\n"
            "def stamp():\n"
            "    # repro: allow[no-wall-clock] -- deliberate: fixture\n"
            "    return time.time()\n")
        report = lint_paths([snippet])
        assert report.findings == []
        assert len(report.suppressed) == 1
        entry = report.suppressed[0]
        assert entry.finding.rule == "no-wall-clock"
        assert entry.justification == "deliberate: fixture"

    def test_missing_justification_round_trip(self, tmp_path):
        """allow without '-- why' suppresses nothing and is a finding."""
        snippet = tmp_path / "snippet.py"
        snippet.write_text(
            "import time\n\n\n"
            "def stamp():\n"
            "    # repro: allow[no-wall-clock]\n"
            "    return time.time()\n")
        report = lint_paths([snippet])
        rules_fired = sorted(finding.rule for finding in report.findings)
        assert rules_fired == ["no-wall-clock", "pragma-discipline"]
        assert report.suppressed == []

    def test_unknown_rule_id_is_reported(self, tmp_path):
        snippet = tmp_path / "snippet.py"
        snippet.write_text(
            "# repro: allow[no-such-rule] -- misguided\n"
            "VALUE = 1\n")
        report = lint_paths([snippet])
        assert [f.rule for f in report.findings] == ["pragma-discipline"]
        assert "no-such-rule" in report.findings[0].message

    def test_same_line_pragma_covers_its_line(self, tmp_path):
        snippet = tmp_path / "snippet.py"
        snippet.write_text(
            "import time\n\n\n"
            "def stamp():\n"
            "    return time.time()  "
            "# repro: allow[no-wall-clock] -- same line\n")
        report = lint_paths([snippet])
        assert report.findings == []
        assert len(report.suppressed) == 1

    def test_docstring_mention_is_not_a_pragma(self):
        """Pragmas come from comment tokens, not string content."""
        index = PragmaIndex(
            '"""Docs: write # repro: allow[rng-discipline] -- why."""\n'
            "VALUE = 1\n")
        assert index.allows == []

    def test_hot_marker_lines(self):
        index = PragmaIndex(
            "# repro: hot\n"
            "def fast():\n"
            "    pass\n")
        assert index.is_hot(2)
        assert not index.is_hot(3)


class TestLayerConfig:
    def test_declared_config_is_a_dag(self):
        order = validate_dag()
        assert set(order) == set(ALLOWED_IMPORTS)

    def test_every_edge_targets_a_declared_package(self):
        for source, targets in ALLOWED_IMPORTS.items():
            missing = targets - set(ALLOWED_IMPORTS)
            assert not missing, f"{source} -> {sorted(missing)} undeclared"

    def test_edges_point_downward_only(self):
        """Allowed-import sets are monotone: everything a dependency may
        import, its dependents may reach transitively (no hidden
        sideways edges)."""
        for source, targets in ALLOWED_IMPORTS.items():
            for target in targets:
                assert source not in ALLOWED_IMPORTS[target], (
                    f"{source} <-> {target} would be a cycle")


class TestSelfApplication:
    def test_src_repro_lints_clean(self):
        report = lint_paths([SRC])
        assert report.findings == [], "\n".join(
            finding.render() for finding in report.findings)

    def test_every_suppression_is_justified(self):
        report = lint_paths([SRC])
        assert report.suppressed, (
            "the tree documents its deliberate exceptions via pragmas; "
            "none found — did the pragmas move?")
        for entry in report.suppressed:
            assert entry.justification.strip(), (
                f"unjustified suppression at {entry.finding.render()}")

    def test_parse_error_is_a_finding_not_a_crash(self, tmp_path):
        snippet = tmp_path / "broken.py"
        snippet.write_text("def broken(:\n")
        report = lint_paths([snippet])
        assert [f.rule for f in report.findings] == ["parse-error"]
        assert report.exit_code == 1


class TestCli:
    def test_clean_tree_exits_zero(self, capsys):
        assert main(["lint", str(SRC / "errors.py")]) == 0
        assert "clean" in capsys.readouterr().out

    def test_findings_exit_one(self, capsys):
        bad = FIXTURES / "rng-discipline" / "bad.py"
        assert main(["lint", str(bad)]) == 1
        out = capsys.readouterr().out
        assert "rng-discipline" in out

    def test_missing_path_exits_two(self, capsys):
        assert main(["lint", "no/such/path.py"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_json_format_schema(self, capsys):
        bad = FIXTURES / "no-wall-clock" / "bad.py"
        assert main(["lint", str(bad), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == "kspot-lint/1"
        assert payload["files_scanned"] == 1
        assert payload["summary"]["no-wall-clock"] >= 1
        rules_listed = {rule["id"] for rule in payload["rules"]}
        assert rules_listed == set(ALL_RULE_IDS)
        for finding in payload["findings"]:
            assert {"rule", "path", "line", "col", "message"} <= set(finding)

    def test_json_output_file(self, tmp_path, capsys):
        out_file = tmp_path / "lint-report.json"
        bad = FIXTURES / "import-hygiene" / "bad.py"
        assert main(["lint", str(bad), "--format", "json",
                     "--output", str(out_file)]) == 1
        payload = json.loads(out_file.read_text())
        assert payload["summary"]["import-hygiene"] >= 1
        # stdout stays human-readable when JSON went to the file
        assert "import-hygiene" in capsys.readouterr().out

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ALL_RULE_IDS:
            assert rule_id in out

    def test_list_rules_json(self, capsys):
        assert main(["lint", "--list-rules", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert {rule["id"] for rule in payload["rules"]} \
            == set(ALL_RULE_IDS)

    def test_lint_paths_rejects_missing_path(self):
        with pytest.raises(KSpotError):
            lint_paths(["definitely/not/here"])
