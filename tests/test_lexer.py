"""Query tokenizer."""

import pytest

from repro.errors import LexError
from repro.query.lexer import Token, TokenType, tokenize


def kinds(text):
    return [(t.type, t.value) for t in tokenize(text)[:-1]]


class TestBasics:
    def test_keywords_case_insensitive(self):
        assert kinds("select") == [(TokenType.KEYWORD, "SELECT")]
        assert kinds("SeLeCt") == [(TokenType.KEYWORD, "SELECT")]

    def test_identifiers_keep_case(self):
        assert kinds("roomId") == [(TokenType.IDENT, "roomId")]

    def test_numbers(self):
        assert kinds("42") == [(TokenType.NUMBER, "42")]
        assert kinds("3.5") == [(TokenType.NUMBER, "3.5")]
        assert kinds(".5") == [(TokenType.NUMBER, ".5")]

    def test_strings(self):
        assert kinds("'Room A'") == [(TokenType.STRING, "Room A")]

    def test_unterminated_string(self):
        with pytest.raises(LexError, match="unterminated"):
            tokenize("'oops")

    def test_operators_maximal_munch(self):
        assert kinds("<=") == [(TokenType.OPERATOR, "<=")]
        assert kinds("<") == [(TokenType.OPERATOR, "<")]
        assert kinds("<>") == [(TokenType.OPERATOR, "!=")]

    def test_punctuation(self):
        assert kinds("(,)*;") == [
            (TokenType.PUNCT, "("), (TokenType.PUNCT, ","),
            (TokenType.PUNCT, ")"), (TokenType.PUNCT, "*"),
            (TokenType.PUNCT, ";"),
        ]

    def test_eof_token_terminates(self):
        tokens = tokenize("SELECT")
        assert tokens[-1].type is TokenType.EOF

    def test_unexpected_character(self):
        with pytest.raises(LexError):
            tokenize("SELECT @")


class TestPositions:
    def test_line_and_column(self):
        tokens = tokenize("SELECT\n  TOP 3")
        top = tokens[1]
        assert (top.line, top.column) == (2, 3)
        three = tokens[2]
        assert (three.line, three.column) == (2, 7)

    def test_error_position(self):
        with pytest.raises(LexError) as info:
            tokenize("a\nbb @")
        assert info.value.line == 2
        assert info.value.column == 4


class TestComments:
    def test_line_comment_skipped(self):
        assert kinds("SELECT -- pick\n1") == [
            (TokenType.KEYWORD, "SELECT"), (TokenType.NUMBER, "1")]

    def test_comment_at_eof(self):
        assert kinds("SELECT -- trailing") == [(TokenType.KEYWORD, "SELECT")]


class TestPaperQueries:
    def test_running_example_tokenizes(self):
        text = ("SELECT TOP 1 roomid, AVERAGE(sound) FROM sensors "
                "GROUP BY roomid EPOCH DURATION 1 min")
        tokens = tokenize(text)
        values = [t.value for t in tokens[:-1]]
        assert values[0] == "SELECT"
        assert "AVERAGE" in values
        assert "MIN" in values  # "min" lexes as the aggregate keyword

    def test_is_keyword_helper(self):
        token = Token(TokenType.KEYWORD, "SELECT", 1, 1)
        assert token.is_keyword("select")
        assert not token.is_keyword("TOP")
