"""The ``repro.perf`` harness: fleet builder, measurements, schema."""

from __future__ import annotations

import json

import pytest

from repro.cli import main as cli_main
from repro.perf import (
    EPOCHS_FOR,
    FLEET_SIZES,
    QUICK_SIZES,
    SCHEMA,
    PathTiming,
    PerfSample,
    fleet_scenario,
    rss_bytes,
    run_perf,
)


class TestFleetScenario:
    @pytest.mark.parametrize("n", [1, 9, 25, 30, 100, 1000])
    def test_exact_fleet_size(self, n):
        scenario = fleet_scenario(n)
        assert len(scenario.network.tree.sensor_ids) == n

    def test_square_sizes_match_canonical_grid(self):
        from repro.scenarios import grid_rooms_scenario

        ours = fleet_scenario(25, seed=3)
        canonical = grid_rooms_scenario(side=5, rooms_per_axis=4, seed=3)
        assert (ours.network.topology.positions
                == canonical.network.topology.positions)
        assert ours.group_of == canonical.group_of

    def test_every_sensor_has_board_and_room(self):
        scenario = fleet_scenario(30)
        for node_id in scenario.network.tree.sensor_ids:
            assert scenario.network.node(node_id).board is not None
            assert node_id in scenario.group_of

    def test_default_ladder(self):
        assert FLEET_SIZES == (25, 100, 400, 1000)
        assert set(EPOCHS_FOR) == set(FLEET_SIZES)
        # The CI smoke ladder covers every size the regression gate
        # inspects (N=100 and N=400).
        assert QUICK_SIZES == (25, 100, 400)


class TestMeasurement:
    def test_run_perf_produces_schema_versioned_report(self, tmp_path):
        report = run_perf(sizes=(9,), repeats=1,
                          epochs_for={9: 3})
        data = report.as_dict()
        assert data["schema"] == SCHEMA == "kspot-perf/5"
        assert data["workload"] == "e11-multiquery"
        assert len(data["queries"]) == 5
        assert data["platform"]["cpu_count"] >= 1
        assert data["platform"]["workers"] == 1
        assert data["aggregate"] is None
        assert data["shard_errors"] == []
        # The certifier microbench rides every run, capped at the
        # ladder's own largest size for unit-scale invocations.
        certifier = data["certifier"]
        assert certifier["n_groups"] == 9
        assert certifier["certifications"] > 0
        assert certifier["speedup"] > 0
        assert certifier["incremental_per_sec"] > 0
        # So does the columnar microbench (kspot-perf/4), equivalence-
        # checked before timing inside measure_columnar itself.
        col = data["columnar"]
        assert col["n_nodes"] == 9
        assert col["backend"] in ("numpy", "python")
        assert col["speedup"] > 0
        assert col["epochs_per_sec_columnar"] > 0
        # And the eventsim microbench (kspot-perf/5): zero-delay
        # byte-identity plus the cross-process partitioned signature
        # proof both run inside measure_eventsim before timing.
        ev = data["eventsim"]
        assert ev["n_nodes"] == 9
        assert ev["speedup"] > 0
        assert ev["epochs_per_sec_event"] > 0
        assert ev["events_per_epoch"] > 0
        assert ev["partitioned"]["partitions"] >= 1
        assert ev["partitioned"]["epochs_per_sec"] > 0
        (sample,) = data["results"]
        assert sample["n_nodes"] == 9
        assert sample["epochs"] == 3
        assert sample["epochs_per_sec"] > 0
        assert sample["messages_per_sec"] > 0
        assert sample["peak_rss_bytes"] > 0
        assert "reference" not in sample

        path = report.write(tmp_path / "BENCH_perf.json")
        loaded = json.loads(path.read_text())
        assert loaded == json.loads(json.dumps(data))

    def test_all_repeat_timings_recorded(self):
        report = run_perf(sizes=(9,), repeats=3, epochs_for={9: 2},
                          compare_reference=True)
        sample = report.sample_for(9).as_dict()
        assert len(sample["repeat_wall_seconds"]) == 3
        assert sample["wall_seconds"] == min(sample["repeat_wall_seconds"])
        assert len(sample["reference"]["repeat_wall_seconds"]) == 3
        assert sample["reference"]["wall_seconds"] == min(
            sample["reference"]["repeat_wall_seconds"])

    def test_compare_reference_reports_speedup(self):
        report = run_perf(sizes=(9,), repeats=1, epochs_for={9: 3},
                          compare_reference=True)
        sample = report.sample_for(9)
        assert sample.reference is not None
        assert sample.speedup == pytest.approx(
            sample.hot.epochs_per_sec / sample.reference.epochs_per_sec)
        assert sample.as_dict()["speedup_vs_reference"] == sample.speedup

    def test_quick_mode_trims_the_ladder(self):
        report = run_perf(sizes=(25, 100, 400, 1000), repeats=1,
                          quick=True,
                          epochs_for={25: 2, 100: 2, 400: 2})
        assert [s.n_nodes for s in report.samples] == [25, 100, 400]
        assert all(s.repeats == 1 for s in report.samples)
        assert report.as_dict()["quick"] is True

    def test_sharded_run_matches_serial_counters(self):
        """--jobs changes wall clocks, never measurements: messages,
        epochs and the schema payload shape are identical."""
        serial = run_perf(sizes=(9, 16), repeats=2,
                          epochs_for={9: 2, 16: 2})
        sharded = run_perf(sizes=(9, 16), repeats=2,
                           epochs_for={9: 2, 16: 2}, jobs=2)
        assert sharded.workers == 2
        assert sharded.shard_errors == []
        for n in (9, 16):
            a, b = serial.sample_for(n), sharded.sample_for(n)
            assert a.hot.messages == b.hot.messages
            assert a.hot.epochs == b.hot.epochs
            assert a.repeats == b.repeats == 2
        aggregate = sharded.as_dict()["aggregate"]
        assert aggregate["workers"] == 2
        assert aggregate["n_nodes"] == 16
        assert aggregate["epochs_total"] == 2 * 2
        assert aggregate["epochs_per_sec"] > 0
        assert len(aggregate["shard_seconds"]) == 2

    def test_shard_crash_lands_in_the_error_envelope(self, monkeypatch):
        """A worker that raises must surface in shard_errors, never
        vanish (the CI tripwire's contract)."""
        import repro.perf as perf_module

        def boom(spec):
            raise RuntimeError("worker crashed")

        monkeypatch.setattr(perf_module, "_measure_repeat", boom)
        report = run_perf(sizes=(9,), repeats=1, epochs_for={9: 2})
        assert report.samples == []
        assert len(report.shard_errors) == 1
        assert "worker crashed" in report.shard_errors[0]["error"]

    def test_throughput_shard_crash_lands_in_the_error_envelope(
            self, monkeypatch):
        """Aggregate-throughput shards report through the same
        envelope as the ladder — a crashed worker there must not
        leave an honest-looking aggregate section behind."""
        import repro.perf as perf_module

        monkeypatch.setattr(perf_module, "_measure_throughput",
                            _throughput_boom)
        report = run_perf(sizes=(9,), repeats=1, epochs_for={9: 2},
                          jobs=2)
        assert len(report.shard_errors) == 2
        assert all("throughput worker crashed" in entry["error"]
                   for entry in report.shard_errors)
        assert report.aggregate["epochs_total"] == 0

    def test_churn_workload_runs(self):
        report = run_perf(sizes=(16,), repeats=1, epochs_for={16: 4},
                          churn="calm", churn_seed=1)
        assert report.sample_for(16).hot.epochs_per_sec > 0
        assert report.as_dict()["churn"] == "calm"

    def test_rss_probe_is_positive(self):
        assert rss_bytes() > 1_000_000  # a python process is >1 MB

    def test_path_timing_rates(self):
        timing = PathTiming(wall_seconds=2.0, epochs=10, messages=500)
        assert timing.epochs_per_sec == 5.0
        assert timing.messages_per_sec == 250.0

    def test_sample_speedup_none_without_reference(self):
        sample = PerfSample(n_nodes=1, sessions=5, repeats=1,
                            hot=PathTiming(1.0, 1, 1), reference=None,
                            peak_rss_bytes=1)
        assert sample.speedup is None
        assert "speedup_vs_reference" not in sample.as_dict()


def _throughput_boom(spec):
    """Module-level (picklable) crasher for the tripwire test."""
    raise RuntimeError("throughput worker crashed")


class TestPerfCli:
    def test_perf_subcommand_writes_report(self, tmp_path, capsys):
        output = tmp_path / "BENCH_perf.json"
        code = cli_main(["perf", "--sizes", "9", "--repeats", "1",
                         "--output", str(output)])
        assert code == 0
        assert "wrote" in capsys.readouterr().out
        data = json.loads(output.read_text())
        assert data["schema"] == SCHEMA
        assert data["results"][0]["n_nodes"] == 9

    def test_bad_sizes_rejected(self, capsys):
        assert cli_main(["perf", "--sizes", "ten"]) == 2
        assert "comma-separated integers" in capsys.readouterr().err


class TestRegressionGate:
    def _report(self, speedup, eps=100.0, n=100):
        return {
            "schema": SCHEMA,
            "workload": "e11-multiquery",
            "results": [{
                "n_nodes": n,
                "epochs_per_sec": eps,
                "speedup_vs_reference": speedup,
            }],
        }

    def _run_gate(self, tmp_path, fresh_speedup, committed_speedup):
        import importlib.util
        from pathlib import Path

        spec = importlib.util.spec_from_file_location(
            "check_perf_regression",
            Path(__file__).resolve().parent.parent
            / "benchmarks" / "check_perf_regression.py")
        gate = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(gate)

        report = tmp_path / "BENCH_perf.json"
        report.write_text(json.dumps(self._report(fresh_speedup)))
        trajectory = tmp_path / "trajectory.json"
        trajectory.write_text(json.dumps(self._report(committed_speedup)))
        return gate.main([str(report), "--trajectory", str(trajectory)])

    def test_within_tolerance_passes(self, tmp_path):
        assert self._run_gate(tmp_path, 1.9, 2.0) == 0

    def test_regression_beyond_tolerance_fails(self, tmp_path):
        assert self._run_gate(tmp_path, 1.5, 2.0) == 1

    def _load_gate(self):
        import importlib.util
        from pathlib import Path

        spec = importlib.util.spec_from_file_location(
            "check_perf_regression",
            Path(__file__).resolve().parent.parent
            / "benchmarks" / "check_perf_regression.py")
        gate = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(gate)
        return gate

    def test_write_refreshes_trajectory(self, tmp_path):
        gate = self._load_gate()
        report = tmp_path / "BENCH_perf.json"
        payload = self._report(2.0)
        payload["certifier"] = {"n_groups": 400, "speedup": 2.5,
                                "certifications": 87}
        report.write_text(json.dumps(payload))
        trajectory = tmp_path / "trajectory.json"
        assert gate.main([str(report), "--trajectory", str(trajectory),
                          "--write"]) == 0
        data = json.loads(trajectory.read_text())
        assert data["schema"] == gate.TRAJECTORY_SCHEMA
        assert data["results"][0]["speedup_vs_reference"] == 2.0
        assert data["certifier"] == {"n_groups": 400, "speedup": 2.5}

    def _run_certifier_gate(self, tmp_path, gate, fresh, committed):
        report = tmp_path / "BENCH_perf.json"
        payload = self._report(2.0)
        if fresh is not None:
            payload["certifier"] = fresh
        report.write_text(json.dumps(payload))
        trajectory = tmp_path / "trajectory.json"
        committed_payload = self._report(2.0)
        if committed is not None:
            committed_payload["certifier"] = committed
        trajectory.write_text(json.dumps(committed_payload))
        return gate.main([str(report), "--trajectory", str(trajectory)])

    def test_certifier_within_tolerance_passes(self, tmp_path):
        gate = self._load_gate()
        assert self._run_certifier_gate(
            tmp_path, gate,
            fresh={"n_groups": 400, "speedup": 2.4},
            committed={"n_groups": 400, "speedup": 2.8}) == 0

    def test_certifier_regression_fails(self, tmp_path):
        gate = self._load_gate()
        assert self._run_certifier_gate(
            tmp_path, gate,
            fresh={"n_groups": 400, "speedup": 1.1},
            committed={"n_groups": 400, "speedup": 2.8}) == 1

    def test_certifier_absent_from_trajectory_skips(self, tmp_path):
        gate = self._load_gate()
        assert self._run_certifier_gate(
            tmp_path, gate,
            fresh={"n_groups": 400, "speedup": 2.8},
            committed=None) == 0

    def test_certifier_missing_from_report_is_hard_error(self, tmp_path):
        gate = self._load_gate()
        with pytest.raises(SystemExit):
            self._run_certifier_gate(
                tmp_path, gate, fresh=None,
                committed={"n_groups": 400, "speedup": 2.8})

    def _run_columnar_gate(self, tmp_path, gate, fresh, committed):
        report = tmp_path / "BENCH_perf.json"
        payload = self._report(2.0)
        if fresh is not None:
            payload["columnar"] = fresh
        report.write_text(json.dumps(payload))
        trajectory = tmp_path / "trajectory.json"
        committed_payload = self._report(2.0)
        if committed is not None:
            committed_payload["columnar"] = committed
        trajectory.write_text(json.dumps(committed_payload))
        return gate.main([str(report), "--trajectory", str(trajectory)])

    def test_columnar_within_tolerance_passes(self, tmp_path):
        gate = self._load_gate()
        assert self._run_columnar_gate(
            tmp_path, gate,
            fresh={"n_nodes": 400, "speedup": 2.0},
            committed={"n_nodes": 400, "speedup": 2.2}) == 0

    def test_columnar_regression_fails(self, tmp_path):
        gate = self._load_gate()
        assert self._run_columnar_gate(
            tmp_path, gate,
            fresh={"n_nodes": 400, "speedup": 1.0},
            committed={"n_nodes": 400, "speedup": 2.2}) == 1

    def test_columnar_absent_from_trajectory_skips(self, tmp_path):
        gate = self._load_gate()
        assert self._run_columnar_gate(
            tmp_path, gate,
            fresh={"n_nodes": 400, "speedup": 2.2},
            committed=None) == 0

    def test_columnar_missing_from_report_is_hard_error(self, tmp_path):
        gate = self._load_gate()
        with pytest.raises(SystemExit):
            self._run_columnar_gate(
                tmp_path, gate, fresh=None,
                committed={"n_nodes": 400, "speedup": 2.2})

    def _run_eventsim_gate(self, tmp_path, gate, fresh, committed):
        report = tmp_path / "BENCH_perf.json"
        payload = self._report(2.0)
        if fresh is not None:
            payload["eventsim"] = fresh
        report.write_text(json.dumps(payload))
        trajectory = tmp_path / "trajectory.json"
        committed_payload = self._report(2.0)
        if committed is not None:
            committed_payload["eventsim"] = committed
        trajectory.write_text(json.dumps(committed_payload))
        return gate.main([str(report), "--trajectory", str(trajectory)])

    def test_eventsim_within_tolerance_passes(self, tmp_path):
        gate = self._load_gate()
        assert self._run_eventsim_gate(
            tmp_path, gate,
            fresh={"n_nodes": 400, "speedup": 0.95},
            committed={"n_nodes": 400, "speedup": 1.0}) == 0

    def test_eventsim_regression_fails(self, tmp_path):
        gate = self._load_gate()
        assert self._run_eventsim_gate(
            tmp_path, gate,
            fresh={"n_nodes": 400, "speedup": 0.5},
            committed={"n_nodes": 400, "speedup": 1.0}) == 1

    def test_eventsim_absent_from_trajectory_skips(self, tmp_path):
        gate = self._load_gate()
        assert self._run_eventsim_gate(
            tmp_path, gate,
            fresh={"n_nodes": 400, "speedup": 1.0},
            committed=None) == 0

    def test_eventsim_missing_from_report_is_hard_error(self, tmp_path):
        gate = self._load_gate()
        with pytest.raises(SystemExit):
            self._run_eventsim_gate(
                tmp_path, gate, fresh=None,
                committed={"n_nodes": 400, "speedup": 1.0})

    def test_write_records_columnar_section(self, tmp_path):
        gate = self._load_gate()
        report = tmp_path / "BENCH_perf.json"
        payload = self._report(2.0)
        payload["columnar"] = {"n_nodes": 400, "speedup": 2.19,
                               "backend": "numpy"}
        payload["eventsim"] = {"n_nodes": 400, "speedup": 1.0,
                               "partitioned": {"jobs": 2}}
        report.write_text(json.dumps(payload))
        trajectory = tmp_path / "trajectory.json"
        assert gate.main([str(report), "--trajectory", str(trajectory),
                          "--write"]) == 0
        data = json.loads(trajectory.read_text())
        assert data["columnar"] == {"n_nodes": 400, "speedup": 2.19}
        assert data["eventsim"] == {"n_nodes": 400, "speedup": 1.0}
